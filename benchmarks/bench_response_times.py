"""E1 — §5.2: "Response times vary from 400 ms to 2000 ms."

Regenerates the paper's response-time evaluation: the standard mix of
workflow and non-workflow related requests, each reported with its
modeled end-to-end latency (operation counts × calibrated per-operation
costs) alongside pytest-benchmark's wall-clock numbers for the pure
in-process execution.

Expected shape (asserted): every operation falls within 400–2000 ms
(±2.5% calibration slack at the floor), reads at the bottom of the band,
workflow instantiation at the top.

Every run also writes ``BENCH_response_times.json``: the modeled per-
operation costs plus the measured latency quantiles (p50/p95/p99),
per-table DB counters and engine event counts, all sourced from the
``repro.obs`` metrics registry the lab installs across its tiers.
"""

from __future__ import annotations

import pytest

from repro.workloads.requests import build_fixture


@pytest.fixture(scope="module")
def mix():
    fixture = build_fixture(journal_path=None)
    measurements = {
        name: fixture.measure(name) for name in fixture.OPERATION_MIX
    }
    return fixture, measurements


def test_e1_response_time_table(mix, report, benchmark, emit_bench):
    fixture, measurements = mix
    rows = []
    for name, (response, cost) in measurements.items():
        breakdown = cost.breakdown()
        rows.append(
            [
                name,
                response.status,
                cost.db_reads,
                cost.db_writes,
                cost.messages_sent,
                f"{breakdown['total']:.1f}",
            ]
        )
        assert response.ok
        assert 390.0 <= cost.total_ms <= 2000.0, (name, cost.total_ms)
    report(
        "E1  response times per operation (paper: 400-2000 ms)",
        ["operation", "status", "db reads", "db writes", "msgs", "modeled ms"],
        rows,
    )
    totals = [cost.total_ms for __, cost in measurements.values()]
    assert min(totals) < 500 and max(totals) > 1200  # band is spanned

    # The trajectory file: measured quantiles straight from the registry.
    registry = fixture.lab.obs.registry
    quantiles = {
        f"p{int(q * 100)}": registry.family_quantile(
            "http_request_latency_ms", q
        )
        for q in (0.5, 0.95, 0.99)
    }
    assert quantiles["p50"] > 0.0  # real observations, not defaults
    snapshot = registry.snapshot()
    emit_bench(
        "response_times",
        {
            "modeled_ms": {
                name: cost.breakdown()
                for name, (__, cost) in measurements.items()
            },
            "http_request_latency_ms": quantiles,
            "metrics": {
                key: snapshot[key]
                for key in (
                    "http_request_latency_ms",
                    "db_table_reads_total",
                    "db_table_writes_total",
                    "engine_events_total",
                )
                if key in snapshot
            },
        },
    )

    # Wall-clock for the cheapest representative request.
    operation = fixture.build_operation("read_experiments")
    benchmark(operation)


def test_e1_workflow_instantiation_wallclock(mix, benchmark):
    fixture, __ = mix
    operation = fixture.build_operation("start_workflow_request")
    result = benchmark.pedantic(operation, rounds=5, iterations=1)
    assert result.ok
