"""E1 — §5.2: "Response times vary from 400 ms to 2000 ms."

Regenerates the paper's response-time evaluation: the standard mix of
workflow and non-workflow related requests, each reported with its
modeled end-to-end latency (operation counts × calibrated per-operation
costs) alongside pytest-benchmark's wall-clock numbers for the pure
in-process execution.

Expected shape (asserted): every operation falls within 400–2000 ms
(±2.5% calibration slack at the floor), reads at the bottom of the band,
workflow instantiation at the top.
"""

from __future__ import annotations

import pytest

from repro.workloads.requests import build_fixture


@pytest.fixture(scope="module")
def mix():
    fixture = build_fixture(journal_path=None)
    measurements = {
        name: fixture.measure(name) for name in fixture.OPERATION_MIX
    }
    return fixture, measurements


def test_e1_response_time_table(mix, report, benchmark):
    fixture, measurements = mix
    rows = []
    for name, (response, cost) in measurements.items():
        breakdown = cost.breakdown()
        rows.append(
            [
                name,
                response.status,
                cost.db_reads,
                cost.db_writes,
                cost.messages_sent,
                f"{breakdown['total']:.1f}",
            ]
        )
        assert response.ok
        assert 390.0 <= cost.total_ms <= 2000.0, (name, cost.total_ms)
    report(
        "E1  response times per operation (paper: 400-2000 ms)",
        ["operation", "status", "db reads", "db writes", "msgs", "modeled ms"],
        rows,
    )
    totals = [cost.total_ms for __, cost in measurements.values()]
    assert min(totals) < 500 and max(totals) > 1200  # band is spanned

    # Wall-clock for the cheapest representative request.
    operation = fixture.build_operation("read_experiments")
    benchmark(operation)


def test_e1_workflow_instantiation_wallclock(mix, benchmark):
    fixture, __ = mix
    operation = fixture.build_operation("start_workflow_request")
    result = benchmark.pedantic(operation, rounds=5, iterations=1)
    assert result.ok
