"""A4 — ablation: scaling of the database-backed engine design.

Exp-WF keeps all execution state in the LIMS database (that is what
makes integration non-intrusive and recovery trivial), so every
workflow check pays DB reads proportional to the pattern size and the
number of running workflows.  This bench quantifies that design choice:

* reads per ``check_workflow`` as the chain length grows;
* total reads for one data change as the number of concurrently
  *running* workflows grows (the postprocessing hook re-checks each).

Both series must grow roughly linearly — the price of statelessness —
while staying flat per idle workflow once it has finished.
"""

from __future__ import annotations

import pytest

from repro.workloads.generator import build_synthetic_lab

CHAIN_LENGTHS = [1, 2, 4, 8]
WORKFLOW_COUNTS = [1, 2, 4, 8]


def reads_per_check(length: int) -> int:
    lab = build_synthetic_lab(stages=length)
    pattern = lab.chain_pattern(length)
    workflow = lab.engine.start_workflow(pattern.name)
    snapshot = lab.app.db.stats.snapshot()
    lab.engine.check_workflow(workflow["workflow_id"])
    return lab.app.db.stats.snapshot().delta(snapshot).reads


def reads_per_data_change(running: int) -> int:
    lab = build_synthetic_lab(stages=2)
    pattern = lab.chain_pattern(2)
    for __ in range(running):
        lab.engine.start_workflow(pattern.name)
    snapshot = lab.app.db.stats.snapshot()
    lab.engine.on_data_change("Sample", {})
    return lab.app.db.stats.snapshot().delta(snapshot).reads


def test_a4_check_cost_vs_pattern_size(report, benchmark):
    series = [(length, reads_per_check(length)) for length in CHAIN_LENGTHS]
    report(
        "A4  DB reads per check_workflow vs chain length",
        ["chain length", "reads per check"],
        [[length, reads] for length, reads in series],
    )
    reads = [r for __, r in series]
    assert all(a <= b for a, b in zip(reads, reads[1:]))
    assert reads[-1] < reads[0] * len(CHAIN_LENGTHS) * 6  # roughly linear

    lab = build_synthetic_lab(stages=CHAIN_LENGTHS[-1])
    pattern = lab.chain_pattern(CHAIN_LENGTHS[-1])
    workflow = lab.engine.start_workflow(pattern.name)
    benchmark(lambda: lab.engine.check_workflow(workflow["workflow_id"]))


def test_a4_data_change_cost_vs_running_workflows(report, benchmark):
    series = [
        (count, reads_per_data_change(count)) for count in WORKFLOW_COUNTS
    ]
    report(
        "A4  DB reads per postprocessed data change vs running workflows",
        ["running workflows", "reads per change"],
        [[count, reads] for count, reads in series],
    )
    reads = [r for __, r in series]
    assert all(a < b for a, b in zip(reads, reads[1:]))

    # Finished workflows cost nothing on later changes.
    lab = build_synthetic_lab(stages=1)
    pattern = lab.retry_pattern(1)
    workflow = lab.engine.start_workflow(pattern.name)
    lab.run_to_completion(workflow["workflow_id"])
    snapshot = lab.app.db.stats.snapshot()
    lab.engine.on_data_change("Sample", {})
    finished_cost = lab.app.db.stats.snapshot().delta(snapshot).reads
    assert finished_cost <= 2  # just the running-workflows index lookup

    benchmark(lambda: lab.engine.on_data_change("Sample", {}))
