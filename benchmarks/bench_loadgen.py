#!/usr/bin/env python
"""Closed-loop load generator for the hot-path throughput layer.

Two experiments, both reported to ``BENCH_perf.json``:

``insert_throughput``
    N concurrent committers insert rows through a WAL-backed database
    under each sync policy.  ``group`` must clear >= 3x the ``always``
    throughput — the whole point of sharing fsync barriers — and the
    per-policy fsync counts make the mechanism visible.

``snapshot_reads``
    Read-heavy mixed load against the MVCC read path: reader threads
    run point gets and indexed selects against a seeded table, first on
    an idle database, then again while writer threads sustain
    group-committed inserts.  Reads pin a committed snapshot and never
    take the statement mutex, so read p95 under write load must stay
    within 10 % of idle on full runs — the regression signal for any
    change that puts readers back behind the group-commit fsync window.

``closed_loop``
    >= 8 concurrent clients drive start_workflow-shaped requests through
    the full filter -> engine -> broker -> agent path of the protein lab
    (a background pump plays the agent pool).  Run twice — caches
    bypassed (*before*) and enabled (*after*) — reporting throughput,
    request p50/p95/p99, and the ``repro.obs`` histograms for db-commit
    and queue-wait latency.

``profiling``
    The caches-on closed loop once more with ``repro.obs.prof``
    installed (exemplars, lock wrappers, commit spans, slow-trace
    retention).  Reports per-stage latency attribution — filter /
    engine-dispatch / db-commit / other must sum to within 10 % of the
    measured request total or the run fails — plus the profiling
    overhead versus the unprofiled caches-on run.

``watch``
    The caches-on closed loop with ``repro.obs.watch`` installed (the
    residency tracker rides every engine event; the stock alert rules
    are registered but nothing fires on a healthy run).  Reports the
    throughput cost versus the unwatched caches-on run — must stay
    under 2 % on full runs — and the latency of an alert-evaluation
    pass over the live system.

``--small`` shrinks both experiments for CI smoke use; results land in
a per-mode section so small runs never clobber full-run numbers.
``--witness`` attaches the runtime lock-order witness to the profiled
pass and fails the run if any observed acquisition order diverges from
the static lock graph ``repro.analysis.concurrency`` predicts.
``--check`` compares the fresh run against the committed baseline for
the same mode and exits 1 on a >20 % throughput regression (the
profiled run is held to the same floor).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.minidb import EQ, Column, ColumnType, Database, TableSchema
from repro.workloads.protein import build_protein_lab

DEFAULT_OUTPUT = Path(__file__).parent / "BENCH_perf.json"
REGRESSION_TOLERANCE = 0.8  # --check fails below 80 % of baseline

MODES = {
    # (insert threads, inserts/thread, clients, requests/client)
    "small": (24, 25, 8, 2),
    "full": (24, 200, 10, 6),
}

SNAPSHOT_MODES = {
    # (seed rows, reader threads, reads/reader, writer threads)
    "small": (500, 4, 400, 4),
    "full": (2000, 4, 4000, 8),
}

#: Full-run ceiling for read p95 under write load relative to idle.
SNAPSHOT_P95_RATIO_LIMIT = 1.10


def percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


# ----------------------------------------------------------------------
# Experiment 1: insert-transaction throughput per sync policy
# ----------------------------------------------------------------------


def load_row_schema() -> TableSchema:
    return TableSchema(
        name="LoadRow",
        columns=[
            Column("row_id", ColumnType.INTEGER, nullable=False),
            Column("payload", ColumnType.TEXT, nullable=False),
        ],
        primary_key=("row_id",),
        autoincrement="row_id",
    )


def run_insert_load(
    sync_policy: str, threads: int, inserts_per_thread: int
) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        db = Database(
            Path(tmp) / "bench.wal",
            sync_policy=sync_policy,
            # The straggler window trades sub-millisecond commit latency
            # for batch depth: long enough for every concurrent
            # committer to join the leader's barrier, short enough that
            # the fsync still dominates the cycle on a slow disk.
            group_window_s=0.0005 if sync_policy == "group" else 0.0,
        )
        db.create_table(load_row_schema())
        barrier = threading.Barrier(threads + 1)

        def worker(worker_id: int) -> None:
            barrier.wait()
            for i in range(inserts_per_thread):
                db.insert("LoadRow", {"payload": f"w{worker_id}-{i}"})

        pool = [
            threading.Thread(target=worker, args=(n,)) for n in range(threads)
        ]
        for thread in pool:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in pool:
            thread.join()
        elapsed = time.perf_counter() - started
        info = db.wal_info()
        db.close()
    total = threads * inserts_per_thread
    return {
        "sync_policy": sync_policy,
        "threads": threads,
        "inserts": total,
        "elapsed_s": round(elapsed, 4),
        "throughput_per_s": round(total / elapsed, 1),
        "fsyncs": info["fsyncs"],
        "appended_records": info["appended_records"],
    }


def bench_insert_throughput(
    threads: int, inserts_per_thread: int, trials: int = 3
) -> dict:
    results = {}
    for policy in ("always", "group", "off"):
        # Best of N damps scheduler noise; each trial is a fresh WAL.
        runs = [
            run_insert_load(policy, threads, inserts_per_thread)
            for __ in range(trials)
        ]
        results[policy] = max(runs, key=lambda r: r["throughput_per_s"])
    always = results["always"]["throughput_per_s"]
    group = results["group"]["throughput_per_s"]
    results["group_vs_always_speedup"] = round(group / always, 2)
    return results


# ----------------------------------------------------------------------
# Experiment 2: snapshot reads idle vs under sustained write load
# ----------------------------------------------------------------------


def sample_schema() -> TableSchema:
    return TableSchema(
        name="Sample",
        columns=[
            Column("sample_id", ColumnType.INTEGER, nullable=False),
            Column("bucket", ColumnType.INTEGER, nullable=False),
            Column("payload", ColumnType.TEXT, nullable=False),
        ],
        primary_key=("sample_id",),
        autoincrement="sample_id",
    )


def run_read_phase(
    db: Database, seed_rows: int, readers: int, reads_per_reader: int
) -> dict:
    """Time ``readers`` threads doing point gets + indexed selects."""
    latencies_ms: list[float] = []
    collect = threading.Lock()
    barrier = threading.Barrier(readers + 1)

    def reader(reader_id: int) -> None:
        barrier.wait()
        local: list[float] = []
        for i in range(reads_per_reader):
            t0 = time.perf_counter()
            if i % 4 == 3:
                db.select("Sample", EQ("bucket", (reader_id + i) % 16))
            else:
                db.get("Sample", (reader_id * 7919 + i) % seed_rows + 1)
            local.append((time.perf_counter() - t0) * 1000.0)
        with collect:
            latencies_ms.extend(local)

    pool = [threading.Thread(target=reader, args=(n,)) for n in range(readers)]
    for thread in pool:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - started
    total = readers * reads_per_reader
    return {
        "reads": total,
        "elapsed_s": round(elapsed, 4),
        "throughput_per_s": round(total / elapsed, 1),
        "latency_ms": {
            "p50": round(percentile(latencies_ms, 0.50), 4),
            "p95": round(percentile(latencies_ms, 0.95), 4),
            "p99": round(percentile(latencies_ms, 0.99), 4),
        },
    }


def bench_snapshot_reads(
    seed_rows: int, readers: int, reads_per_reader: int, writer_threads: int
) -> dict:
    """Read p95 on an idle database vs under group-committed writes.

    The loaded phase keeps ``writer_threads`` inserting through the
    group-commit path for the whole read window; with the lock-free
    snapshot read path the readers never queue behind those writers'
    fsync barriers, so the p95 ratio stays near 1.
    """
    with tempfile.TemporaryDirectory() as tmp:
        db = Database(
            Path(tmp) / "snapshot.wal",
            sync_policy="group",
            group_window_s=0.0005,
        )
        db.create_table(sample_schema())
        db.create_index("Sample", ["bucket"])
        with db.transaction():
            for i in range(seed_rows):
                db.insert(
                    "Sample", {"bucket": i % 16, "payload": f"seed-{i}"}
                )

        idle = run_read_phase(db, seed_rows, readers, reads_per_reader)

        stop = threading.Event()
        writes = [0] * writer_threads

        def writer(writer_id: int) -> None:
            n = 0
            while not stop.is_set():
                db.insert(
                    "Sample",
                    {"bucket": n % 16, "payload": f"w{writer_id}-{n}"},
                )
                n += 1
            writes[writer_id] = n

        pool = [
            threading.Thread(target=writer, args=(n,))
            for n in range(writer_threads)
        ]
        for thread in pool:
            thread.start()
        started = time.perf_counter()
        loaded = run_read_phase(db, seed_rows, readers, reads_per_reader)
        stop.set()
        for thread in pool:
            thread.join()
        write_elapsed = time.perf_counter() - started
        mvcc = db.mvcc_info()
        db.close()
    ratio = (
        loaded["latency_ms"]["p95"] / idle["latency_ms"]["p95"]
        if idle["latency_ms"]["p95"]
        else 0.0
    )
    return {
        "seed_rows": seed_rows,
        "readers": readers,
        "writer_threads": writer_threads,
        "idle": idle,
        "under_write_load": loaded,
        "read_p95_ratio": round(ratio, 3),
        "concurrent_writes": sum(writes),
        "write_throughput_per_s": round(sum(writes) / write_elapsed, 1),
        "mvcc": {
            "snapshot_reads": mvcc["snapshot_reads"],
            "versions_published": mvcc["versions_published"],
            "gc_pending": mvcc["gc_pending"],
            "gc_reclaims": mvcc["gc_reclaims"],
        },
    }


# ----------------------------------------------------------------------
# Experiment 3: closed-loop start_workflow load through the full stack
# ----------------------------------------------------------------------


def run_closed_loop(
    clients: int,
    requests_per_client: int,
    caches_enabled: bool,
    profiling: bool = False,
    watch: bool = False,
    witness: bool = False,
) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        lab = build_protein_lab(
            wal_path=str(Path(tmp) / "lab.wal"),
            journal_path=str(Path(tmp) / "broker.journal"),
            sync_policy="group",
            profiling=profiling,
            watch=watch,
            witness=witness,
        )
        db = lab.app.db
        if not caches_enabled:
            db.plan_cache_enabled = False
            lab.engine.specs.enabled = False

        latencies_ms: list[float] = []
        failures = 0
        collect = threading.Lock()
        stop = threading.Event()
        barrier = threading.Barrier(clients + 1)

        def pump() -> None:
            # Plays the agent pool: drain dispatches while clients load.
            while not stop.is_set():
                try:
                    moved = lab.run_messages()
                except Exception:
                    moved = 0
                if moved == 0:
                    time.sleep(0.001)

        def client(client_id: int) -> None:
            nonlocal failures
            barrier.wait()
            local: list[float] = []
            bad = 0
            for __ in range(requests_per_client):
                t0 = time.perf_counter()
                response = lab.app.post(
                    "/user",
                    workflow_action="start",
                    pattern="protein_creation",
                )
                local.append((time.perf_counter() - t0) * 1000.0)
                if not response.ok:
                    bad += 1
            with collect:
                latencies_ms.extend(local)
                failures += bad

        pump_thread = threading.Thread(target=pump, daemon=True)
        pump_thread.start()
        pool = [
            threading.Thread(target=client, args=(n,)) for n in range(clients)
        ]
        for thread in pool:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in pool:
            thread.join()
        elapsed = time.perf_counter() - started
        stop.set()
        pump_thread.join()
        lab.run_messages()  # settle outstanding dispatches

        registry = lab.obs.registry
        observed = {
            name: {
                f"p{int(q * 100)}": round(
                    registry.family_quantile(name, q), 3
                )
                for q in (0.5, 0.95, 0.99)
            }
            for name in ("db_commit_latency_ms", "broker_receive_wait_ms")
        }
        total = clients * requests_per_client
        result = {
            "caches_enabled": caches_enabled,
            "clients": clients,
            "requests": total,
            "failures": failures,
            "elapsed_s": round(elapsed, 4),
            "throughput_per_s": round(total / elapsed, 1),
            "latency_ms": {
                "p50": round(percentile(latencies_ms, 0.50), 3),
                "p95": round(percentile(latencies_ms, 0.95), 3),
                "p99": round(percentile(latencies_ms, 0.99), 3),
            },
            "observed": observed,
            "plan_cache": {
                "hits": db.stats.plan_cache_hits,
                "misses": db.stats.plan_cache_misses,
            },
            "spec_cache": lab.engine.specs.info(),
        }
        if profiling:
            result["attribution"] = collect_attribution(lab)
            if witness and lab.obs.profiler.witness is not None:
                result["lock_order"] = (
                    lab.obs.profiler.witness.check().to_dict()
                )
            lab.obs.profiler.close()
        if watch:
            result["watch"] = collect_watch(lab)
        db.close()
        lab.broker.close()
    return result


def collect_watch(lab, passes: int = 25) -> dict:
    """Alert-evaluation latency and accounting from a watched run.

    A healthy closed loop must cause zero transitions — any firing rule
    here is a false alarm and fails the benchmark.
    """
    watcher = lab.obs.watcher
    transitions = 0
    eval_ms: list[float] = []
    for __ in range(passes):
        t0 = time.perf_counter()
        transitions += len(watcher.evaluate())
        eval_ms.append((time.perf_counter() - t0) * 1000.0)
    return {
        "eval_passes": passes,
        "eval_latency_ms": {
            "mean": round(sum(eval_ms) / len(eval_ms), 4),
            "p95": round(percentile(eval_ms, 0.95), 4),
            "max": round(max(eval_ms), 4),
        },
        "transitions": transitions,
        "rules": len(watcher.alerts.rules()),
        "tracked_entities": len(watcher.residency.current()),
        "exporter": watcher.exporter.info(),
    }


def collect_attribution(lab) -> dict:
    """Per-stage latency attribution from a profiled closed-loop run."""
    profiler = lab.obs.profiler
    aggregated = profiler.attribution()
    pattern = aggregated.get("protein_creation")
    if pattern is None:
        return {"error": "no attributable protein_creation traces"}
    accounted = sum(pattern["stages"].values())
    locks = [
        {
            "name": entry["name"],
            "acquisitions": entry["acquisitions"],
            "contention_rate": round(entry["contention_rate"], 4),
            "wait_p95_ms": round(entry["wait_ms"]["p95"], 3),
            "hold_p95_ms": round(entry["hold_ms"]["p95"], 3),
        }
        for entry in profiler.report()["locks"][:4]
    ]
    return {
        "traces": pattern["traces"],
        "mean_total_ms": round(pattern["mean_total_ms"], 3),
        "stages_ms": {
            stage: round(value, 3)
            for stage, value in pattern["stages"].items()
        },
        "async_stages_ms": {
            stage: round(value, 3)
            for stage, value in pattern["async_stages"].items()
        },
        # Stage sums are exclusive-time decompositions of the measured
        # root span, so this ratio sits at 1.0 unless attribution broke.
        "sum_over_total": round(
            accounted / pattern["mean_total_ms"], 4
        )
        if pattern["mean_total_ms"]
        else 0.0,
        "slowest_trace_id": pattern["slowest_trace_id"],
        "locks": locks,
    }


def bench_closed_loop(clients: int, requests_per_client: int) -> dict:
    before = run_closed_loop(clients, requests_per_client, False)
    after = run_closed_loop(clients, requests_per_client, True)
    return {
        "before": before,
        "after": after,
        "p95_reduction_ms": round(
            before["latency_ms"]["p95"] - after["latency_ms"]["p95"], 3
        ),
        "throughput_gain": round(
            after["throughput_per_s"] / max(before["throughput_per_s"], 0.1),
            3,
        ),
    }


# ----------------------------------------------------------------------
# Baseline comparison and reporting
# ----------------------------------------------------------------------


def check_regression(baseline: dict | None, fresh: dict, mode: str) -> list[str]:
    """Headline throughput must stay within tolerance of the baseline."""
    if not baseline or mode not in baseline:
        print(f"[check] no committed baseline for mode {mode!r}; skipping")
        return []
    problems = []
    old = baseline[mode]
    pairs = [
        (
            "insert group throughput",
            old["insert_throughput"]["group"]["throughput_per_s"],
            fresh["insert_throughput"]["group"]["throughput_per_s"],
        ),
        (
            "closed-loop throughput (caches on)",
            old["closed_loop"]["after"]["throughput_per_s"],
            fresh["closed_loop"]["after"]["throughput_per_s"],
        ),
    ]
    if "snapshot_reads" in old:
        pairs.append(
            (
                "snapshot read throughput (under write load)",
                old["snapshot_reads"]["under_write_load"]["throughput_per_s"],
                fresh["snapshot_reads"]["under_write_load"][
                    "throughput_per_s"
                ],
            )
        )
    # The profiled pass is deliberately not held to a floor of its own:
    # its overhead is reported (overhead_vs_caches_on_pct) and its
    # attribution invariant gates the run, but closed-loop variance on
    # a loaded runner makes a second throughput floor too flaky.
    for label, before, now in pairs:
        floor = before * REGRESSION_TOLERANCE
        status = "ok" if now >= floor else "REGRESSION"
        print(
            f"[check] {label}: baseline {before:.1f}/s, "
            f"now {now:.1f}/s (floor {floor:.1f}/s) — {status}"
        )
        if now < floor:
            problems.append(label)
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--small", action="store_true", help="CI smoke sizing"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on >20%% throughput regression vs the committed baseline",
    )
    parser.add_argument(
        "--witness",
        action="store_true",
        help="attach the runtime lock-order witness to the profiled "
        "pass and fail on any divergence from conlint's static graph",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="result file"
    )
    args = parser.parse_args(argv)

    mode = "small" if args.small else "full"
    threads, inserts, clients, requests_per_client = MODES[mode]

    existing: dict = {}
    if args.output.exists():
        try:
            existing = json.loads(args.output.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            existing = {}

    print(f"== insert throughput ({threads} committers, {mode} mode) ==")
    insert_results = bench_insert_throughput(threads, inserts)
    for policy in ("always", "group", "off"):
        row = insert_results[policy]
        print(
            f"  {policy:>6}: {row['throughput_per_s']:>9.1f} inserts/s "
            f"({row['fsyncs']} fsyncs / {row['appended_records']} appends)"
        )
    speedup = insert_results["group_vs_always_speedup"]
    print(f"  group vs always: {speedup:.2f}x")

    seed_rows, readers, reads_per_reader, writer_threads = SNAPSHOT_MODES[mode]
    print(
        f"== snapshot reads ({readers} readers vs {writer_threads} "
        f"group-commit writers, {mode} mode) =="
    )
    snapshot_results = bench_snapshot_reads(
        seed_rows, readers, reads_per_reader, writer_threads
    )
    for label in ("idle", "under_write_load"):
        row = snapshot_results[label]
        print(
            f"  {label:>16}: {row['throughput_per_s']:>9.1f} reads/s, "
            f"p50 {row['latency_ms']['p50']:.4f} ms, "
            f"p95 {row['latency_ms']['p95']:.4f} ms"
        )
    read_ratio = snapshot_results["read_p95_ratio"]
    print(
        f"  read p95 loaded/idle: {read_ratio:.3f} "
        f"(concurrent writers sustained "
        f"{snapshot_results['write_throughput_per_s']:.1f} inserts/s)"
    )
    # The 10% ceiling is asserted on full runs only; small CI runs are
    # too short for stable tail ratios and gate on the baseline
    # comparison instead.
    snapshot_ok = read_ratio <= SNAPSHOT_P95_RATIO_LIMIT or mode != "full"
    if read_ratio > SNAPSHOT_P95_RATIO_LIMIT:
        print(
            f"  read p95 ratio {read_ratio:.3f} exceeds "
            f"{SNAPSHOT_P95_RATIO_LIMIT:.2f} ceiling"
            + ("" if mode == "full" else " (not gated in small mode)")
        )

    print(f"== closed loop ({clients} clients, start_workflow) ==")
    loop_results = bench_closed_loop(clients, requests_per_client)
    for label in ("before", "after"):
        row = loop_results[label]
        tag = "caches on " if row["caches_enabled"] else "caches off"
        print(
            f"  {tag}: {row['throughput_per_s']:>7.1f} req/s, "
            f"p50 {row['latency_ms']['p50']:.1f} ms, "
            f"p95 {row['latency_ms']['p95']:.1f} ms, "
            f"p99 {row['latency_ms']['p99']:.1f} ms"
        )
    print(
        f"  p95 reduction: {loop_results['p95_reduction_ms']:.1f} ms, "
        f"throughput gain: {loop_results['throughput_gain']:.2f}x"
    )

    print(f"== profiled closed loop ({clients} clients, repro.obs.prof) ==")
    profiled = run_closed_loop(
        clients, requests_per_client, True, profiling=True,
        witness=args.witness,
    )
    unprofiled_tp = loop_results["after"]["throughput_per_s"]
    overhead_pct = round(
        (1.0 - profiled["throughput_per_s"] / unprofiled_tp) * 100.0, 1
    )
    attribution = profiled["attribution"]
    profiling_results = {
        "run": profiled,
        "overhead_vs_caches_on_pct": overhead_pct,
    }
    print(
        f"  profiled : {profiled['throughput_per_s']:>7.1f} req/s "
        f"({overhead_pct:+.1f}% vs unprofiled), "
        f"p95 {profiled['latency_ms']['p95']:.1f} ms"
    )
    attribution_ok = True
    if "error" in attribution:
        attribution_ok = False
        print(f"  attribution FAILED: {attribution['error']}")
    else:
        for stage, value in attribution["stages_ms"].items():
            share = (
                value / attribution["mean_total_ms"] * 100.0
                if attribution["mean_total_ms"]
                else 0.0
            )
            print(f"    {stage:<16} {value:8.3f} ms  {share:5.1f}%")
        ratio = attribution["sum_over_total"]
        attribution_ok = 0.9 <= ratio <= 1.1
        verdict = "ok" if attribution_ok else "FAIL"
        print(
            f"  stage sum / measured total: {ratio:.4f} "
            f"(must be within 10%) — {verdict}"
        )
    witness_ok = True
    if args.witness:
        lock_order = profiled.get("lock_order")
        if lock_order is None:
            witness_ok = False
            print("  lock-order witness: NOT INSTALLED")
        else:
            witness_ok = lock_order["ok"]
            verdict = "ok" if witness_ok else "DIVERGENCE"
            print(
                f"  lock-order witness: {lock_order['acquisitions']} "
                f"acquisitions, {len(lock_order['observed_pairs'])} "
                f"nesting pair(s) — {verdict}"
            )
            for divergence in lock_order["divergences"]:
                print(
                    f"    [{divergence['kind']}] {divergence['held']} "
                    f"-> {divergence['acquired']}: {divergence['detail']}"
                )

    print(f"== watched closed loop ({clients} clients, repro.obs.watch) ==")
    watched = run_closed_loop(
        clients, requests_per_client, True, watch=True
    )
    watch_overhead_pct = round(
        (1.0 - watched["throughput_per_s"] / unprofiled_tp) * 100.0, 1
    )
    watch_info = watched["watch"]
    watch_results = {
        "run": watched,
        "overhead_vs_caches_on_pct": watch_overhead_pct,
    }
    print(
        f"  watched  : {watched['throughput_per_s']:>7.1f} req/s "
        f"({watch_overhead_pct:+.1f}% vs unwatched), "
        f"p95 {watched['latency_ms']['p95']:.1f} ms"
    )
    print(
        f"  alert eval: mean {watch_info['eval_latency_ms']['mean']:.3f} ms, "
        f"p95 {watch_info['eval_latency_ms']['p95']:.3f} ms over "
        f"{watch_info['eval_passes']} passes "
        f"({watch_info['rules']} rules, "
        f"{watch_info['tracked_entities']} tracked entities)"
    )
    watch_quiet = watch_info["transitions"] == 0
    if not watch_quiet:
        print(
            f"  FALSE ALARM: {watch_info['transitions']} alert "
            "transition(s) on a healthy run"
        )
    # Like the profiled pass, the 2% ceiling is asserted on full runs
    # only: small CI runs are too short for stable throughput ratios.
    watch_cheap = watch_overhead_pct < 2.0
    verdict = "ok" if watch_cheap else "OVER BUDGET"
    print(f"  overhead budget <2%: {watch_overhead_pct:+.1f}% — {verdict}")

    fresh = {
        "insert_throughput": insert_results,
        "snapshot_reads": snapshot_results,
        "closed_loop": loop_results,
        "profiling": profiling_results,
        "watch": watch_results,
        "config": {
            "insert_threads": threads,
            "inserts_per_thread": inserts,
            "clients": clients,
            "requests_per_client": requests_per_client,
        },
    }

    failed = check_regression(existing, fresh, mode) if args.check else []

    # Merge, don't replace: other benchmarks (bench_recovery) keep their
    # own keys inside the same per-mode section.
    existing.setdefault(mode, {}).update(fresh)
    args.output.write_text(
        json.dumps(existing, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.output}")

    if speedup < 3.0:
        # The 3x criterion is asserted on full runs; small CI runs are
        # too short to hold the scheduler still and gate on the
        # baseline comparison instead.
        print(f"group commit speedup {speedup:.2f}x is below 3x")
        if mode == "full":
            return 1
    if failed:
        print(f"FAIL: throughput regressed >20% on: {', '.join(failed)}")
        return 1
    if not snapshot_ok:
        print("FAIL: snapshot read p95 degrades >10% under write load")
        return 1
    if not attribution_ok:
        print("FAIL: stage attribution does not add up to measured latency")
        return 1
    if not witness_ok:
        print("FAIL: observed lock order diverges from the static graph")
        return 1
    if not watch_quiet:
        print("FAIL: the watch layer raised alerts on a healthy run")
        return 1
    if not watch_cheap and mode == "full":
        print("FAIL: watch overhead exceeds the 2% throughput budget")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
