"""F4 — the execution-model state machines as an executable artifact.

Prints the three transition tables of Fig. 4 / §4.2 exactly as
implemented (the correctness of each table is pinned transition-by-
transition in tests/core/test_states.py) and benchmarks the state-
machine hot path the engine exercises on every instance decision.
"""

from __future__ import annotations

from repro.core.states import (
    BASIC_MODEL,
    TASK_INSTANCE_MODEL,
    TASK_MODEL,
    Event,
    instance_machine,
    task_machine,
)


def table_rows(table) -> list[list[str]]:
    rows = []
    for (state, event), target in table.items():
        rows.append([str(state.value), str(event.value), str(target.value)])
    return rows


def test_f4_transition_tables(report, benchmark):
    for title, table in [
        ("F4  basic execution model", BASIC_MODEL),
        ("F4  task execution model (extended)", TASK_MODEL),
        ("F4  task instance execution model (extended)", TASK_INSTANCE_MODEL),
    ]:
        report(title, ["state", "event", "next state"], table_rows(table))
    assert len(BASIC_MODEL) == 8
    assert len(TASK_MODEL) == 10
    assert len(TASK_INSTANCE_MODEL) == 6

    def instance_lifecycle():
        machine = instance_machine()
        machine.apply(Event.DELEGATE)
        machine.apply(Event.START)
        machine.apply(Event.COMPLETE)

    benchmark(instance_lifecycle)


def test_f4_task_lifecycle_throughput(benchmark):
    def task_lifecycle_with_restart():
        machine = task_machine()
        machine.apply(Event.BECOME_ELIGIBLE)
        machine.apply(Event.ACTIVATE)
        machine.apply(Event.COMPLETE)
        machine.apply(Event.RESTART)
        machine.apply(Event.BECOME_ELIGIBLE)
        machine.apply(Event.ACTIVATE)
        machine.apply(Event.ABORT)

    benchmark(task_lifecycle_with_restart)
