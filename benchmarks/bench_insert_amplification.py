"""E3 — §5.2: "a simple insert into an experiment related table can
trigger several database reads in order to check whether this
modification changes any task or workflow state."

Regenerates the read-amplification series: the number of DB reads
triggered by one completing insert, as a function of the workflow's
fan-out (how many destination tasks must be re-checked).  The paper
reports the effect qualitatively; the reproduced series must grow
monotonically with fan-out.
"""

from __future__ import annotations

import pytest

from repro.workloads.generator import build_synthetic_lab

FANOUTS = [1, 2, 4, 8]


@pytest.fixture(scope="module")
def fanout_series():
    series = []
    for width in FANOUTS:
        lab = build_synthetic_lab(stages=3)
        pattern = lab.fanout_pattern(width)
        workflow = lab.engine.start_workflow(pattern.name)
        view = lab.engine.workflow_view(workflow["workflow_id"])
        source = view.tasks["source"].instances[0]
        snapshot = lab.app.db.stats.snapshot()
        lab.engine.complete_instance(
            source.experiment_id,
            success=True,
            outputs=[{"sample_type": "Mat0", "name": f"m-{width}"}],
        )
        delta = lab.app.db.stats.snapshot().delta(snapshot)
        series.append((width, delta.reads, delta.writes))
    return series


def test_e3_insert_amplification_series(fanout_series, report, benchmark):
    rows = [
        [width, reads, writes, f"{reads / max(1, writes):.1f}x"]
        for width, reads, writes in fanout_series
    ]
    report(
        "E3  DB accesses triggered by one completing insert vs fan-out",
        ["fan-out", "reads triggered", "writes", "read/write ratio"],
        rows,
    )
    reads = [r for __, r, ___ in fanout_series]
    # "Several" reads even at fan-out 1, growing with fan-out.
    assert reads[0] >= 5
    assert all(a <= b for a, b in zip(reads, reads[1:]))
    assert reads[-1] > 2 * reads[0]

    # Wall-clock of the amplified insert path at the largest fan-out.
    lab = build_synthetic_lab(stages=3)
    pattern = lab.fanout_pattern(FANOUTS[-1])

    def complete_one():
        workflow = lab.engine.start_workflow(pattern.name)
        view = lab.engine.workflow_view(workflow["workflow_id"])
        source = view.tasks["source"].instances[0]
        lab.engine.complete_instance(
            source.experiment_id,
            success=True,
            outputs=[{"sample_type": "Mat0", "name": "m"}],
        )

    benchmark.pedantic(complete_one, rounds=5, iterations=1)
