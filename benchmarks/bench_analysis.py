"""A1 — static-analysis throughput over synthetic specifications.

Runs the soundness verifier over generator patterns at three scales
(50/500/5000-task chains, a wide fan-out, and a guard-heavy branchy
pattern at the ``MAX_GUARDS`` exploration cap) and records diagnostics
per second plus the marking-exploration counters, emitting
``BENCH_analysis.json`` so successive runs stay comparable.

The 5000-task chain is the case that forced the verifier onto
precomputed adjacency (``_Graph``) instead of the quadratic
``pattern.depth_map()`` helpers; a regression there shows up here as a
collapse in patterns/sec long before tests notice.
"""

from __future__ import annotations

import time

from repro.analysis import MAX_GUARDS, check_pattern
from repro.workloads.generator import (
    synthetic_branchy_pattern,
    synthetic_chain_pattern,
    synthetic_fanout_pattern,
)


def _cases():
    return [
        ("chain-50", synthetic_chain_pattern(50)),
        ("chain-500", synthetic_chain_pattern(500)),
        ("chain-5000", synthetic_chain_pattern(5000)),
        ("fanout-64", synthetic_fanout_pattern(64)),
        # Six diamonds x two guards lands exactly on the MAX_GUARDS cap:
        # the worst tractable marking exploration.
        ("branchy-6", synthetic_branchy_pattern(6)),
    ]


def test_a1_analysis_throughput(report, emit_bench, benchmark):
    rows = []
    trajectory = {}
    for name, pattern in _cases():
        start = time.perf_counter()
        result = check_pattern(pattern)
        elapsed = time.perf_counter() - start
        assert result.ok, result.render_text()
        diagnostics = len(result.diagnostics)
        stats = dict(result.stats)
        rows.append(
            [
                name,
                stats.get("tasks", 0),
                stats.get("guards", 0),
                stats.get("assignments_explored", 0),
                stats.get("states_visited", 0),
                f"{elapsed * 1000:.1f}",
                f"{(diagnostics or 1) / elapsed:.0f}",
            ]
        )
        trajectory[name] = {
            "elapsed_seconds": elapsed,
            "diagnostics": diagnostics,
            "diagnostics_per_second": (diagnostics or 1) / elapsed,
            **stats,
        }
    report(
        "A1  wfcheck throughput (synthetic specifications)",
        [
            "pattern",
            "tasks",
            "guards",
            "assignments",
            "states",
            "ms",
            "diag/s",
        ],
        rows,
    )
    branchy = trajectory["branchy-6"]
    assert branchy["guards"] == MAX_GUARDS
    assert branchy["assignments_explored"] > 0
    emit_bench("analysis", trajectory)

    benchmark(lambda: check_pattern(synthetic_chain_pattern(500)))


def test_a1_codelint_throughput(report, emit_bench, benchmark):
    from pathlib import Path

    from repro.analysis import lint_paths

    src = Path(__file__).resolve().parents[1] / "src"
    start = time.perf_counter()
    result = lint_paths([src])
    elapsed = time.perf_counter() - start
    assert result.ok, result.render_text()
    files = result.stats["files"]
    report(
        "A1  codelint throughput (repository source tree)",
        ["files", "findings", "ms", "files/s"],
        [[files, len(result.diagnostics), f"{elapsed * 1000:.1f}",
          f"{files / elapsed:.0f}"]],
    )
    emit_bench(
        "analysis_codelint",
        {
            "files": files,
            "findings": len(result.diagnostics),
            "elapsed_seconds": elapsed,
            "files_per_second": files / elapsed,
        },
    )

    benchmark(lambda: lint_paths([src / "repro" / "analysis"]))
