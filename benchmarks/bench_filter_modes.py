"""F7 — the WorkflowFilter's request-handling modes, counted and timed.

Drives a request suite through the filter and reports how many requests
took each of Fig. 7's paths — (a) preprocess+forward / deny, (b) full
processing, (c) postprocess — plus the pass-through path for
non-workflow-related requests.  The mode counts are read back from the
``repro.obs`` metrics registry (the same numbers a monitoring system
would scrape from ``/workflow/metrics``) and written to
``BENCH_filter_modes.json``.
"""

from __future__ import annotations

import pytest

from repro.core import PatternBuilder, install_workflow_support
from repro.core.persistence import save_pattern
from repro.minidb.schema import Column
from repro.minidb.types import ColumnType
from repro.obs import install_observability
from repro.weblims import build_expdb
from repro.weblims.schema_setup import (
    add_experiment_type,
    add_sample_type,
    declare_experiment_io,
)


@pytest.fixture(scope="module")
def wired():
    app = build_expdb()
    engine = install_workflow_support(app)
    hub = install_observability(expdb=app, engine=engine)
    add_experiment_type(app.db, "A", [Column("reading", ColumnType.REAL)])
    add_sample_type(app.db, "SA", [])
    declare_experiment_io(app.db, "A", "SA", "output")
    pattern = (
        PatternBuilder("flow").task("a", experiment_type="A").build(db=app.db)
    )
    save_pattern(app.db, pattern)
    return app, engine, app.container.context["workflow_filter"], hub


def drive_suite(app) -> None:
    # pass-through: reads and plain-table writes
    app.get("/user", action="read", table="A")
    app.get("/user", action="list")
    app.post("/user", action="insert", table="Project", v_name="p")
    # mode a (allowed): workflow-relevant writes
    app.post("/user", action="insert", table="A", v_reading="0.5")
    app.post("/user", action="insert", table="Sample", v_type_name="SA")
    # mode a (denied): engine-owned column write
    app.post(
        "/user",
        action="update",
        table="Experiment",
        c_type_name="A",
        v_wf_state="completed",
    )
    # mode b: explicit workflow actions
    app.post("/user", workflow_action="start", pattern="flow")
    app.get("/user", workflow_action="list")


def test_f7_mode_distribution(wired, report, benchmark, emit_bench):
    app, engine, filter_, hub = wired
    filter_.stats.reset()
    drive_suite(app)
    # Read the mode counters back through the registry, as a scrape would.
    snapshot = hub.registry.snapshot()
    modes = {
        series["labels"]["mode"]: int(series["value"])
        for series in snapshot["workflow_filter_requests_total"]["series"]
    }
    rows = [
        ["pass-through (not workflow-related)", modes["passed_through"]],
        ["(a) preprocessed then forwarded", modes["preprocessed"] - modes["denied"]],
        ["(a) denied before the original servlet", modes["denied"]],
        ["(b) processed by the WorkflowServlet", modes["processed"]],
        ["(c) responses postprocessed", modes["postprocessed"]],
    ]
    report("F7  request routing through the WorkflowFilter", ["path", "requests"], rows)
    assert modes["passed_through"] == 3
    assert modes["preprocessed"] == 3
    assert modes["denied"] == 1
    assert modes["processed"] == 2
    # Only the successful mode-(a) requests get postprocessed.
    assert modes["postprocessed"] == 2

    emit_bench(
        "filter_modes",
        {
            "modes": modes,
            "http_request_latency_ms": {
                f"p{int(q * 100)}": hub.registry.family_quantile(
                    "http_request_latency_ms", q
                )
                for q in (0.5, 0.95, 0.99)
            },
        },
    )

    benchmark(lambda: app.get("/user", action="read", table="A"))


def test_f7_mode_b_wallclock(wired, benchmark):
    app, __, ___, ____ = wired
    benchmark(lambda: app.get("/user", workflow_action="list"))
