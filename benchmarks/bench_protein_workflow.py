"""E5 / Fig. 1 — the protein-creation workflow, regenerated.

Runs the paper's running example end to end on both conditional
branches and prints the execution trace the figure implies: which tasks
ran, in what state they ended, what flowed through the nested
sub-workflow, and the total system activity (DB accesses, persistent
messages, emails).
"""

from __future__ import annotations

import pytest

from repro.workloads.protein import build_protein_lab


def run(colonies: int):
    lab = build_protein_lab(colonies=colonies)
    workflow = lab.engine.start_workflow("protein_creation")
    status = lab.run_to_completion(workflow["workflow_id"])
    view = lab.engine.workflow_view(workflow["workflow_id"])
    return lab, view, status


@pytest.fixture(scope="module")
def both_branches():
    return run(25), run(10)


def test_e5_protein_workflow_trace(both_branches, report, benchmark):
    (lab_a, view_a, status_a), (lab_b, view_b, status_b) = both_branches
    rows = []
    for name in view_a.tasks:
        task_a = view_a.tasks[name]
        task_b = view_b.tasks[name]
        rows.append(
            [
                name,
                f"{task_a.state} ({task_a.completed_instances}/"
                f"{len(task_a.instances)})",
                f"{task_b.state} ({task_b.completed_instances}/"
                f"{len(task_b.instances)})",
            ]
        )
    report(
        "E5  Fig.1 protein creation: task outcomes per branch",
        ["task", "many colonies (screening)", "few colonies (miniprep)"],
        rows,
    )
    stats_rows = [
        ["workflow status", status_a, status_b],
        ["db reads", lab_a.app.db.stats.reads, lab_b.app.db.stats.reads],
        ["db writes", lab_a.app.db.stats.writes, lab_b.app.db.stats.writes],
        ["messages sent", lab_a.broker.stats.sends, lab_b.broker.stats.sends],
        [
            "technician emails",
            lab_a.email.sent_count,
            lab_b.email.sent_count,
        ],
        [
            "purified proteins",
            lab_a.app.db.count("PurifiedProtein"),
            lab_b.app.db.count("PurifiedProtein"),
        ],
    ]
    report(
        "E5  system activity per run",
        ["metric", "screening branch", "miniprep branch"],
        stats_rows,
    )
    # Branch exclusivity and completion (Fig. 1's semantics).
    assert status_a == status_b == "completed"
    assert view_a.tasks["pcr_screening"].state == "completed"
    assert view_a.tasks["miniprep"].state == "unreachable"
    assert view_b.tasks["miniprep"].state == "completed"
    assert view_b.tasks["pcr_screening"].state == "unreachable"
    assert lab_a.app.db.count("PurifiedProtein") == 1
    assert lab_b.app.db.count("PurifiedProtein") == 1

    def full_run():
        lab = build_protein_lab(colonies=25)
        workflow = lab.engine.start_workflow("protein_creation")
        return lab.run_to_completion(workflow["workflow_id"])

    result = benchmark.pedantic(full_run, rounds=3, iterations=1)
    assert result == "completed"
