"""E4 — §5.2: "Sending messages to a persistent message queue also has
some time overhead."

Regenerates the persistence-overhead comparison: dispatching the same
task workload through a persistent (journalled) broker vs a transient
one, reporting both the modeled cost difference and the measured
wall-clock per-send overhead of the journal's write+fsync.
"""

from __future__ import annotations

import time

import pytest

from repro.messaging import MessageBroker
from repro.workloads.costmodel import CostModel

SENDS = 50
BODY = "<task-input>payload</task-input>"


def drive(broker: MessageBroker) -> float:
    broker.declare_queue("agent.bench")
    start = time.perf_counter()
    for index in range(SENDS):
        broker.send("agent.bench", BODY, headers={"n": index})
    return (time.perf_counter() - start) / SENDS


def test_e4_messaging_overhead_table(tmp_path, report, benchmark):
    transient = MessageBroker()
    persistent = MessageBroker(tmp_path / "bench.journal")
    transient_per_send = drive(transient)
    persistent_per_send = drive(persistent)
    model = CostModel()
    rows = [
        [
            "transient queue",
            f"{transient_per_send * 1e6:.1f}",
            f"{model.transient_send_ms:.0f}",
        ],
        [
            "persistent queue (journal + fsync)",
            f"{persistent_per_send * 1e6:.1f}",
            f"{model.persistent_send_ms:.0f}",
        ],
        [
            "overhead factor",
            f"{persistent_per_send / max(transient_per_send, 1e-9):.1f}x",
            f"{model.persistent_send_ms / model.transient_send_ms:.0f}x",
        ],
    ]
    report(
        "E4  per-send cost: persistent vs transient messaging",
        ["configuration", "measured us/send", "modeled ms/send"],
        rows,
    )
    # The paper's claim: persistence costs something real.
    assert persistent_per_send > transient_per_send
    # Both brokers deliver identically.
    assert transient.queue_depth("agent.bench") == SENDS
    assert persistent.queue_depth("agent.bench") == SENDS
    persistent.close()

    bench_broker = MessageBroker(tmp_path / "wallclock.journal")
    bench_broker.declare_queue("q")
    benchmark(lambda: bench_broker.send("q", BODY))
    bench_broker.close()


def test_e4_transient_send_wallclock(benchmark):
    broker = MessageBroker()
    broker.declare_queue("q")
    benchmark(lambda: broker.send("q", BODY))
