"""E2 — §5.2: "little time was spent in the WorkflowFilter,
WorkflowServlet or WorkflowBean.  Instead, the response time was mainly
determined by the number of database read and write accesses."

Regenerates the per-component breakdown of every operation in the mix
and asserts the dominance ordering the paper reports:
DB ≫ messaging > filter/servlet/bean CPU.
"""

from __future__ import annotations

import pytest

from repro.workloads.requests import build_fixture


@pytest.fixture(scope="module")
def measurements():
    fixture = build_fixture()
    return fixture, {
        name: fixture.measure(name) for name in fixture.OPERATION_MIX
    }


def test_e2_component_breakdown_table(measurements, report, benchmark):
    fixture, measured = measurements
    rows = []
    for name, (__, cost) in measured.items():
        breakdown = cost.breakdown()
        share = (
            100.0 * breakdown["database"] / breakdown["total"]
            if breakdown["total"]
            else 0.0
        )
        rows.append(
            [
                name,
                f"{breakdown['database']:.1f}",
                f"{breakdown['messaging']:.1f}",
                f"{breakdown['web_cpu']:.2f}",
                f"{breakdown['overhead']:.0f}",
                f"{share:.0f}%",
            ]
        )
    report(
        "E2  response-time breakdown per component (ms)",
        ["operation", "database", "messaging", "filter+servlet+bean",
         "fixed", "db share of total"],
        rows,
    )
    for name in (
        "start_workflow_request",
        "complete_instance_request",
        "authorize_request",
    ):
        __, cost = measured[name]
        # The paper's two dominance claims.
        assert cost.db_ms > 10 * cost.web_cpu_ms, name
        assert cost.db_ms > cost.messaging_ms, name
    for name, (__, cost) in measured.items():
        assert cost.web_cpu_ms < 0.02 * cost.total_ms, name

    # Wall-clock: the engine-check path that produces the DB accesses.
    workflow = fixture.lab.engine.start_workflow("protein_creation")

    def check():
        fixture.lab.engine.check_workflow(workflow["workflow_id"])

    benchmark(check)
