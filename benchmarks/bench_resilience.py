"""Resilience overhead — the fault-free tax of the repro.resilience layer.

The resilience machinery (fault-injection hooks, retry-policy lookups,
lease bookkeeping, breaker checks) rides on every hot path: WAL appends,
message publish/deliver/ack, agent dispatch.  This bench runs the
fault-free protein workflow twice per round — once with no fault plan
(hooks short-circuit) and once with an *armed* plan whose rules never
match (every hook pays full rule matching) — and asserts the armed run
costs less than 5 % extra.  A fault-free run must also leave the
resilience machinery untouched: no redeliveries, no dead letters, no
lease expiries, every breaker closed.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.resilience import FaultPlan
from repro.workloads.protein import build_protein_lab

ROUNDS = 7
OVERHEAD_BUDGET = 0.05


def armed_plan() -> FaultPlan:
    """A plan matching no injection point: pure instrumentation cost."""
    return FaultPlan(seed=11).rule("bench.never.*", "crash", times=None)


def timed_run(fault_plan: FaultPlan | None):
    lab = build_protein_lab(colonies=25, fault_plan=fault_plan)
    start = time.perf_counter()
    workflow = lab.engine.start_workflow("protein_creation")
    status = lab.run_to_completion(workflow["workflow_id"])
    elapsed = time.perf_counter() - start
    assert status == "completed"
    return lab, elapsed


@pytest.fixture(scope="module")
def measurements():
    """Interleaved rounds so machine noise hits both conditions alike."""
    baseline: list[float] = []
    armed: list[float] = []
    labs = {}
    for __ in range(ROUNDS):
        lab_baseline, seconds = timed_run(None)
        baseline.append(seconds)
        lab_armed, seconds = timed_run(armed_plan())
        armed.append(seconds)
        labs = {"baseline": lab_baseline, "armed": lab_armed}
    return baseline, armed, labs


def test_fault_free_overhead_under_budget(
    measurements, report, emit_bench, benchmark
):
    baseline, armed, labs = measurements
    # Best-of-N is the stable estimator for in-process wall clock.
    overhead = min(armed) / min(baseline) - 1.0

    def ms(values: list[float]) -> str:
        return f"{min(values) * 1000:.2f} / {statistics.median(values) * 1000:.2f}"

    report(
        "Resilience layer: fault-free overhead (protein run, 25 colonies)",
        ["condition", "min / median (ms)", "rounds"],
        [
            ["no fault plan", ms(baseline), ROUNDS],
            ["armed, never-matching plan", ms(armed), ROUNDS],
            ["overhead", f"{overhead * 100:+.2f} %", f"budget {OVERHEAD_BUDGET:.0%}"],
        ],
    )

    # A fault-free run must not trip any of the recovery machinery.
    for lab in labs.values():
        assert lab.broker.stats.redeliveries == 0
        assert lab.broker.stats.rejections == 0
        assert lab.broker.stats.dead_lettered == 0
        assert lab.broker.dlq_depth() == 0
        assert lab.manager.redispatches == 0
        assert lab.manager.lease_aborts == 0
        assert lab.manager.dispatch_failures == 0
        for snapshot in lab.manager.breaker_snapshots().values():
            assert snapshot["state"] == "closed"

    emit_bench(
        "resilience",
        {
            "rounds": ROUNDS,
            "baseline_s": {
                "min": min(baseline),
                "median": statistics.median(baseline),
            },
            "armed_s": {"min": min(armed), "median": statistics.median(armed)},
            "fault_free_overhead": overhead,
            "overhead_budget": OVERHEAD_BUDGET,
            "messages_sent": labs["armed"].broker.stats.sends,
            "redeliveries": labs["armed"].broker.stats.redeliveries,
            "dead_lettered": labs["armed"].broker.stats.dead_lettered,
        },
    )
    assert overhead < OVERHEAD_BUDGET

    result = benchmark.pedantic(
        lambda: timed_run(armed_plan())[1], rounds=3, iterations=1
    )
    assert result > 0.0
