"""A2 — ablation: multi-instance tasks vs single-instance modeling.

§4.2 argues that modeling repetition with multiple instances per task
beats the basic model's alternatives (self-loops or N parallel task
copies).  This bench quantifies the argument: to obtain one successful
run of a flaky experiment (failure probability p), compare

* the extended model: ONE task with k parallel default instances —
  pattern size stays constant, retries are spawned at runtime;
* the basic-model encoding: k parallel single-instance tasks sharing
  source and destination — pattern size grows with k, and k must be
  fixed before runtime ("inadequate if the number of experiment
  instances to create is not known before runtime").

Reported: pattern elements needed and success probability per p and k.
"""

from __future__ import annotations

import pytest

from repro.core import PatternBuilder
from repro.core.persistence import save_pattern
from repro.workloads.generator import build_synthetic_lab

FAILURE_RATES = [0.1, 0.3, 0.5, 0.7]
PARALLELISM = [1, 2, 4, 8]


def run_multi_instance(failure_rate: float, instances: int, seed: int) -> bool:
    lab = build_synthetic_lab(stages=1, failure_rate=failure_rate, seed=seed)
    pattern = lab.retry_pattern(default_instances=instances)
    workflow = lab.engine.start_workflow(pattern.name)
    status = lab.run_to_completion(workflow["workflow_id"])
    return status == "completed"


def basic_model_pattern_elements(parallelism: int) -> int:
    """Elements a basic-model encoding needs: k task copies plus fan-in
    and fan-out transitions around them (2 per copy with a source and a
    sink), vs the extended model's single task definition."""
    return parallelism + 2 * parallelism


def test_a2_multi_instance_ablation(report, benchmark):
    rows = []
    for failure_rate in FAILURE_RATES:
        for parallelism in PARALLELISM:
            successes = sum(
                run_multi_instance(failure_rate, parallelism, seed)
                for seed in range(5)
            )
            rows.append(
                [
                    failure_rate,
                    parallelism,
                    1,  # extended model: one task definition, always
                    basic_model_pattern_elements(parallelism),
                    f"{successes}/5",
                ]
            )
    report(
        "A2  multi-instance tasks vs basic-model parallel-task encoding",
        [
            "failure p",
            "parallel runs k",
            "extended-model tasks",
            "basic-model elements",
            "workflow succeeded",
        ],
        rows,
    )
    # Shape: the extended model's spec size is flat in k; the basic
    # encoding grows linearly; higher k rescues higher failure rates.
    low_k = [row for row in rows if row[1] == 1]
    high_k = [row for row in rows if row[1] == 8]
    low_success = sum(int(row[4].split("/")[0]) for row in low_k)
    high_success = sum(int(row[4].split("/")[0]) for row in high_k)
    assert high_success > low_success
    assert all(row[2] == 1 for row in rows)

    benchmark.pedantic(
        lambda: run_multi_instance(0.3, 4, seed=1), rounds=3, iterations=1
    )


def test_a2_runtime_spawn_vs_static_encoding(report, benchmark):
    """The runtime-spawn capability the basic model lacks: reach one
    success against a very flaky robot by spawning instances on demand —
    no pattern change, unbounded retries."""
    lab = build_synthetic_lab(stages=1, failure_rate=0.7, seed=9)
    pattern = lab.retry_pattern(default_instances=1)
    workflow = lab.engine.start_workflow(pattern.name)
    workflow_id = workflow["workflow_id"]
    spawned = 0
    for __ in range(30):
        for request in lab.engine.pending_authorizations():
            lab.engine.respond_authorization(request["auth_id"], True, "a2")
        lab.run_messages()
        view = lab.engine.workflow_view(workflow_id)
        task = view.tasks["only"]
        if task.completed_instances >= 1:
            break
        if task.state == "active":
            lab.engine.spawn_instance(workflow_id, "only")
            spawned += 1
            lab.run_messages()
        elif task.state == "aborted":
            lab.engine.restart_task(workflow_id, "only")
    view = lab.engine.workflow_view(workflow_id)
    report(
        "A2  runtime spawning until success (p=0.7)",
        ["metric", "value"],
        [
            ["instances spawned beyond default", spawned],
            ["total instances", len(view.tasks["only"].instances)],
            ["completed", view.tasks["only"].completed_instances],
            ["pattern tasks", 1],
        ],
    )
    assert view.tasks["only"].completed_instances >= 1

    benchmark(lambda: lab.engine.workflow_view(workflow_id))
