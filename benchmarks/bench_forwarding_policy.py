"""A3 — ablation: output-forwarding policies (§4.2's design discussion).

"One extreme would send the output of all completed instances and let
the agent of the destination decide which one to take.  This might
overwhelm the receiver.  The other extreme lets Exp-WF pick a single
instance as the output provider.  ...  Our solution is a compromise
forwarding outputs from all 'successfully' completed source instances."

This bench quantifies the three policies on a fan-in workload with mixed
instance success: how many candidate inputs the destination agent must
choose among under each policy.
"""

from __future__ import annotations

import pytest

from repro.core import PatternBuilder
from repro.workloads.generator import build_synthetic_lab

INSTANCE_COUNTS = [4, 8, 16]
SUCCESS_RATIO = 0.5  # half the instances are declared successful


def build_fanin(total_instances: int):
    lab = build_synthetic_lab(stages=2)
    builder = (
        PatternBuilder(f"fanin-{total_instances}")
        .task("src", experiment_type="Stage0",
              default_instances=total_instances)
        .task("dst", experiment_type="Stage1")
        .flow("src", "dst")
        .data("src", "dst", sample_type="Mat0")
    )
    pattern = builder.build(db=lab.app.db)
    from repro.core.persistence import save_pattern

    save_pattern(lab.app.db, pattern)
    workflow = lab.engine.start_workflow(pattern.name)
    workflow_id = workflow["workflow_id"]
    view = lab.engine.workflow_view(workflow_id)
    successes = int(total_instances * SUCCESS_RATIO)
    for index, instance in enumerate(view.tasks["src"].instances):
        lab.engine.complete_instance(
            instance.experiment_id,
            success=index < successes,
            outputs=[
                {
                    "sample_type": "Mat0",
                    "name": f"out-{index}",
                    "quality": round(0.5 + 0.03 * index, 2),
                }
            ],
        )
    return lab, workflow_id


def test_a3_forwarding_policy_table(report, benchmark):
    rows = []
    for total in INSTANCE_COUNTS:
        lab, workflow_id = build_fanin(total)
        # Paper policy: all *successful* outputs.
        forwarded = lab.engine.collect_available_inputs(workflow_id, "dst")
        all_outputs = total  # the "overwhelm the receiver" extreme
        single_best = 1  # the automated-quality-control extreme
        rows.append(
            [
                total,
                all_outputs,
                len(forwarded),
                single_best,
            ]
        )
        # The compromise sits strictly between the extremes.
        assert single_best < len(forwarded) < all_outputs
        assert len(forwarded) == int(total * SUCCESS_RATIO)
    report(
        "A3  candidate inputs offered to the destination agent",
        [
            "source instances",
            "all outputs (extreme 1)",
            "successful only (Exp-WF)",
            "single best (extreme 2)",
        ],
        rows,
    )

    lab, workflow_id = build_fanin(INSTANCE_COUNTS[-1])
    benchmark(
        lambda: lab.engine.collect_available_inputs(workflow_id, "dst")
    )
