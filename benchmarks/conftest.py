"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one row/table of the paper's
evaluation (see DESIGN.md §5).  Tables are printed through
``print_table`` with capture disabled, so ``pytest benchmarks/
--benchmark-only`` shows both the reproduced evaluation tables and
pytest-benchmark's wall-clock statistics.

Benches additionally emit machine-readable trajectory files through the
``emit_bench`` fixture: ``emit_bench("response_times", payload)`` writes
``benchmarks/BENCH_response_times.json``, with the payload sourced from
the ``repro.obs`` metrics registry so every run leaves a comparable
record behind.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest


@pytest.fixture
def emit_bench():
    """Write one ``BENCH_<name>.json`` trajectory file per bench run."""

    def write(name: str, payload: dict) -> Path:
        path = Path(__file__).parent / f"BENCH_{name}.json"
        path.write_text(
            json.dumps(payload, indent=2, default=str) + "\n",
            encoding="utf-8",
        )
        return path

    return write


@pytest.fixture
def report(capsys):
    """Print a formatted table even under pytest's output capture."""

    def print_table(title: str, headers: list[str], rows: list[list]) -> None:
        widths = [
            max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
            if rows
            else len(str(headers[i]))
            for i in range(len(headers))
        ]

        def fmt(cells) -> str:
            return "  ".join(
                str(cell).ljust(width) for cell, width in zip(cells, widths)
            )

        with capsys.disabled():
            print(f"\n--- {title} ---")
            print(fmt(headers))
            print(fmt(["-" * width for width in widths]))
            for row in rows:
                print(fmt(row))

    return print_table
