"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one row/table of the paper's
evaluation (see DESIGN.md §5).  Tables are printed through
``print_table`` with capture disabled, so ``pytest benchmarks/
--benchmark-only`` shows both the reproduced evaluation tables and
pytest-benchmark's wall-clock statistics.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def report(capsys):
    """Print a formatted table even under pytest's output capture."""

    def print_table(title: str, headers: list[str], rows: list[list]) -> None:
        widths = [
            max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
            if rows
            else len(str(headers[i]))
            for i in range(len(headers))
        ]

        def fmt(cells) -> str:
            return "  ".join(
                str(cell).ljust(width) for cell, width in zip(cells, widths)
            )

        with capsys.disabled():
            print(f"\n--- {title} ---")
            print(fmt(headers))
            print(fmt(["-" * width for width in widths]))
            for row in rows:
                print(fmt(row))

    return print_table
