"""A1 — ablation: what does the non-intrusive filter integration cost?

The paper's §5.1.1 design choice is to intercept every request through a
servlet filter rather than wiring the engine into the LIMS components.
This bench measures that choice: the same request suite against

* a plain Exp-DB (no filter installed at all),
* Exp-DB + Exp-WF, with only non-workflow requests (interception
  overhead on traffic the filter just passes through),
* Exp-DB + Exp-WF with workflow-relevant writes (full pre+postprocess).

The paper's claim — interception itself is cheap; the cost is the
workflow *checks* (DB reads), not the filter — must hold.
"""

from __future__ import annotations

import time

import pytest

from repro.core import install_workflow_support
from repro.minidb.schema import Column
from repro.minidb.types import ColumnType
from repro.weblims import build_expdb
from repro.weblims.schema_setup import add_experiment_type

REPEATS = 200


def build_plain():
    app = build_expdb()
    add_experiment_type(app.db, "A", [Column("reading", ColumnType.REAL)])
    return app


def build_filtered():
    app = build_expdb()
    install_workflow_support(app)
    add_experiment_type(app.db, "A", [Column("reading", ColumnType.REAL)])
    return app


def time_reads(app) -> float:
    start = time.perf_counter()
    for __ in range(REPEATS):
        app.get("/user", action="read", table="A")
    return (time.perf_counter() - start) / REPEATS


def measure_insert_reads(app) -> int:
    snapshot = app.db.stats.snapshot()
    app.post("/user", action="insert", table="A", v_reading="0.5")
    return app.db.stats.snapshot().delta(snapshot).reads


def test_a1_filter_ablation_table(report, benchmark):
    plain = build_plain()
    filtered = build_filtered()
    plain_read = time_reads(plain)
    filtered_read = time_reads(filtered)
    plain_insert_reads = measure_insert_reads(plain)
    filtered_insert_reads = measure_insert_reads(filtered)
    rows = [
        [
            "read request (us, wall-clock)",
            f"{plain_read * 1e6:.1f}",
            f"{filtered_read * 1e6:.1f}",
            f"{(filtered_read / plain_read - 1) * 100:+.0f}%",
        ],
        [
            "DB reads per experiment insert",
            plain_insert_reads,
            filtered_insert_reads,
            f"+{filtered_insert_reads - plain_insert_reads}",
        ],
    ]
    report(
        "A1  filter-integration ablation: plain Exp-DB vs Exp-DB+Exp-WF",
        ["metric", "plain", "with WorkflowFilter", "delta"],
        rows,
    )
    # Interception on pass-through traffic costs at most ~3x a raw read
    # (it is a handful of in-process calls)...
    assert filtered_read < plain_read * 3
    # ...whereas workflow checking adds real DB reads on relevant writes.
    assert filtered_insert_reads > plain_insert_reads

    benchmark(lambda: filtered.get("/user", action="read", table="A"))


def test_a1_plain_read_wallclock(benchmark):
    app = build_plain()
    benchmark(lambda: app.get("/user", action="read", table="A"))
