#!/usr/bin/env python
"""Recovery-time flatness under the segmented WAL (durability v2).

The v2 recovery path replays the newest checkpoint snapshot plus the
post-watermark tail — *not* the full history.  This benchmark proves the
resulting claim and gates on it:

``flatness``
    Build two stores with identical live state (~a few hundred rows)
    and the same automatic :class:`CheckpointPolicy`, one with baseline
    update churn and one with ``HISTORY_MULTIPLIER``x the churn.  Cold
    reopen both (best of N trials).  Recovery time for the deep-history
    store must stay within ``FLATNESS_CEILING`` (2x) of the shallow one,
    and the number of records it replays must stay bounded by
    ``checkpoint + checkpoint_every + slack`` — history depth must not
    leak into restart time.

``control``
    The same deep churn with checkpointing disabled: recovery replays
    every record ever written.  Reported (not gated) to make visible
    what the checkpoints are buying.

``--small`` shrinks the sizing for CI smoke use; results land in a
per-mode section of ``BENCH_perf.json`` so small runs never clobber
full-run numbers.  ``--check`` additionally compares the fresh
deep-history recovery time against the committed baseline for the same
mode and fails on a >3x blow-up (timing is machine-relative, so the
cross-run tolerance is deliberately looser than the in-run 2x gate).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.minidb import (
    EQ,
    CheckpointPolicy,
    Column,
    ColumnType,
    Database,
    TableSchema,
)

DEFAULT_OUTPUT = Path(__file__).parent / "BENCH_perf.json"

#: Deep-history recovery must stay within this factor of shallow-history
#: recovery — the headline gate of the benchmark.
FLATNESS_CEILING = 2.0
#: ``--check`` tolerance versus the committed baseline (cross-machine
#: timing, so much looser than the in-run flatness gate).
BASELINE_BLOWUP = 3.0
#: Ratios are meaningless at sub-millisecond absolute times; the
#: denominator is floored here so scheduler noise cannot fail the gate.
NOISE_FLOOR_MS = 1.0

MODES = {
    # (live rows, baseline churn, history multiplier,
    #  checkpoint every N records, reopen trials)
    "small": (100, 300, 25, 150, 3),
    "full": (200, 1000, 100, 500, 5),
}


def sample_schema() -> TableSchema:
    return TableSchema(
        name="Sample",
        columns=[
            Column("sample_id", ColumnType.INTEGER, nullable=False),
            Column("assay", ColumnType.TEXT, nullable=False),
            Column("revision", ColumnType.INTEGER, nullable=False),
        ],
        primary_key=("sample_id",),
        autoincrement="sample_id",
    )


def build_history(
    path: Path,
    live_rows: int,
    churn_updates: int,
    checkpoint_every: int | None,
) -> dict:
    """Create ``live_rows`` rows, then revise them ``churn_updates``
    times under the automatic checkpoint policy (or none at all)."""
    policy = (
        CheckpointPolicy(every_records=checkpoint_every)
        if checkpoint_every is not None
        else None
    )
    db = Database(path, sync_policy="off", checkpoint_policy=policy)
    db.create_table(sample_schema())
    ids = [
        db.insert("Sample", {"assay": f"assay-{i}", "revision": 0})[
            "sample_id"
        ]
        for i in range(live_rows)
    ]
    for turn in range(churn_updates):
        target = ids[turn % len(ids)]
        db.update("Sample", EQ("sample_id", target), {"revision": turn + 1})
    info = db.wal_info()
    built = {
        "appended_records": info["appended_records"],
        "checkpoints": info["checkpoints"],
        "segments": info["segments"],
        "size_bytes": info["size_bytes"],
    }
    db.close()
    return built


def measure_recovery(path: Path, trials: int) -> dict:
    """Cold-reopen ``trials`` times; keep the best run (noise damping)
    and sanity-check every run recovers the same shape."""
    best: dict | None = None
    for __ in range(trials):
        db = Database(path)
        recovery = dict(db.wal_info()["last_recovery"])
        rows = db.count("Sample")
        db.close()
        recovery["live_rows"] = rows
        if best is None or recovery["elapsed_ms"] < best["elapsed_ms"]:
            best = recovery
    assert best is not None
    best["elapsed_ms"] = round(best["elapsed_ms"], 3)
    return best


def run_flatness(
    live_rows: int,
    base_churn: int,
    multiplier: int,
    checkpoint_every: int,
    trials: int,
) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        results: dict = {"config": {
            "live_rows": live_rows,
            "baseline_churn": base_churn,
            "history_multiplier": multiplier,
            "checkpoint_every": checkpoint_every,
            "reopen_trials": trials,
        }}
        for label, churn, every in (
            ("shallow", base_churn, checkpoint_every),
            ("deep", base_churn * multiplier, checkpoint_every),
            ("control_no_checkpoint", base_churn * multiplier, None),
        ):
            path = root / f"{label}.wal"
            built = build_history(path, live_rows, churn, every)
            recovery = measure_recovery(path, trials)
            results[label] = {"built": built, "recovery": recovery}
        shallow = results["shallow"]["recovery"]["elapsed_ms"]
        deep = results["deep"]["recovery"]["elapsed_ms"]
        control = results["control_no_checkpoint"]["recovery"]["elapsed_ms"]
        results["flatness_ratio"] = round(
            deep / max(shallow, NOISE_FLOOR_MS), 3
        )
        results["control_vs_deep_ratio"] = round(
            control / max(deep, NOISE_FLOOR_MS), 3
        )
    return results


def gate(results: dict) -> list[str]:
    """The invariants the run must satisfy — empty list means pass."""
    problems = []
    ratio = results["flatness_ratio"]
    if ratio > FLATNESS_CEILING:
        problems.append(
            f"recovery not flat: {results['config']['history_multiplier']}x "
            f"history costs {ratio:.2f}x recovery time "
            f"(ceiling {FLATNESS_CEILING}x)"
        )
    # Structural bound — independent of wall-clock noise: a deep-history
    # reopen replays the checkpoint snapshot (live rows + schema) plus a
    # tail that the policy keeps under checkpoint_every, with slack for
    # the records racing the final checkpoint install.
    deep = results["deep"]["recovery"]
    bound = (
        results["config"]["live_rows"]
        + results["config"]["checkpoint_every"]
        + 64
    )
    if deep["records"] > bound:
        problems.append(
            f"deep-history recovery replayed {deep['records']} records "
            f"(bound {bound}): compaction is not keeping the tail short"
        )
    if deep["checkpoint_records"] == 0:
        problems.append(
            "deep-history recovery never loaded a checkpoint snapshot"
        )
    if deep["live_rows"] != results["config"]["live_rows"]:
        problems.append(
            f"deep-history recovery produced {deep['live_rows']} rows, "
            f"expected {results['config']['live_rows']}"
        )
    return problems


def check_baseline(baseline: dict | None, fresh: dict, mode: str) -> list[str]:
    if not baseline or mode not in baseline:
        print(f"[check] no committed baseline for mode {mode!r}; skipping")
        return []
    old = baseline[mode].get("recovery")
    if not old:
        print(f"[check] mode {mode!r} baseline predates bench_recovery; skipping")
        return []
    before = old["deep"]["recovery"]["elapsed_ms"]
    now = fresh["deep"]["recovery"]["elapsed_ms"]
    ceiling = max(before, NOISE_FLOOR_MS) * BASELINE_BLOWUP
    status = "ok" if now <= ceiling else "REGRESSION"
    print(
        f"[check] deep-history recovery: baseline {before:.1f} ms, "
        f"now {now:.1f} ms (ceiling {ceiling:.1f} ms) — {status}"
    )
    if now > ceiling:
        return ["deep-history recovery time"]
    return []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--small", action="store_true", help="CI smoke sizing"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="also fail on a >3x recovery-time blow-up vs the committed "
        "baseline for this mode",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="result file"
    )
    args = parser.parse_args(argv)

    mode = "small" if args.small else "full"
    live_rows, base_churn, multiplier, checkpoint_every, trials = MODES[mode]

    existing: dict = {}
    if args.output.exists():
        try:
            existing = json.loads(args.output.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            existing = {}

    print(
        f"== recovery flatness ({live_rows} live rows, "
        f"{multiplier}x history, {mode} mode) =="
    )
    results = run_flatness(
        live_rows, base_churn, multiplier, checkpoint_every, trials
    )
    for label in ("shallow", "deep", "control_no_checkpoint"):
        row = results[label]
        recovery = row["recovery"]
        print(
            f"  {label:>21}: {recovery['elapsed_ms']:>8.2f} ms recovery "
            f"({recovery['checkpoint_records']} checkpoint + "
            f"{recovery['tail_records']} tail records; "
            f"{row['built']['appended_records']} appended, "
            f"{row['built']['checkpoints']} checkpoints)"
        )
    print(
        f"  deep vs shallow: {results['flatness_ratio']:.2f}x "
        f"(ceiling {FLATNESS_CEILING}x); "
        f"no-checkpoint control: "
        f"{results['control_vs_deep_ratio']:.2f}x the deep recovery"
    )

    problems = gate(results)
    if args.check:
        problems += check_baseline(existing, results, mode)

    section = existing.setdefault(mode, {})
    section["recovery"] = results
    args.output.write_text(
        json.dumps(existing, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.output}")

    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
