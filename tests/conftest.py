"""Shared fixtures for the Exp-WF test suite."""

from __future__ import annotations

import pytest

from repro.minidb import Column, ColumnType, Database, TableSchema
from repro.weblims import build_expdb
from repro.weblims.schema_setup import (
    add_experiment_type,
    add_sample_type,
    declare_experiment_io,
)


@pytest.fixture
def db() -> Database:
    """An empty in-memory database."""
    return Database()


@pytest.fixture
def people_db() -> Database:
    """A database with a simple generic table for CRUD tests."""
    database = Database()
    database.create_table(
        TableSchema(
            name="Person",
            columns=[
                Column("person_id", ColumnType.INTEGER, nullable=False),
                Column("name", ColumnType.TEXT, nullable=False),
                Column("age", ColumnType.INTEGER),
                Column("email", ColumnType.TEXT),
                Column("active", ColumnType.BOOLEAN, default=True),
            ],
            primary_key=("person_id",),
            autoincrement="person_id",
        )
    )
    return database


@pytest.fixture
def expdb():
    """A fresh Exp-DB web application with the core schema."""
    return build_expdb()


@pytest.fixture
def lab_app(expdb):
    """Exp-DB with one experiment type and one sample type registered."""
    add_experiment_type(
        expdb.db,
        "Pcr",
        [
            Column("cycles", ColumnType.INTEGER),
            Column("polymerase", ColumnType.TEXT),
        ],
        description="PCR amplification",
    )
    add_sample_type(
        expdb.db,
        "Primer",
        [Column("sequence", ColumnType.TEXT)],
        description="PCR primer",
    )
    declare_experiment_io(expdb.db, "Pcr", "Primer", "input")
    return expdb
