"""The JSP-analog template engine."""

from __future__ import annotations

import pytest

from repro.errors import TemplateError
from repro.weblims.templates import Template, TemplateRegistry


class TestInterpolation:
    def test_simple_variable(self):
        assert Template("Hi {{ name }}!").render({"name": "ada"}) == "Hi ada!"

    def test_dotted_dict_lookup(self):
        template = Template("{{ row.name }}")
        assert template.render({"row": {"name": "x"}}) == "x"

    def test_attribute_lookup(self):
        class Obj:
            field = "attr-value"

        assert Template("{{ o.field }}").render({"o": Obj()}) == "attr-value"

    def test_html_escaping(self):
        rendered = Template("{{ v }}").render({"v": "<script>&"})
        assert "<script>" not in rendered
        assert "&lt;script&gt;" in rendered

    def test_raw_interpolation_skips_escaping(self):
        rendered = Template("{{! v }}").render({"v": "<b>bold</b>"})
        assert rendered == "<b>bold</b>"

    def test_none_renders_empty(self):
        assert Template("[{{ v }}]").render({"v": None}) == "[]"

    def test_unknown_variable_raises(self):
        with pytest.raises(TemplateError):
            Template("{{ ghost }}").render({})

    def test_missing_key_raises(self):
        with pytest.raises(TemplateError):
            Template("{{ row.ghost }}").render({"row": {}})


class TestForLoops:
    def test_iteration(self):
        template = Template("{% for x in items %}[{{ x }}]{% endfor %}")
        assert template.render({"items": [1, 2, 3]}) == "[1][2][3]"

    def test_loop_index(self):
        template = Template("{% for x in items %}{{ loop.index }}{% endfor %}")
        assert template.render({"items": ["a", "b"]}) == "12"

    def test_nested_loops(self):
        template = Template(
            "{% for row in grid %}{% for cell in row %}{{ cell }}{% endfor %};{% endfor %}"
        )
        assert template.render({"grid": [[1, 2], [3]]}) == "12;3;"

    def test_loop_variable_scoped(self):
        template = Template("{% for x in items %}{{ x }}{% endfor %}{{ y }}")
        assert template.render({"items": [1], "y": "z"}) == "1z"

    def test_none_iterable_renders_nothing(self):
        template = Template("{% for x in items %}x{% endfor %}")
        assert template.render({"items": None}) == ""

    def test_unbalanced_for_raises(self):
        with pytest.raises(TemplateError):
            Template("{% for x in items %}no end")


class TestIf:
    def test_true_branch(self):
        template = Template("{% if ok %}yes{% endif %}")
        assert template.render({"ok": True}) == "yes"
        assert template.render({"ok": False}) == ""

    def test_else_branch(self):
        template = Template("{% if ok %}yes{% else %}no{% endif %}")
        assert template.render({"ok": False}) == "no"

    def test_not_expression(self):
        template = Template("{% if not ok %}inverted{% endif %}")
        assert template.render({"ok": False}) == "inverted"

    def test_truthiness_of_lists(self):
        template = Template("{% if items %}full{% else %}empty{% endif %}")
        assert template.render({"items": []}) == "empty"
        assert template.render({"items": [1]}) == "full"

    def test_unknown_directive_raises(self):
        with pytest.raises(TemplateError):
            Template("{% while x %}{% endwhile %}")

    def test_missing_endif_raises(self):
        with pytest.raises(TemplateError):
            Template("{% if x %}open")


class TestRegistry:
    def test_register_and_render(self):
        registry = TemplateRegistry()
        registry.register("page", "Hello {{ who }}")
        assert registry.render("page", {"who": "world"}) == "Hello world"

    def test_unknown_template_raises(self):
        registry = TemplateRegistry()
        with pytest.raises(TemplateError):
            registry.render("ghost")

    def test_names(self):
        registry = TemplateRegistry()
        registry.register("a", "x")
        registry.register("b", "y")
        assert registry.names() == ["a", "b"]

    def test_template_reusable_across_renders(self):
        template = Template("{{ n }}")
        assert template.render({"n": 1}) == "1"
        assert template.render({"n": 2}) == "2"
