"""The Fig. 2 core data model and its extension mechanism."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.minidb.schema import Column
from repro.minidb.types import ColumnType
from repro.weblims.schema_setup import (
    CORE_TABLES,
    add_experiment_type,
    add_sample_type,
    declare_experiment_io,
)


class TestCoreSchema:
    def test_all_core_tables_exist(self, expdb):
        for table in CORE_TABLES:
            assert expdb.db.has_table(table), table

    def test_experiment_references_project_and_type(self, expdb):
        schema = expdb.db.schema("Experiment")
        targets = {f.ref_table for f in schema.foreign_keys}
        assert targets == {"Project", "ExperimentType"}

    def test_experimentio_links_all_three(self, expdb):
        schema = expdb.db.schema("ExperimentIO")
        targets = {f.ref_table for f in schema.foreign_keys}
        assert targets == {"Experiment", "Sample", "ExperimentTypeIO"}

    def test_experiment_creation_date_defaults(self, lab_app):
        row = lab_app.bean.insert("Pcr", {})
        assert row["created"] is not None


class TestTypeExtension:
    def test_add_experiment_type_registers_metadata(self, expdb):
        add_experiment_type(expdb.db, "Digestion", [], "cuts DNA")
        row = expdb.db.get("ExperimentType", "Digestion")
        assert row["table_name"] == "Digestion"
        assert row["description"] == "cuts DNA"
        assert expdb.db.schema("Digestion").parent == "Experiment"

    def test_add_sample_type_registers_metadata(self, expdb):
        add_sample_type(expdb.db, "Buffer", [])
        assert expdb.db.get("SampleType", "Buffer") is not None
        assert expdb.db.schema("Buffer").parent == "Sample"

    def test_core_table_name_collision_rejected(self, expdb):
        with pytest.raises(SchemaError):
            add_experiment_type(expdb.db, "Experiment", [])

    def test_duplicate_type_table_rejected(self, lab_app):
        with pytest.raises(SchemaError):
            add_experiment_type(lab_app.db, "Pcr", [])

    def test_child_columns_available(self, expdb):
        add_experiment_type(
            expdb.db, "Seq", [Column("read_length", ColumnType.INTEGER)]
        )
        assert expdb.db.schema("Seq").has_column("read_length")


class TestExperimentTypeIO:
    def test_declare_io(self, lab_app):
        row = declare_experiment_io(lab_app.db, "Pcr", "Primer", "output")
        assert row["direction"] == "output"
        assert row["required"] is True

    def test_bad_direction_rejected(self, lab_app):
        with pytest.raises(SchemaError):
            declare_experiment_io(lab_app.db, "Pcr", "Primer", "sideways")

    def test_unknown_types_rejected_by_fk(self, lab_app):
        from repro.errors import ForeignKeyError

        with pytest.raises(ForeignKeyError):
            declare_experiment_io(lab_app.db, "Ghost", "Primer", "input")

    def test_experimentio_enforces_etio_reference(self, lab_app):
        """ExperimentIO rows must reference a declared type-level IO."""
        from repro.errors import ForeignKeyError

        experiment = lab_app.bean.insert("Pcr", {})
        sample = lab_app.bean.insert("Primer", {"sequence": "AT"})
        with pytest.raises(ForeignKeyError):
            lab_app.db.insert(
                "ExperimentIO",
                {
                    "experiment_id": experiment["experiment_id"],
                    "sample_id": sample["sample_id"],
                    "etio_id": 999,
                },
            )
