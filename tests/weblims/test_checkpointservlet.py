"""The ``/workflow/checkpoint`` servlet (operational checkpointing)."""

from __future__ import annotations

import json

import pytest

from repro.obs import install_observability
from repro.weblims import build_expdb


@pytest.fixture
def app_and_hub(tmp_path):
    app = build_expdb(wal_path=tmp_path / "lims.wal")
    hub = install_observability(expdb=app)
    return app, hub


class TestCheckpointServlet:
    def test_get_reports_the_wal_layout(self, app_and_hub):
        app, __ = app_and_hub
        response = app.get("/workflow/checkpoint")
        assert response.ok
        info = json.loads(response.body)
        assert info["enabled"] is True
        assert info["segments"] >= 1
        assert "records_since_checkpoint" in info

    def test_post_takes_an_online_checkpoint(self, app_and_hub):
        app, __ = app_and_hub
        assert app.db.wal_info()["checkpoint"] is None
        response = app.post("/workflow/checkpoint", by="ops")
        assert response.ok
        body = json.loads(response.body)
        assert body["checkpointed"] is True
        assert body["records"] > 0
        assert body["checkpoints_total"] == 1
        info = app.db.wal_info()
        assert info["checkpoint"] is not None
        # Recovery is now checkpoint + (empty) tail, not full history.
        assert info["records_since_checkpoint"] == 0

    def test_post_is_recorded_in_the_audit_trail(self, app_and_hub):
        from repro.obs.audit import AuditStore, install_audit_schema

        app, hub = app_and_hub
        install_audit_schema(app.db)
        hub.audit = AuditStore(app.db, tracer=hub.tracer, clock=hub.clock)
        app.post("/workflow/checkpoint", by="ops")
        kinds = [
            record["kind"]
            for record in hub.audit.query()[1]
            if record["kind"].startswith("db.checkpoint")
        ]
        # The request row (with the operator) and the checkpoint row
        # from the database hook.
        assert "db.checkpoint.request" in kinds
        assert "db.checkpoint" in kinds

    def test_checkpoint_total_metric_scraped(self, app_and_hub):
        app, __ = app_and_hub
        app.post("/workflow/checkpoint")
        app.post("/workflow/checkpoint")
        metrics = app.get("/workflow/metrics")
        assert "db_checkpoint_total 2" in metrics.body
        assert "db_wal_segments" in metrics.body

    def test_post_without_wal_is_rejected(self):
        app = build_expdb()  # no WAL
        install_observability(expdb=app)
        response = app.post("/workflow/checkpoint")
        assert response.status == 409

    def test_post_inside_transaction_is_rejected(self, app_and_hub):
        app, __ = app_and_hub
        app.db.begin()
        response = app.post("/workflow/checkpoint")
        assert response.status == 409
        app.db.rollback()
        assert app.post("/workflow/checkpoint").ok
