"""Property tests for the template engine (escaping, totality)."""

from __future__ import annotations

import html
import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.weblims.templates import Template

values = st.text(
    alphabet=string.printable,
    max_size=30,
)


@given(value=values)
@settings(max_examples=150, deadline=None)
def test_interpolation_always_escapes_markup(value):
    """No interpolated value can inject raw markup into the page."""
    rendered = Template("<p>{{ v }}</p>").render({"v": value})
    inner = rendered[len("<p>"):-len("</p>")]
    assert "<" not in inner
    assert ">" not in inner
    # The original value is recoverable by unescaping.
    assert html.unescape(inner) == value


@given(value=values)
@settings(max_examples=100, deadline=None)
def test_raw_interpolation_is_verbatim(value):
    assert Template("{{! v }}").render({"v": value}) == value


@given(items=st.lists(st.integers(min_value=0, max_value=999), max_size=10))
@settings(max_examples=100, deadline=None)
def test_for_loop_renders_every_item_in_order(items):
    rendered = Template(
        "{% for x in items %}[{{ x }}]{% endfor %}"
    ).render({"items": items})
    assert rendered == "".join(f"[{item}]" for item in items)


@given(
    flag=st.booleans(),
    then_text=st.text(alphabet="abc", max_size=5),
    else_text=st.text(alphabet="xyz", max_size=5),
)
@settings(max_examples=60, deadline=None)
def test_if_selects_exactly_one_branch(flag, then_text, else_text):
    rendered = Template(
        "{% if flag %}" + then_text + "{% else %}" + else_text + "{% endif %}"
    ).render({"flag": flag})
    assert rendered == (then_text if flag else else_text)


@given(text=st.text(alphabet="abc {}%", max_size=25))
@settings(max_examples=200, deadline=None)
def test_compilation_is_total(text):
    """Arbitrary text either compiles or raises TemplateError — never
    any other exception."""
    from repro.errors import TemplateError

    try:
        template = Template(text)
    except TemplateError:
        return
    # If it compiled without directives/variables, it renders verbatim.
    if "{{" not in text and "{%" not in text:
        assert template.render({}) == text
