"""TableBean: the generic metadata-driven model interface (§3.2)."""

from __future__ import annotations

import pytest

from repro.errors import BadRequestError, UnknownTableError
from repro.minidb.schema import Column
from repro.minidb.types import ColumnType
from repro.weblims.schema_setup import add_experiment_type, add_sample_type


class TestMetadataDiscovery:
    def test_experiment_type_detection(self, lab_app):
        assert lab_app.bean.experiment_type_of("Pcr") == "Pcr"
        assert lab_app.bean.experiment_type_of("Project") is None

    def test_sample_type_detection(self, lab_app):
        assert lab_app.bean.sample_type_of("Primer") == "Primer"
        assert lab_app.bean.sample_type_of("Pcr") is None

    def test_combined_schema_merges_parent_columns(self, lab_app):
        names = [c.name for c in lab_app.bean.combined_schema("Pcr")]
        assert "cycles" in names  # child
        assert "created" in names  # inherited from Experiment
        assert names.index("cycles") < names.index("created")


class TestTypeTableInsert:
    def test_insert_splits_parent_and_child(self, lab_app):
        row = lab_app.bean.insert("Pcr", {"cycles": 30, "status": "running"})
        assert row["type_name"] == "Pcr"
        assert row["cycles"] == 30
        assert row["status"] == "running"
        assert lab_app.db.count("Experiment") == 1
        assert lab_app.db.count("Pcr") == 1

    def test_insert_assigns_shared_key(self, lab_app):
        row = lab_app.bean.insert("Pcr", {"cycles": 10})
        child = lab_app.db.get("Pcr", row["experiment_id"])
        assert child is not None

    def test_insert_unknown_column_rejected_atomically(self, lab_app):
        with pytest.raises(BadRequestError):
            lab_app.bean.insert("Pcr", {"cycles": 1, "ghost": 2})
        assert lab_app.db.count("Experiment") == 0

    def test_plain_table_insert_passthrough(self, lab_app):
        row = lab_app.bean.insert("Project", {"name": "crystallography"})
        assert row["project_id"] == 1


class TestTypeTableRead:
    def test_read_merges_parent(self, lab_app):
        lab_app.bean.insert("Pcr", {"cycles": 30})
        rows = lab_app.bean.read("Pcr")
        assert rows[0]["cycles"] == 30
        assert rows[0]["type_name"] == "Pcr"

    def test_read_criteria_on_child_column(self, lab_app):
        lab_app.bean.insert("Pcr", {"cycles": 30})
        lab_app.bean.insert("Pcr", {"cycles": 35})
        assert len(lab_app.bean.read("Pcr", {"cycles": 35})) == 1

    def test_read_criteria_on_parent_column(self, lab_app):
        lab_app.bean.insert("Pcr", {"cycles": 30, "status": "done"})
        lab_app.bean.insert("Pcr", {"cycles": 31})
        rows = lab_app.bean.read("Pcr", {"status": "done"})
        assert [row["cycles"] for row in rows] == [30]

    def test_read_unknown_criteria_rejected(self, lab_app):
        with pytest.raises(BadRequestError):
            lab_app.bean.read("Pcr", {"ghost": 1})

    def test_read_plain_table(self, lab_app):
        lab_app.bean.insert("Project", {"name": "p"})
        assert len(lab_app.bean.read("Project", {"name": "p"})) == 1

    def test_read_unknown_table_rejected(self, lab_app):
        with pytest.raises(UnknownTableError):
            lab_app.bean.read("Ghost")


class TestTypeTableUpdate:
    def test_update_routes_columns_to_owners(self, lab_app):
        lab_app.bean.insert("Pcr", {"cycles": 30})
        affected = lab_app.bean.update(
            "Pcr", {"cycles": 30}, {"cycles": 35, "status": "done"}
        )
        assert affected == 1
        merged = lab_app.bean.read("Pcr")[0]
        assert merged["cycles"] == 35
        assert merged["status"] == "done"

    def test_update_without_criteria_rejected(self, lab_app):
        with pytest.raises(BadRequestError):
            lab_app.bean.update("Pcr", {}, {"cycles": 1})

    def test_update_nonmatching_returns_zero(self, lab_app):
        assert lab_app.bean.update("Pcr", {"cycles": 99}, {"cycles": 1}) == 0

    def test_update_unknown_change_column_rejected(self, lab_app):
        lab_app.bean.insert("Pcr", {"cycles": 30})
        with pytest.raises(BadRequestError):
            lab_app.bean.update("Pcr", {"cycles": 30}, {"ghost": 1})


class TestTypeTableDelete:
    def test_delete_removes_both_levels(self, lab_app):
        lab_app.bean.insert("Pcr", {"cycles": 30})
        assert lab_app.bean.delete("Pcr", {"cycles": 30}) == 1
        assert lab_app.db.count("Experiment") == 0
        assert lab_app.db.count("Pcr") == 0

    def test_delete_without_criteria_rejected(self, lab_app):
        with pytest.raises(BadRequestError):
            lab_app.bean.delete("Pcr", {})

    def test_delete_by_parent_criteria(self, lab_app):
        lab_app.bean.insert("Pcr", {"cycles": 1, "notes": "kill"})
        lab_app.bean.insert("Pcr", {"cycles": 2})
        assert lab_app.bean.delete("Pcr", {"notes": "kill"}) == 1
        assert lab_app.db.count("Pcr") == 1


class TestSampleTypes:
    def test_sample_type_insert_and_read(self, lab_app):
        row = lab_app.bean.insert(
            "Primer", {"sequence": "ATCG", "quality": 0.9}
        )
        assert row["type_name"] == "Primer"
        merged = lab_app.bean.read("Primer")[0]
        assert merged["sequence"] == "ATCG"
        assert merged["quality"] == 0.9


class TestGenericityAcrossNewTypes:
    def test_tablebean_needs_no_change_for_new_types(self, lab_app):
        """Adding a type at runtime works through the same generic code."""
        add_experiment_type(
            lab_app.db,
            "Digestion",
            [Column("enzyme", ColumnType.TEXT)],
        )
        add_sample_type(lab_app.db, "Enzyme", [])
        row = lab_app.bean.insert("Digestion", {"enzyme": "EcoRI"})
        assert row["type_name"] == "Digestion"
        assert lab_app.bean.read("Digestion", {"enzyme": "EcoRI"})
