"""The JSON web-service interface and its workflow interception."""

from __future__ import annotations

import json

import pytest

from repro.weblims.api import install_api


@pytest.fixture
def api_app(lab_app):
    install_api(lab_app)
    return lab_app


def call(app, **params):
    response = app.post("/api", **params)
    return response, json.loads(response.body)


class TestCrudOverJson:
    def test_insert_and_read(self, api_app):
        response, payload = call(
            api_app,
            action="insert",
            table="Pcr",
            values=json.dumps({"cycles": 30, "polymerase": "Taq"}),
        )
        assert response.status == 200
        assert payload["ok"] is True
        assert payload["row"]["cycles"] == 30
        assert payload["row"]["type_name"] == "Pcr"

        __, read_payload = call(
            api_app,
            action="read",
            table="Pcr",
            criteria=json.dumps({"polymerase": "Taq"}),
        )
        assert read_payload["count"] == 1
        assert read_payload["rows"][0]["cycles"] == 30

    def test_timestamps_serialised_as_iso(self, api_app):
        call(api_app, action="insert", table="Pcr", values=json.dumps({}))
        __, payload = call(api_app, action="read", table="Pcr")
        created = payload["rows"][0]["created"]
        assert isinstance(created, str) and "T" in created

    def test_update_and_delete(self, api_app):
        call(
            api_app,
            action="insert",
            table="Pcr",
            values=json.dumps({"cycles": 30}),
        )
        __, update_payload = call(
            api_app,
            action="update",
            table="Pcr",
            criteria=json.dumps({"cycles": 30}),
            values=json.dumps({"cycles": 35}),
        )
        assert update_payload["affected"] == 1
        __, delete_payload = call(
            api_app,
            action="delete",
            table="Pcr",
            criteria=json.dumps({"cycles": 35}),
        )
        assert delete_payload["affected"] == 1
        assert api_app.db.count("Experiment") == 0

    def test_get_read_convenience(self, api_app):
        response = api_app.get("/api", action="read", table="Project")
        assert response.status == 200
        assert json.loads(response.body)["ok"] is True


class TestErrorsAsJson:
    def test_unknown_table_is_400_json(self, api_app):
        response, payload = call(api_app, action="read", table="Ghost")
        assert response.status == 400
        assert payload["ok"] is False
        assert "Ghost" in payload["error"]

    def test_malformed_json_is_400(self, api_app):
        response, payload = call(
            api_app, action="insert", table="Pcr", values="{not json"
        )
        assert response.status == 400

    def test_non_object_json_is_400(self, api_app):
        response, __ = call(
            api_app, action="insert", table="Pcr", values="[1,2]"
        )
        assert response.status == 400

    def test_constraint_violation_is_409(self, api_app):
        call(
            api_app,
            action="insert",
            table="Project",
            values=json.dumps({"name": "p"}),
        )
        response, payload = call(
            api_app,
            action="insert",
            table="Project",
            values=json.dumps({"project_id": 1, "name": "dup"}),
        )
        assert response.status == 409
        assert payload["ok"] is False

    def test_update_without_values_is_400(self, api_app):
        response, __ = call(
            api_app,
            action="update",
            table="Pcr",
            criteria=json.dumps({"cycles": 1}),
        )
        assert response.status == 400


class TestWorkflowInterceptionOverApi:
    """The one-line descriptor change covers programmatic clients too."""

    @pytest.fixture
    def wired_api(self):
        from repro.core import PatternBuilder, install_workflow_support
        from repro.core.persistence import save_pattern
        from repro.minidb.schema import Column
        from repro.minidb.types import ColumnType
        from repro.weblims import build_expdb
        from repro.weblims.schema_setup import add_experiment_type

        app = build_expdb()
        engine = install_workflow_support(app)
        install_api(app)  # filter mapped onto /api/* as well
        add_experiment_type(
            app.db, "A", [Column("reading", ColumnType.REAL)]
        )
        pattern = (
            PatternBuilder("flow").task("a", experiment_type="A").build(db=app.db)
        )
        save_pattern(app.db, pattern)
        return app, engine

    def test_engine_column_write_denied_over_api(self, wired_api):
        app, engine = wired_api
        engine.start_workflow("flow")
        response = app.post(
            "/api",
            action="update",
            table="Experiment",
            criteria=json.dumps({"type_name": "A"}),
            values=json.dumps({"wf_state": "completed"}),
        )
        assert response.status == 403

    def test_delete_of_workflow_experiment_denied_over_api(self, wired_api):
        app, engine = wired_api
        workflow = engine.start_workflow("flow")
        for request in engine.pending_authorizations():
            engine.respond_authorization(request["auth_id"], True)
        experiment_id = engine.workflow_view(workflow["workflow_id"]).tasks[
            "a"
        ].instances[0].experiment_id
        response = app.post(
            "/api",
            action="delete",
            table="Experiment",
            criteria=json.dumps({"experiment_id": experiment_id}),
        )
        assert response.status == 403
        assert app.db.get("Experiment", experiment_id) is not None

    def test_harmless_api_write_passes_and_postprocesses(self, wired_api):
        app, engine = wired_api
        engine.start_workflow("flow")
        checks_before = engine.check_count
        response = app.post(
            "/api",
            action="insert",
            table="A",
            values=json.dumps({"reading": 0.4}),
        )
        assert response.status == 200
        assert engine.check_count > checks_before

    def test_api_reads_pass_through(self, wired_api):
        app, __ = wired_api
        filter_ = app.container.context["workflow_filter"]
        before = filter_.stats.passed_through
        app.get("/api", action="read", table="A")
        assert filter_.stats.passed_through == before + 1
