"""Role-based access control and filter-chain composition."""

from __future__ import annotations

import pytest

from repro.weblims.access import (
    AccessControlFilter,
    AccessPolicy,
    install_access_control,
)
from repro.weblims.http import HttpRequest


@pytest.fixture
def policy():
    p = AccessPolicy()
    p.assign("ada", "scientist")
    p.assign("bob", "technician")
    p.assign("pi", "scientist", "admin")
    p.grant("scientist", "Pcr", "insert", "update")
    p.grant("scientist", "Sample", "insert")
    p.grant("admin", "*", "*")
    p.grant("technician", "*", "workflow")
    return p


class TestPolicy:
    def test_reads_allowed_anonymously_by_default(self, policy):
        assert policy.permits(None, "Pcr", "read")
        assert policy.permits(None, None, "list")

    def test_anonymous_writes_denied(self, policy):
        assert not policy.permits(None, "Pcr", "insert")

    def test_role_grant_scoped_to_table(self, policy):
        assert policy.permits("ada", "Pcr", "insert")
        assert not policy.permits("ada", "Project", "insert")

    def test_action_scoping(self, policy):
        assert policy.permits("ada", "Pcr", "update")
        assert not policy.permits("ada", "Pcr", "delete")

    def test_wildcard_role(self, policy):
        assert policy.permits("pi", "Anything", "delete")
        assert policy.permits("pi", None, "workflow")

    def test_unknown_user_has_no_roles(self, policy):
        assert not policy.permits("mallory", "Pcr", "insert")

    def test_reads_can_be_locked_down(self):
        strict = AccessPolicy(allow_anonymous_reads=False)
        strict.assign("ada", "scientist")
        strict.grant("scientist", "*", "read")
        assert not strict.permits(None, "Pcr", "read")
        assert strict.permits("ada", "Pcr", "read")


class TestFilterBehaviour:
    @pytest.fixture
    def guarded(self, lab_app, policy):
        install_access_control(lab_app, policy)
        return lab_app

    def request(self, app, user=None, **params):
        request = HttpRequest("POST", "/user", params=params)
        if user is not None:
            request.headers["x-user"] = user
        return app.handle(request)

    def test_anonymous_read_passes(self, guarded):
        response = guarded.get("/user", action="read", table="Pcr")
        assert response.status == 200

    def test_anonymous_write_gets_401(self, guarded):
        response = self.request(
            guarded, action="insert", table="Pcr", v_cycles="1"
        )
        assert response.status == 401

    def test_unauthorized_user_gets_403(self, guarded):
        response = self.request(
            guarded, user="bob", action="insert", table="Pcr", v_cycles="1"
        )
        assert response.status == 403

    def test_authorized_user_passes(self, guarded):
        response = self.request(
            guarded, user="ada", action="insert", table="Pcr", v_cycles="1"
        )
        assert response.status == 200
        assert guarded.db.count("Pcr") == 1

    def test_denied_count(self, guarded, policy):
        self.request(guarded, action="insert", table="Pcr")
        self.request(guarded, user="bob", action="insert", table="Pcr")
        filter_ = next(
            f
            for f in (
                guarded.container.descriptor.filters_for("/user")
            )
            if isinstance(f, AccessControlFilter)
        )
        assert filter_.denied_count == 2


class TestComposedWithWorkflowFilter:
    @pytest.fixture
    def full_stack(self, policy):
        from repro.core import PatternBuilder, install_workflow_support
        from repro.core.persistence import save_pattern
        from repro.minidb.schema import Column
        from repro.minidb.types import ColumnType
        from repro.weblims import build_expdb
        from repro.weblims.schema_setup import add_experiment_type

        app = build_expdb()
        access = install_access_control(app, policy)  # declared FIRST
        engine = install_workflow_support(app)
        add_experiment_type(app.db, "Pcr", [Column("cycles", ColumnType.INTEGER)])
        pattern = (
            PatternBuilder("flow").task("a", experiment_type="Pcr").build(db=app.db)
        )
        save_pattern(app.db, pattern)
        return app, engine, access

    def request(self, app, user=None, **params):
        request = HttpRequest("POST", "/user", params=params)
        if user is not None:
            request.headers["x-user"] = user
        return app.handle(request)

    def test_access_runs_before_workflow_filter(self, full_stack):
        """An anonymous workflow action dies at access control — the
        WorkflowFilter never sees it."""
        app, __, access = full_stack
        workflow_filter = app.container.context["workflow_filter"]
        before = workflow_filter.stats.processed
        response = self.request(app, workflow_action="start", pattern="flow")
        assert response.status == 401
        assert workflow_filter.stats.processed == before
        assert access.denied_count == 1

    def test_technician_may_run_workflow_actions(self, full_stack):
        app, engine, __ = full_stack
        response = self.request(
            app, user="bob", workflow_action="start", pattern="flow"
        )
        assert response.status == 200
        assert engine.list_workflows()

    def test_both_filters_can_deny_in_sequence(self, full_stack):
        """pi passes access control, then the WorkflowFilter denies the
        engine-owned column write — two independent gates."""
        app, engine, __ = full_stack
        self.request(app, user="bob", workflow_action="start", pattern="flow")
        response = self.request(
            app,
            user="pi",
            action="update",
            table="Experiment",
            c_type_name="Pcr",
            v_wf_state="completed",
        )
        assert response.status == 403
        assert "workflow" in response.body
