"""HTTP views of the watch layer: ``/workflow/instances``,
``/workflow/alerts`` and the audit servlet's structured 404 contract.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.watch import AlertRule, StuckPolicy
from repro.resilience import FaultPlan, ManualClock
from repro.weblims.http import HttpRequest
from repro.workloads.protein import build_protein_lab


@pytest.fixture
def watch_lab():
    clock = ManualClock()
    lab = build_protein_lab(
        clock=clock,
        watch=True,
        stuck_policy=StuckPolicy(
            multiple=3.0, min_samples=3, floor_s=1.0, fallback_s=60.0
        ),
    )
    return lab, clock


def get_json(app, path, **params):
    response = app.get(path, **params)
    return response, json.loads(response.body)


class TestInstancesServlet:
    def test_listing_pages_and_counts_stuck(self, watch_lab):
        lab, clock = watch_lab
        first = lab.engine.start_workflow("protein_creation")
        second = lab.engine.start_workflow("protein_creation")
        response, payload = get_json(lab.app, "/workflow/instances")
        assert response.status == 200
        assert payload["total"] == 2
        listed = {row["workflow_id"] for row in payload["instances"]}
        assert listed == {first["workflow_id"], second["workflow_id"]}
        assert all(
            row["pattern"] == "protein_creation"
            for row in payload["instances"]
        )
        __, page = get_json(lab.app, "/workflow/instances", limit="1")
        assert page["total"] == 2
        assert len(page["instances"]) == 1

    def test_status_filter(self, watch_lab):
        lab, __ = watch_lab
        workflow = lab.engine.start_workflow("protein_creation")
        lab.run_to_completion(workflow["workflow_id"])
        __, running = get_json(
            lab.app, "/workflow/instances", status="running"
        )
        assert running["total"] == 0
        # The run may spawn a child workflow; all of them completed.
        __, completed = get_json(
            lab.app, "/workflow/instances", status="completed"
        )
        assert completed["total"] >= 1
        assert {r["status"] for r in completed["instances"]} == {"completed"}

    def test_stuck_entities_surface_in_the_listing(self, watch_lab):
        lab, clock = watch_lab
        plan = FaultPlan(seed=3).rule(
            "broker.publish", "drop", times=1,
            where={"queue": "agent.digest-bot"},
        )
        lab.attach_faults(plan)
        workflow = lab.engine.start_workflow("protein_creation")
        lab.run_messages()
        clock.advance(90.0)
        __, payload = get_json(lab.app, "/workflow/instances")
        assert payload["stuck_total"] >= 1
        row = next(
            r
            for r in payload["instances"]
            if r["workflow_id"] == workflow["workflow_id"]
        )
        assert row["stuck_entities"] >= 1

    def test_summary_and_timeline_views(self, watch_lab):
        lab, __ = watch_lab
        workflow = lab.engine.start_workflow("protein_creation")
        workflow_id = workflow["workflow_id"]
        lab.run_to_completion(workflow_id)
        __, summary = get_json(lab.app, f"/workflow/instances/{workflow_id}")
        assert summary["found"] is True
        assert summary["status"] == "completed"
        assert summary["audit_records"] > 0
        __, timeline = get_json(
            lab.app, f"/workflow/instances/{workflow_id}/timeline"
        )
        assert timeline["found"] is True
        assert timeline["events"]
        text = lab.app.get(
            f"/workflow/instances/{workflow_id}/timeline", format="text"
        )
        assert text.content_type == "text/plain"
        assert f"workflow {workflow_id}" in text.body

    def test_unknown_workflow_is_a_structured_404(self, watch_lab):
        lab, __ = watch_lab
        response, payload = get_json(lab.app, "/workflow/instances/424242")
        assert response.status == 404
        assert payload["error"] == "workflow_not_found"
        assert payload["workflow_id"] == 424242
        response, payload = get_json(
            lab.app, "/workflow/instances/424242/timeline"
        )
        assert response.status == 404
        assert payload["error"] == "workflow_not_found"

    def test_malformed_id_is_a_400(self, watch_lab):
        lab, __ = watch_lab
        response = lab.app.get("/workflow/instances/not-a-number")
        assert response.status == 400

    def test_disabled_without_watcher(self):
        from repro.obs import ObservabilityHub
        from repro.weblims.instancesservlet import InstancesServlet

        servlet = InstancesServlet(ObservabilityHub())
        response = servlet.do_get(
            HttpRequest(method="GET", path="/workflow/instances"), None
        )
        assert json.loads(response.body)["enabled"] is False


class TestAlertServlet:
    def test_report_lists_rules_and_evaluates_on_demand(self, watch_lab):
        lab, __ = watch_lab
        lab.obs.watcher.alerts.add_source("always", lambda: 10.0)
        lab.obs.watcher.alerts.add_rule(
            AlertRule(name="always-on", source="always", threshold=5)
        )
        __, payload = get_json(lab.app, "/workflow/alerts")
        names = {rule["name"] for rule in payload["rules"]}
        assert {"always-on", "stuck-instances", "dlq-depth"} <= names
        assert payload["firing"] == []  # not evaluated yet
        __, payload = get_json(lab.app, "/workflow/alerts", evaluate="1")
        assert payload["firing"] == ["always-on"]
        assert payload["history"][-1]["to"] == "firing"
        assert payload["exporter"]["capacity"] > 0

    def test_text_rendering(self, watch_lab):
        lab, __ = watch_lab
        response = lab.app.get("/workflow/alerts", format="text")
        assert response.content_type == "text/plain"
        assert "alert rules" in response.body
        assert "stuck-instances" in response.body

    def test_disabled_without_watcher(self):
        from repro.obs import ObservabilityHub
        from repro.weblims.alertservlet import AlertServlet

        servlet = AlertServlet(ObservabilityHub())
        response = servlet.do_get(
            HttpRequest(method="GET", path="/workflow/alerts"), None
        )
        assert json.loads(response.body)["enabled"] is False


class TestAuditTimelineNotFound:
    """Satellite: unknown-workflow audit queries answer 404, not an
    empty 200."""

    def test_unknown_workflow_id_is_404(self, watch_lab):
        lab, __ = watch_lab
        response = lab.app.get("/workflow/audit", workflow_id="424242")
        assert response.status == 404
        payload = json.loads(response.body)
        assert payload["error"] == "workflow_not_found"
        assert payload["records"] == []

    def test_known_workflow_id_still_pages_records(self, watch_lab):
        lab, __ = watch_lab
        workflow = lab.engine.start_workflow("protein_creation")
        response = lab.app.get(
            "/workflow/audit", workflow_id=str(workflow["workflow_id"])
        )
        assert response.status == 200
        payload = json.loads(response.body)
        assert payload["total"] > 0

    def test_unfiltered_queries_are_unaffected(self, watch_lab):
        lab, __ = watch_lab
        response = lab.app.get("/workflow/audit")
        assert response.status == 200
