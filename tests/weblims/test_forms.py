"""Schema-driven form generation and parsing."""

from __future__ import annotations

import pytest

from repro.errors import BadRequestError
from repro.minidb import Column, ColumnType, TableSchema
from repro.weblims.forms import (
    parse_criteria,
    parse_typed_values,
    render_insert_form,
)


@pytest.fixture
def schema():
    return TableSchema(
        name="Widget",
        columns=[
            Column("widget_id", ColumnType.INTEGER, nullable=False),
            Column("label", ColumnType.TEXT, nullable=False),
            Column("weight", ColumnType.REAL),
            Column("active", ColumnType.BOOLEAN),
        ],
        primary_key=("widget_id",),
        autoincrement="widget_id",
    )


class TestRendering:
    def test_form_has_field_per_column(self, schema):
        html = render_insert_form(schema, action="/user")
        assert 'name="v_label"' in html
        assert 'name="v_weight"' in html
        assert 'name="v_active"' in html

    def test_autoincrement_key_omitted(self, schema):
        html = render_insert_form(schema, action="/user")
        assert "widget_id" not in html

    def test_required_marker_on_not_null(self, schema):
        html = render_insert_form(schema, action="/user")
        label_field = next(
            line for line in html.splitlines() if "v_label" in line
        )
        assert "required" in label_field
        weight_field = next(
            line for line in html.splitlines() if "v_weight" in line
        )
        assert "required" not in weight_field

    def test_input_types_match_column_types(self, schema):
        html = render_insert_form(schema, action="/user")
        assert 'type="checkbox" name="v_active"' in html
        assert 'type="number" name="v_weight"' in html

    def test_hidden_fields_rendered(self, schema):
        html = render_insert_form(
            schema, action="/user", hidden={"action": "insert"}
        )
        assert 'type="hidden" name="action" value="insert"' in html

    def test_values_escaped(self, schema):
        html = render_insert_form(
            schema, action='/user"><script>', hidden={"x": "<&>"}
        )
        assert "<script>" not in html


class TestParsing:
    def test_typed_parse(self, schema):
        values = parse_typed_values(
            schema, {"label": "x", "weight": "1.5", "active": "true"}
        )
        assert values == {"label": "x", "weight": 1.5, "active": True}

    def test_empty_string_is_null(self, schema):
        assert parse_typed_values(schema, {"weight": ""}) == {"weight": None}

    def test_unknown_field_rejected(self, schema):
        with pytest.raises(BadRequestError):
            parse_typed_values(schema, {"ghost": "1"})

    def test_bad_value_is_bad_request(self, schema):
        with pytest.raises(BadRequestError):
            parse_typed_values(schema, {"weight": "heavy"})

    def test_parse_criteria_same_rules(self, schema):
        assert parse_criteria(schema, {"label": "a"}) == {"label": "a"}
