"""The UserRequestServlet: the four generic operations over HTTP."""

from __future__ import annotations


class TestListAndForms:
    def test_list_tables(self, lab_app):
        response = lab_app.get("/user", action="list")
        assert response.status == 200
        assert "Experiment" in response.attributes["tables"]
        assert "Pcr" in response.body

    def test_default_action_is_list(self, lab_app):
        response = lab_app.get("/user")
        assert response.attributes["action"] == "list"

    def test_generated_form_contains_fields(self, lab_app):
        response = lab_app.get("/user", action="form", table="Pcr")
        assert response.status == 200
        assert 'name="v_cycles"' in response.body
        # Autoincrement key is system-assigned, not user-entered.
        assert 'name="v_experiment_id"' not in response.body

    def test_form_for_unknown_table_is_400(self, lab_app):
        response = lab_app.get("/user", action="form", table="Ghost")
        assert response.status == 400


class TestInsertReadUpdateDelete:
    def test_full_crud_cycle(self, lab_app):
        insert = lab_app.post(
            "/user",
            action="insert",
            table="Pcr",
            v_cycles="30",
            v_polymerase="Taq",
        )
        assert insert.status == 200
        assert insert.attributes["row"]["cycles"] == 30

        read = lab_app.get(
            "/user", action="read", table="Pcr", c_polymerase="Taq"
        )
        assert read.status == 200
        assert len(read.attributes["rows"]) == 1

        update = lab_app.post(
            "/user",
            action="update",
            table="Pcr",
            c_cycles="30",
            v_status="done",
        )
        assert update.attributes["affected"] == 1

        delete = lab_app.post(
            "/user", action="delete", table="Pcr", c_polymerase="Taq"
        )
        assert delete.attributes["affected"] == 1
        assert lab_app.db.count("Experiment") == 0

    def test_empty_field_becomes_null(self, lab_app):
        response = lab_app.post(
            "/user", action="insert", table="Pcr", v_cycles="", v_polymerase="T"
        )
        assert response.attributes["row"]["cycles"] is None

    def test_results_page_renders_cells(self, lab_app):
        lab_app.post(
            "/user", action="insert", table="Pcr", v_cycles="42"
        )
        response = lab_app.get("/user", action="read", table="Pcr")
        assert "<td>42</td>" in response.body

    def test_read_criteria_typed_against_schema(self, lab_app):
        lab_app.post("/user", action="insert", table="Pcr", v_cycles="30")
        response = lab_app.get(
            "/user", action="read", table="Pcr", c_cycles="30"
        )
        assert len(response.attributes["rows"]) == 1


class TestErrorHandling:
    def test_unknown_action_is_400(self, lab_app):
        response = lab_app.post("/user", action="explode")
        assert response.status == 400

    def test_missing_table_is_400(self, lab_app):
        response = lab_app.get("/user", action="read")
        assert response.status == 400

    def test_unknown_table_is_400(self, lab_app):
        response = lab_app.get("/user", action="read", table="Ghost")
        assert response.status == 400
        assert "Ghost" in response.body

    def test_bad_typed_value_is_400(self, lab_app):
        response = lab_app.post(
            "/user", action="insert", table="Pcr", v_cycles="many"
        )
        assert response.status == 400

    def test_unknown_column_is_400(self, lab_app):
        response = lab_app.post(
            "/user", action="insert", table="Pcr", v_ghost="1"
        )
        assert response.status == 400

    def test_update_without_values_is_400(self, lab_app):
        response = lab_app.post(
            "/user", action="update", table="Pcr", c_cycles="1"
        )
        assert response.status == 400

    def test_constraint_violation_is_409(self, lab_app):
        lab_app.post(
            "/user", action="insert", table="Project", v_name="p"
        )
        response = lab_app.post(
            "/user",
            action="insert",
            table="Project",
            v_project_id="1",
            v_name="dup",
        )
        assert response.status == 409

    def test_error_pages_render_html(self, lab_app):
        response = lab_app.get("/user", action="read", table="Ghost")
        assert response.body.startswith("<html>")
        assert response.attributes["error"]

    def test_unsupported_method(self, lab_app):
        from repro.weblims.http import HttpRequest

        response = lab_app.handle(HttpRequest("PUT", "/user"))
        assert response.status == 405
