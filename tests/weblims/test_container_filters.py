"""The web container: routing, filter chains, the Fig. 7 mechanism."""

from __future__ import annotations

import pytest

from repro.errors import WebError
from repro.weblims.container import (
    DeploymentDescriptor,
    WebContainer,
    pattern_matches,
)
from repro.weblims.http import HttpRequest, HttpResponse
from repro.weblims.servlet import Filter, FilterChain, Servlet


class EchoServlet(Servlet):
    name = "echo"

    def service(self, request, container):
        response = HttpResponse.html(f"echo:{request.path}")
        response.attributes["seen_by_servlet"] = dict(request.attributes)
        return response


class TraceFilter(Filter):
    """Records request order on the way in, response order on the way out."""

    def __init__(self, label: str, trace: list):
        self.name = f"trace-{label}"
        self.label = label
        self.trace = trace

    def do_filter(self, request, chain):
        self.trace.append(f"{self.label}:request")
        response = chain.proceed(request)
        self.trace.append(f"{self.label}:response")
        return response


class TestPatternMatching:
    def test_exact(self):
        assert pattern_matches("/user", "/user")
        assert not pattern_matches("/user", "/user/extra")

    def test_prefix(self):
        assert pattern_matches("/user/*", "/user")
        assert pattern_matches("/user/*", "/user/sub")
        assert not pattern_matches("/user/*", "/userx")

    def test_match_all(self):
        assert pattern_matches("/*", "/anything/at/all")


class TestRouting:
    def test_dispatch_to_mapped_servlet(self):
        descriptor = DeploymentDescriptor()
        descriptor.add_servlet(EchoServlet(), "/echo")
        container = WebContainer(descriptor)
        response = container.handle(HttpRequest("GET", "/echo"))
        assert response.status == 200
        assert response.body == "echo:/echo"

    def test_unmapped_path_is_404(self):
        container = WebContainer(DeploymentDescriptor())
        response = container.handle(HttpRequest("GET", "/nowhere"))
        assert response.status == 404

    def test_first_matching_pattern_wins(self):
        class OtherServlet(EchoServlet):
            name = "other"

            def service(self, request, container):
                return HttpResponse.html("other")

        descriptor = DeploymentDescriptor()
        descriptor.add_servlet(EchoServlet(), "/a/*")
        descriptor.add_servlet(OtherServlet(), "/*")
        container = WebContainer(descriptor)
        assert container.handle(HttpRequest("GET", "/a/x")).body == "echo:/a/x"
        assert container.handle(HttpRequest("GET", "/b")).body == "other"

    def test_duplicate_servlet_name_rejected(self):
        descriptor = DeploymentDescriptor()
        descriptor.add_servlet(EchoServlet(), "/a")
        with pytest.raises(WebError):
            descriptor.add_servlet(EchoServlet(), "/b")

    def test_servlet_needs_a_pattern(self):
        descriptor = DeploymentDescriptor()
        with pytest.raises(WebError):
            descriptor.add_servlet(EchoServlet())

    def test_exact_mapping_beats_earlier_prefix(self):
        """Servlet-spec resolution: an exact pattern wins over a prefix
        pattern that was declared first — what lets ``/workflow/metrics``
        coexist with the WorkflowServlet's ``/workflow/*``."""

        class MetricsLike(EchoServlet):
            name = "metrics"

            def service(self, request, container):
                return HttpResponse.html("metrics")

        descriptor = DeploymentDescriptor()
        descriptor.add_servlet(EchoServlet(), "/workflow/*")
        descriptor.add_servlet(MetricsLike(), "/workflow/metrics")
        container = WebContainer(descriptor)
        assert (
            container.handle(HttpRequest("GET", "/workflow/metrics")).body
            == "metrics"
        )
        assert (
            container.handle(HttpRequest("GET", "/workflow/start")).body
            == "echo:/workflow/start"
        )

    def test_longer_prefix_beats_shorter(self):
        class DeepServlet(EchoServlet):
            name = "deep"

            def service(self, request, container):
                return HttpResponse.html("deep")

        descriptor = DeploymentDescriptor()
        descriptor.add_servlet(EchoServlet(), "/a/*")
        descriptor.add_servlet(DeepServlet(), "/a/b/*")
        container = WebContainer(descriptor)
        assert container.handle(HttpRequest("GET", "/a/b/c")).body == "deep"
        assert container.handle(HttpRequest("GET", "/a/x")).body == "echo:/a/x"


class TestFilterChains:
    def build(self, trace):
        descriptor = DeploymentDescriptor()
        descriptor.add_servlet(EchoServlet(), "/echo", "/echo/*")
        descriptor.add_filter(TraceFilter("first", trace), "/echo/*", "/echo")
        descriptor.add_filter(TraceFilter("second", trace), "/*")
        return WebContainer(descriptor)

    def test_declaration_order_in_reverse_order_out(self):
        trace: list = []
        container = self.build(trace)
        container.handle(HttpRequest("GET", "/echo"))
        assert trace == [
            "first:request",
            "second:request",
            "second:response",
            "first:response",
        ]

    def test_filter_scoped_by_pattern(self):
        trace: list = []
        descriptor = DeploymentDescriptor()
        descriptor.add_servlet(EchoServlet(), "/*")
        descriptor.add_filter(TraceFilter("scoped", trace), "/only/*")
        container = WebContainer(descriptor)
        container.handle(HttpRequest("GET", "/other"))
        assert trace == []
        container.handle(HttpRequest("GET", "/only/here"))
        assert trace == ["scoped:request", "scoped:response"]

    def test_filter_can_short_circuit(self):
        class DenyFilter(Filter):
            name = "deny"

            def do_filter(self, request, chain):
                return HttpResponse.denied("no")

        descriptor = DeploymentDescriptor()
        descriptor.add_servlet(EchoServlet(), "/echo")
        descriptor.add_filter(DenyFilter(), "/echo")
        container = WebContainer(descriptor)
        response = container.handle(HttpRequest("GET", "/echo"))
        assert response.status == 403
        assert container.stats.servlet_invocations == 0

    def test_filter_can_modify_request_before_servlet(self):
        class TagFilter(Filter):
            name = "tag"

            def do_filter(self, request, chain):
                request.attributes["tagged"] = True
                return chain.proceed(request)

        descriptor = DeploymentDescriptor()
        descriptor.add_servlet(EchoServlet(), "/echo")
        descriptor.add_filter(TagFilter(), "/echo")
        container = WebContainer(descriptor)
        response = container.handle(HttpRequest("GET", "/echo"))
        assert response.attributes["seen_by_servlet"] == {"tagged": True}

    def test_filter_can_modify_response_after_servlet(self):
        class AppendFilter(Filter):
            name = "append"

            def do_filter(self, request, chain):
                response = chain.proceed(request)
                response.body += "+postprocessed"
                return response

        descriptor = DeploymentDescriptor()
        descriptor.add_servlet(EchoServlet(), "/echo")
        descriptor.add_filter(AppendFilter(), "/echo")
        container = WebContainer(descriptor)
        assert container.handle(HttpRequest("GET", "/echo")).body.endswith(
            "+postprocessed"
        )

    def test_stats_count_invocations(self):
        trace: list = []
        container = self.build(trace)
        container.handle(HttpRequest("GET", "/echo"))
        assert container.stats.requests == 1
        assert container.stats.filter_invocations == 2
        assert container.stats.servlet_invocations == 1


class TestErrorContainment:
    def test_untranslated_library_error_becomes_500(self):
        """A ReproError escaping a servlet must surface as HTTP 500,
        never as a leaked exception."""
        from repro.errors import DatabaseError

        class FaultyServlet(Servlet):
            name = "faulty"

            def service(self, request, container):
                raise DatabaseError("backend exploded")

        descriptor = DeploymentDescriptor()
        descriptor.add_servlet(FaultyServlet(), "/boom")
        container = WebContainer(descriptor)
        response = container.handle(HttpRequest("GET", "/boom"))
        assert response.status == 500
        assert "exploded" in response.body
        assert container.stats.errors == 1

    def test_workflow_start_with_bad_project_is_500_not_crash(self):
        from repro.core import PatternBuilder, install_workflow_support
        from repro.core.persistence import save_pattern
        from repro.weblims import build_expdb
        from repro.weblims.schema_setup import add_experiment_type

        app = build_expdb()
        install_workflow_support(app)
        add_experiment_type(app.db, "A", [])
        pattern = (
            PatternBuilder("p").task("a", experiment_type="A").build(db=app.db)
        )
        save_pattern(app.db, pattern)
        response = app.post(
            "/workflow", action="start", pattern="p", project_id="999"
        )
        assert response.status == 500
        assert app.db.count("Workflow") == 0  # transaction rolled back


class TestForward:
    def test_internal_forward_reaches_other_servlet(self):
        class ForwardingServlet(Servlet):
            name = "fwd"

            def service(self, request, container):
                return container.forward(request, "/echo")

        descriptor = DeploymentDescriptor()
        descriptor.add_servlet(ForwardingServlet(), "/fwd")
        descriptor.add_servlet(EchoServlet(), "/echo")
        container = WebContainer(descriptor)
        response = container.handle(HttpRequest("GET", "/fwd"))
        assert response.body == "echo:/echo"
        assert container.stats.internal_forwards == 1

    def test_forward_runs_filters_by_default(self):
        """Per the paper: filters also intercept internal forwards."""
        trace: list = []

        class ForwardingServlet(Servlet):
            name = "fwd"

            def service(self, request, container):
                return container.forward(request, "/echo")

        descriptor = DeploymentDescriptor()
        descriptor.add_servlet(ForwardingServlet(), "/fwd")
        descriptor.add_servlet(EchoServlet(), "/echo")
        descriptor.add_filter(TraceFilter("f", trace), "/echo")
        container = WebContainer(descriptor)
        container.handle(HttpRequest("GET", "/fwd"))
        assert trace == ["f:request", "f:response"]

    def test_forward_marks_origin(self):
        class ForwardingServlet(Servlet):
            name = "fwd"

            def service(self, request, container):
                return container.forward(request, "/echo")

        descriptor = DeploymentDescriptor()
        descriptor.add_servlet(ForwardingServlet(), "/fwd")
        descriptor.add_servlet(EchoServlet(), "/echo")
        container = WebContainer(descriptor)
        response = container.handle(HttpRequest("GET", "/fwd"))
        assert response.attributes["seen_by_servlet"]["forwarded_from"] == "/fwd"


class TestSessions:
    def test_lazy_session_creation(self):
        container = WebContainer(DeploymentDescriptor())
        request = HttpRequest("GET", "/x")
        assert container.session_for(request) is None
        session = container.session_for(request, create=True, user="ada")
        assert session.user == "ada"
        assert request.session_id == session.session_id
        # Subsequent resolution finds the same session.
        assert container.session_for(request) is session
