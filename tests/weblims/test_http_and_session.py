"""HTTP objects and the session manager."""

from __future__ import annotations

import pytest

from repro.errors import BadRequestError, SessionError
from repro.weblims.http import HttpRequest, HttpResponse
from repro.weblims.session import SessionManager


class TestHttpRequest:
    def test_method_normalised(self):
        assert HttpRequest("get", "/x").method == "GET"

    def test_param_helpers(self):
        request = HttpRequest("GET", "/x", params={"a": "1"})
        assert request.param("a") == "1"
        assert request.param("b") is None
        assert request.param("b", "d") == "d"

    def test_require_param(self):
        request = HttpRequest("GET", "/x", params={"a": "1", "empty": ""})
        assert request.require_param("a") == "1"
        with pytest.raises(BadRequestError):
            request.require_param("missing")
        with pytest.raises(BadRequestError):
            request.require_param("empty")

    def test_params_with_prefix(self):
        request = HttpRequest(
            "POST", "/x", params={"v_a": "1", "v_b": "2", "c_a": "3", "v_": "x"}
        )
        assert request.params_with_prefix("v_") == {"a": "1", "b": "2"}
        assert request.params_with_prefix("c_") == {"a": "3"}


class TestHttpResponse:
    def test_ok_range(self):
        assert HttpResponse(status=200).ok
        assert HttpResponse(status=204).ok
        assert not HttpResponse(status=400).ok
        assert not HttpResponse(status=302).ok

    def test_factories(self):
        assert HttpResponse.html("x").status == 200
        error = HttpResponse.error(500, "boom")
        assert error.status == 500 and error.content_type == "text/plain"
        assert HttpResponse.denied("no").status == 403

    def test_append_notice(self):
        response = HttpResponse.html("<body></body>")
        response.append_notice("task done")
        response.append_notice("more")
        assert response.body.count("workflow-notice") == 2
        assert response.attributes["workflow_notices"] == ["task done", "more"]


class TestSessionManager:
    def test_create_and_resolve(self):
        manager = SessionManager()
        session = manager.create(user="ada")
        assert manager.get(session.session_id) is session
        assert manager.resolve(session.session_id) is session

    def test_unknown_session(self):
        manager = SessionManager()
        with pytest.raises(SessionError):
            manager.get("ghost")
        assert manager.resolve("ghost") is None
        assert manager.resolve(None) is None

    def test_invalidate(self):
        manager = SessionManager()
        session = manager.create()
        manager.invalidate(session.session_id)
        with pytest.raises(SessionError):
            manager.get(session.session_id)
        assert manager.active_count() == 0

    def test_attributes(self):
        manager = SessionManager()
        session = manager.create()
        session.set("cart", [1, 2])
        assert session.get("cart") == [1, 2]
        assert session.get("missing", "d") == "d"

    def test_ids_unique(self):
        manager = SessionManager()
        ids = {manager.create().session_id for __ in range(10)}
        assert len(ids) == 10
