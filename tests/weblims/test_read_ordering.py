"""Read ordering/limit over the HTML and JSON interfaces."""

from __future__ import annotations

import json

import pytest

from repro.weblims.api import install_api


@pytest.fixture
def filled(lab_app):
    install_api(lab_app)
    for cycles in (30, 10, None, 20):
        lab_app.bean.insert("Pcr", {"cycles": cycles})
    return lab_app


class TestHtmlInterface:
    def test_order_by_ascending_nulls_first(self, filled):
        response = filled.get(
            "/user", action="read", table="Pcr", order_by="cycles"
        )
        values = [row["cycles"] for row in response.attributes["rows"]]
        assert values == [None, 10, 20, 30]

    def test_order_by_descending(self, filled):
        response = filled.get(
            "/user", action="read", table="Pcr", order_by="cycles", desc="true"
        )
        values = [row["cycles"] for row in response.attributes["rows"]]
        assert values == [30, 20, 10, None]

    def test_order_by_inherited_parent_column(self, filled):
        response = filled.get(
            "/user", action="read", table="Pcr", order_by="experiment_id",
            desc="true",
        )
        ids = [row["experiment_id"] for row in response.attributes["rows"]]
        assert ids == sorted(ids, reverse=True)

    def test_limit(self, filled):
        response = filled.get(
            "/user", action="read", table="Pcr", order_by="cycles", limit="2"
        )
        assert len(response.attributes["rows"]) == 2

    def test_unknown_order_column_is_400(self, filled):
        response = filled.get(
            "/user", action="read", table="Pcr", order_by="ghost"
        )
        assert response.status == 400

    def test_bad_limit_is_400(self, filled):
        response = filled.get(
            "/user", action="read", table="Pcr", limit="many"
        )
        assert response.status == 400
        response = filled.get("/user", action="read", table="Pcr", limit="-1")
        assert response.status == 400


class TestJsonInterface:
    def test_order_and_limit_over_api(self, filled):
        response = filled.get(
            "/api",
            action="read",
            table="Pcr",
            order_by="cycles",
            desc="true",
            limit="1",
        )
        payload = json.loads(response.body)
        assert payload["count"] == 1
        assert payload["rows"][0]["cycles"] == 30
