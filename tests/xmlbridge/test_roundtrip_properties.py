"""Property test: relational → XML → relational is the identity."""

from __future__ import annotations

import datetime
import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minidb import Column, ColumnType, TableSchema
from repro.xmlbridge import RelationalDocument

# XML 1.0 forbids most control characters; generate printable text.
xml_text = st.text(
    alphabet=string.ascii_letters + string.digits + " <>&\"'._-",
    max_size=20,
)

timestamps = st.datetimes(
    min_value=datetime.datetime(1990, 1, 1),
    max_value=datetime.datetime(2100, 1, 1),
)

row_strategy = st.fixed_dictionaries(
    {
        "id": st.integers(min_value=1, max_value=10**9),
        "label": xml_text | st.none(),
        "ratio": st.floats(allow_nan=False, allow_infinity=False, width=32).map(
            float
        )
        | st.none(),
        "flag": st.booleans() | st.none(),
        "stamp": timestamps | st.none(),
    }
)


def schema() -> TableSchema:
    return TableSchema(
        name="T",
        columns=[
            Column("id", ColumnType.INTEGER, nullable=False),
            Column("label", ColumnType.TEXT),
            Column("ratio", ColumnType.REAL),
            Column("flag", ColumnType.BOOLEAN),
            Column("stamp", ColumnType.TIMESTAMP),
        ],
        primary_key=("id",),
    )


@given(rows=st.lists(row_strategy, max_size=10))
@settings(max_examples=100, deadline=None)
def test_document_roundtrip_identity(rows):
    document = RelationalDocument("doc", kind="property")
    document.add_rows(schema(), rows)
    parsed = RelationalDocument.from_xml(document.to_xml())
    assert parsed.rows("T") == rows
    assert parsed.attributes["kind"] == "property"


@given(rows=st.lists(row_strategy, min_size=1, max_size=5))
@settings(max_examples=60, deadline=None)
def test_double_roundtrip_is_stable(rows):
    document = RelationalDocument("doc")
    document.add_rows(schema(), rows)
    once = RelationalDocument.from_xml(document.to_xml())
    twice = RelationalDocument.from_xml(once.to_xml())
    assert twice.rows("T") == once.rows("T")
