"""Relational <-> XML translation."""

from __future__ import annotations

import datetime

import pytest

from repro.errors import XmlExtractionError, XmlTranslationError
from repro.minidb import Column, ColumnType, Database, TableSchema
from repro.xmlbridge import RelationalDocument


@pytest.fixture
def sample_db():
    db = Database()
    db.create_table(
        TableSchema(
            name="Sample",
            columns=[
                Column("sample_id", ColumnType.INTEGER, nullable=False),
                Column("name", ColumnType.TEXT),
                Column("quality", ColumnType.REAL),
                Column("created", ColumnType.TIMESTAMP),
                Column("valid", ColumnType.BOOLEAN),
            ],
            primary_key=("sample_id",),
            autoincrement="sample_id",
        )
    )
    db.create_table(
        TableSchema(
            name="Primer",
            columns=[
                Column("sample_id", ColumnType.INTEGER, nullable=False),
                Column("sequence", ColumnType.TEXT),
            ],
            primary_key=("sample_id",),
            parent="Sample",
        )
    )
    return db


class TestRoundtrip:
    def test_scalar_roundtrip(self, sample_db):
        row = sample_db.insert(
            "Sample",
            {
                "name": "s1",
                "quality": 0.75,
                "created": datetime.datetime(2026, 1, 2, 3, 4, 5),
                "valid": True,
            },
        )
        document = RelationalDocument("doc")
        document.add_table_from_db(sample_db, "Sample", [row])
        parsed = RelationalDocument.from_xml(document.to_xml())
        assert parsed.rows("Sample") == [row]

    def test_null_roundtrip(self, sample_db):
        row = sample_db.insert("Sample", {"name": None, "quality": None})
        document = RelationalDocument("doc")
        document.add_table_from_db(sample_db, "Sample", [row])
        parsed = RelationalDocument.from_xml(document.to_xml())
        assert parsed.rows("Sample")[0]["name"] is None

    def test_merged_child_rows_typed_via_parent_chain(self, sample_db):
        parent = sample_db.insert("Sample", {"name": "p", "quality": 0.5})
        sample_db.insert(
            "Primer", {"sample_id": parent["sample_id"], "sequence": "AT"}
        )
        merged = sample_db.select_with_parent("Primer")
        document = RelationalDocument("doc")
        document.add_table_from_db(sample_db, "Primer", merged)
        parsed = RelationalDocument.from_xml(document.to_xml())
        row = parsed.rows("Primer")[0]
        assert row["sequence"] == "AT"
        assert row["quality"] == 0.5

    def test_attributes_roundtrip(self):
        document = RelationalDocument(
            "task-input", kind="dispatch", experiment_id="42"
        )
        parsed = RelationalDocument.from_xml(document.to_xml())
        assert parsed.root_tag == "task-input"
        assert parsed.attributes["kind"] == "dispatch"
        assert parsed.attributes["experiment-id"] == "42"

    def test_multiple_tables(self, sample_db):
        row = sample_db.insert("Sample", {"name": "a"})
        document = RelationalDocument("doc")
        document.add_table_from_db(sample_db, "Sample", [row])
        document.add_rows(
            sample_db.schema("Primer"), [{"sample_id": 1, "sequence": "GG"}]
        )
        parsed = RelationalDocument.from_xml(document.to_xml())
        assert parsed.tables() == ["Sample", "Primer"]

    def test_special_characters_escaped(self, sample_db):
        row = sample_db.insert("Sample", {"name": "<&>'\""})
        document = RelationalDocument("doc")
        document.add_table_from_db(sample_db, "Sample", [row])
        parsed = RelationalDocument.from_xml(document.to_xml())
        assert parsed.rows("Sample")[0]["name"] == "<&>'\""


class TestValidationAndErrors:
    def test_untyped_column_rejected_at_build(self, sample_db):
        document = RelationalDocument("doc")
        with pytest.raises(XmlExtractionError):
            document.add_rows(
                sample_db.schema("Sample"), [{"ghost_column": 1}]
            )

    def test_malformed_xml_rejected(self):
        with pytest.raises(XmlTranslationError):
            RelationalDocument.from_xml("<oops")

    def test_unknown_type_rejected(self):
        xml = (
            '<doc><table name="T"><row>'
            '<column name="x" type="blob">z</column>'
            "</row></table></doc>"
        )
        with pytest.raises(XmlTranslationError):
            RelationalDocument.from_xml(xml)

    def test_bad_value_rejected(self):
        xml = (
            '<doc><table name="T"><row>'
            '<column name="x" type="integer">NaNaNaN</column>'
            "</row></table></doc>"
        )
        with pytest.raises(XmlTranslationError):
            RelationalDocument.from_xml(xml)

    def test_validate_against_unknown_table(self, sample_db):
        xml = (
            '<doc><table name="Ghost"><row>'
            '<column name="x" type="integer">1</column>'
            "</row></table></doc>"
        )
        document = RelationalDocument.from_xml(xml)
        with pytest.raises(XmlTranslationError):
            document.validate_against(sample_db)

    def test_validate_against_unknown_column(self, sample_db):
        xml = (
            '<doc><table name="Sample"><row>'
            '<column name="ghost" type="integer">1</column>'
            "</row></table></doc>"
        )
        document = RelationalDocument.from_xml(xml)
        with pytest.raises(XmlTranslationError):
            document.validate_against(sample_db)

    def test_invalid_root_tag_rejected(self):
        with pytest.raises(XmlExtractionError):
            RelationalDocument("bad tag!")


class TestInsertInto:
    def test_insert_into_trims_foreign_columns(self, sample_db):
        """Inherited parent columns echoed back by agents are dropped."""
        parent = sample_db.insert("Sample", {"name": "p", "quality": 0.9})
        merged = dict(parent)
        merged["sequence"] = "TTTT"
        document = RelationalDocument("doc")
        document.add_table_from_db(sample_db, "Primer", [merged])
        inserted = document.insert_into(sample_db, "Primer")
        assert inserted == [{"sample_id": parent["sample_id"], "sequence": "TTTT"}]
