"""The exception hierarchy: catchability contracts."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        exception_types = [
            obj
            for obj in vars(errors).values()
            if isinstance(obj, type) and issubclass(obj, Exception)
        ]
        for exception_type in exception_types:
            assert issubclass(exception_type, errors.ReproError), exception_type

    def test_subsystem_roots(self):
        assert issubclass(errors.PrimaryKeyError, errors.ConstraintError)
        assert issubclass(errors.ConstraintError, errors.DatabaseError)
        assert issubclass(errors.RoutingError, errors.WebError)
        assert issubclass(errors.UnknownQueueError, errors.MessagingError)
        assert issubclass(errors.ConditionError, errors.WorkflowError)
        assert issubclass(errors.IllegalTransitionError, errors.WorkflowError)
        assert issubclass(errors.AgentFormatError, errors.AgentError)
        assert issubclass(errors.XmlTranslationError, errors.XmlBridgeError)

    def test_structured_errors_carry_context(self):
        table_error = errors.UnknownTableError("Pcr")
        assert table_error.table_name == "Pcr"
        column_error = errors.UnknownColumnError("Pcr", "cycles")
        assert (column_error.table_name, column_error.column_name) == (
            "Pcr",
            "cycles",
        )
        queue_error = errors.UnknownQueueError("agent.x")
        assert queue_error.queue_name == "agent.x"
        agent_error = errors.UnknownAgentError("bot")
        assert agent_error.agent_name == "bot"
        transition_error = errors.IllegalTransitionError(
            "task-model", "completed", "activate"
        )
        assert transition_error.current == "completed"
        assert transition_error.event == "activate"

    def test_one_except_clause_catches_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.JournalError("x")
        with pytest.raises(errors.ReproError):
            raise errors.EligibilityError("x")
