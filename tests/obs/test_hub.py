"""ObservabilityHub wiring: events, broker, collectors, installation."""

from __future__ import annotations

from repro.core.events import EventLog
from repro.messaging.broker import MessageBroker
from repro.obs import ObservabilityHub, install_observability
from repro.weblims import build_expdb


class TestEventBridge:
    def test_events_counted_by_kind(self):
        hub = ObservabilityHub()
        log = EventLog()
        log.subscribe(hub.on_event)
        log.emit("task.state", task="pcr", state="active")
        log.emit("task.state", task="pcr", state="completed")
        log.emit("workflow.started", workflow_id=1)
        snapshot = hub.registry.snapshot()
        by_kind = {
            series["labels"]["kind"]: series["value"]
            for series in snapshot["engine_events_total"]["series"]
        }
        assert by_kind == {"task.state": 2, "workflow.started": 1}

    def test_events_become_spans_inside_an_active_trace(self):
        hub = ObservabilityHub()
        log = EventLog()
        log.subscribe(hub.on_event)
        with hub.span("request") as root:
            log.emit("instance.state", experiment_id=3, state="completed")
        spans = hub.tracer.spans_for(root.trace_id)
        [marker] = [s for s in spans if s.name == "event.instance.state"]
        assert marker.parent_id == root.span_id
        assert marker.attributes["state"] == "completed"

    def test_non_scalar_payload_values_are_skipped(self):
        hub = ObservabilityHub()
        log = EventLog()
        log.subscribe(hub.on_event)
        with hub.span("request") as root:
            log.emit("outputs.recorded", rows=[{"a": 1}], table="Sample")
        [marker] = [
            s
            for s in hub.tracer.spans_for(root.trace_id)
            if s.name == "event.outputs.recorded"
        ]
        assert "rows" not in marker.attributes
        assert marker.attributes["table"] == "Sample"


class TestBrokerBridge:
    def test_delivery_wait_histogram(self):
        hub = ObservabilityHub()
        broker = MessageBroker()
        hub.watch_broker(broker)
        broker.declare_queue("q")
        broker.send("q", "body")
        message = broker.receive("q")
        broker.ack(message)
        snapshot = hub.registry.snapshot()
        [series] = snapshot["broker_delivery_wait_ms"]["series"]
        assert series["labels"] == {"queue": "q"}
        assert series["summary"]["count"] == 1.0

    def test_delivery_span_stitched_from_headers(self):
        hub = ObservabilityHub()
        broker = MessageBroker()
        hub.watch_broker(broker)
        broker.declare_queue("q")
        with hub.span("sender") as sender:
            broker.send("q", "body", headers=hub.tracer.inject({}))
        broker.receive("q")
        [delivery] = [
            s
            for s in hub.tracer.spans_for(sender.trace_id)
            if s.name == "broker.deliver"
        ]
        assert delivery.parent_id == sender.span_id
        assert delivery.attributes["queue"] == "q"

    def test_untraced_delivery_records_no_span(self):
        hub = ObservabilityHub()
        broker = MessageBroker()
        hub.watch_broker(broker)
        broker.declare_queue("q")
        broker.send("q", "body")
        broker.receive("q")
        assert hub.tracer.finished_spans() == []

    def test_broker_stats_mirrored(self):
        hub = ObservabilityHub()
        broker = MessageBroker()
        hub.watch_broker(broker)
        broker.declare_queue("q")
        broker.send("q", "one")
        broker.send("q", "two")
        broker.receive("q")
        text = hub.registry.render()
        assert "broker_sends_total 2" in text
        assert 'broker_queue_depth{queue="q"} 1' in text
        assert "broker_in_flight 1" in text


class TestInstall:
    def test_container_requests_traced_and_timed(self):
        app = build_expdb()
        hub = install_observability(expdb=app)
        response = app.get("/user", action="list")
        assert response.ok
        assert hub.registry.family_quantile("http_request_latency_ms", 0.5) > 0
        [root] = [
            s for s in hub.tracer.finished_spans() if s.name == "http.request"
        ]
        assert root.attributes["path"] == "/user"
        assert root.attributes["status"] == 200

    def test_requests_inside_an_open_span_share_one_trace(self):
        app = build_expdb()
        hub = install_observability(expdb=app)
        with hub.span("submission") as root:
            app.get("/user", action="list")
            app.get("/user", action="list")
        requests = [
            s
            for s in hub.tracer.spans_for(root.trace_id)
            if s.name == "http.request"
        ]
        assert len(requests) == 2
        assert all(s.parent_id == root.span_id for s in requests)

    def test_metrics_servlet_served_at_exact_path(self):
        app = build_expdb()
        install_observability(expdb=app)
        response = app.get("/workflow/metrics")
        assert response.ok
        assert response.content_type.startswith("text/plain")
        assert "db_reads_total" in response.body

    def test_database_collector_reports_per_table_counters(self):
        app = build_expdb()
        hub = install_observability(expdb=app)
        app.get("/user", action="read", table="Project")
        text = hub.registry.render()
        assert 'db_table_reads_total{table="Project"}' in text

    def test_install_is_idempotent_about_the_servlet(self):
        app = build_expdb()
        hub = install_observability(expdb=app)
        install_observability(expdb=app, hub=hub)
        for name in ("MetricsServlet", "AuditServlet", "HealthServlet"):
            assert app.container.descriptor.servlet_names().count(name) == 1

    def test_reinstall_reuses_the_context_hub(self):
        app = build_expdb()
        first = install_observability(expdb=app)
        second = install_observability(expdb=app)
        assert second is first
        assert app.container.context["obs"] is first

    def test_reinstall_does_not_double_subscribe_the_event_stream(self):
        from repro.core.engine import WorkflowBean

        app = build_expdb()
        engine = WorkflowBean(app.db)
        hub = install_observability(expdb=app, engine=engine)
        install_observability(expdb=app, engine=engine, hub=hub)
        engine.events.emit("task.state", task="a", state="active")
        snapshot = hub.registry.snapshot()
        [series] = snapshot["engine_events_total"]["series"]
        assert series["value"] == 1
        # Exactly one audit row too — the audit subscriber is also guarded.
        assert hub.audit.count() == 1

    def test_reinstall_does_not_duplicate_collectors(self):
        app = build_expdb()
        hub = install_observability(expdb=app)
        collectors_after_first = len(hub.registry._collectors)
        install_observability(expdb=app)
        assert len(hub.registry._collectors) == collectors_after_first

    def test_watch_broker_is_idempotent(self):
        hub = ObservabilityHub()
        broker = MessageBroker()
        hub.watch_broker(broker)
        before = len(hub.registry._collectors)
        hub.watch_broker(broker)
        assert len(hub.registry._collectors) == before
        assert broker.observer is hub.broker_observer


class TestHealth:
    def test_empty_hub_reports_ok_with_no_components(self):
        report = ObservabilityHub().health_report()
        assert report["status"] == "ok"
        assert report["components"] == {}

    def test_provider_exception_degrades_not_crashes(self):
        hub = ObservabilityHub()

        def broken():
            raise RuntimeError("probe failed")

        hub.register_health("flaky", broken)
        report = hub.health_report()
        assert report["status"] == "degraded"
        assert report["components"]["flaky"]["status"] == "error"
        assert "probe failed" in report["components"]["flaky"]["error"]

    def test_broker_component_reports_queue_depths_and_journal(self):
        hub = ObservabilityHub()
        broker = MessageBroker()
        hub.watch_broker(broker)
        broker.declare_queue("q")
        broker.send("q", "body")
        info = hub.health_report()["components"]["broker"]
        assert info["queues"] == {"q": 1}
        assert info["in_flight"] == 0
        assert info["journal"]["enabled"] is False

    def test_database_component_reports_wal_status(self):
        app = build_expdb()
        hub = install_observability(expdb=app)
        info = hub.health_report()["components"]["database"]
        assert info["wal"] == {"enabled": False}
        assert info["tables"] > 0

    def test_overall_status_is_the_worst_component(self):
        hub = ObservabilityHub()
        hub.register_health("fine", lambda: {"status": "ok"})
        hub.register_health("limping", lambda: {"status": "degraded"})

        def broken():
            raise RuntimeError("probe failed")

        hub.register_health("dead", broken)
        report = hub.health_report()
        assert report["status"] == "degraded"
        assert report["components"]["fine"]["status"] == "ok"
        assert report["components"]["limping"]["status"] == "degraded"
        assert report["components"]["dead"]["status"] == "error"

    def _broker_with_dead_letter(self):
        from repro.resilience import RetryPolicy

        broker = MessageBroker()
        broker.declare_queue("q")
        broker.set_retry_policy("q", RetryPolicy(max_deliveries=1))
        broker.send("q", "poison")
        message = broker.receive("q")
        broker.reject(message, reason="cannot parse")
        assert broker.dlq_depth() == 1
        return broker

    def test_dlq_depth_degrades_the_broker_component(self):
        hub = ObservabilityHub()
        broker = self._broker_with_dead_letter()
        hub.watch_broker(broker)
        info = hub.health_report()["components"]["broker"]
        assert info["status"] == "degraded"
        assert info["dlq_depth"] == 1
        assert info["ready"] is True
        assert "dead-letter" in info["reason"]

    def test_dlq_degradation_does_not_cost_readiness(self):
        from repro.obs import hub_readiness

        hub = ObservabilityHub()
        broker = self._broker_with_dead_letter()
        hub.watch_broker(broker)
        ready, reason = hub_readiness(hub)
        assert ready is True
        assert reason == ""

    def test_plain_degraded_readiness_component_blocks_readiness(self):
        from repro.obs import hub_readiness

        hub = ObservabilityHub()
        hub.register_health("engine", lambda: {"status": "degraded"})
        ready, reason = hub_readiness(hub)
        assert ready is False
        assert "engine=degraded" in reason

    def test_non_readiness_component_never_blocks_readiness(self):
        from repro.obs import hub_readiness

        hub = ObservabilityHub()
        hub.register_health("alerts", lambda: {"status": "degraded"})
        report = hub.health_report()
        assert report["status"] == "degraded"
        ready, __ = hub_readiness(hub)
        assert ready is True


class TestLogMetrics:
    def test_log_records_counted_by_level(self):
        hub = ObservabilityHub()
        hub.log.logger("engine").info("one")
        hub.log.logger("engine").error("two")
        snapshot = hub.registry.snapshot()
        by_level = {
            series["labels"]["level"]: series["value"]
            for series in snapshot["log_records_total"]["series"]
        }
        assert by_level == {"info": 1, "error": 1}

    def test_dropped_counters_exposed_as_metrics(self):
        hub = ObservabilityHub()
        hub.log.capacity = 1
        hub.log.logger("x").info("a")
        hub.log.logger("x").info("b")
        text = hub.registry.render()
        assert "log_records_dropped_total 1" in text
        assert "trace_spans_dropped_total 0" in text
