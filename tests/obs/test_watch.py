"""Unit tests for the repro.obs.watch layer.

Residency tracking and stuck detection, the alert state machine with
for-duration hysteresis, the bounded telemetry exporter and the flight
recorder's merge contract — all under a ManualClock, no sleeps.
"""

from __future__ import annotations

import pytest

from repro.core.events import EventLog
from repro.obs import ObservabilityHub
from repro.obs.watch import (
    AlertEngine,
    AlertRule,
    MemorySink,
    StateResidencyTracker,
    StuckPolicy,
    TelemetryExporter,
)
from repro.obs.watch.export import BrokenSink
from repro.resilience import ManualClock


def make_tracker(clock=None, registry=None):
    clock = clock or ManualClock()
    tracker = StateResidencyTracker(clock=clock, registry=registry)
    log = EventLog()
    log.subscribe(tracker.on_event)
    return tracker, log, clock


class TestResidencyTracker:
    def test_records_residency_on_transition(self):
        hub = ObservabilityHub()
        tracker, log, clock = make_tracker(registry=hub.registry)
        log.emit("workflow.started", workflow_id=1, pattern="protein_creation")
        log.emit(
            "task.state",
            workflow_id=1, wftask_id=10, task="pcr",
            event="enable", state="eligible",
        )
        clock.advance(5.0)
        log.emit(
            "task.state",
            workflow_id=1, wftask_id=10, task="pcr",
            event="first_activation", state="active",
        )
        summary = (
            hub.registry.histogram(
                "state_residency_seconds",
                pattern="protein_creation", kind="task", state="eligible",
            ).summary()
        )
        assert summary["count"] == 1
        assert summary["sum"] == pytest.approx(5.0)
        baselines = tracker.baselines()
        assert baselines["protein_creation/task/eligible"]["mean_s"] == (
            pytest.approx(5.0)
        )

    def test_terminal_states_drop_the_entity(self):
        tracker, log, clock = make_tracker()
        log.emit("workflow.started", workflow_id=1, pattern="p")
        log.emit(
            "instance.state",
            workflow_id=1, wftask_id=10, experiment_id=7, agent_id=1,
            event="delegation", state="delegated",
        )
        assert len(tracker.current()) == 1
        clock.advance(2.0)
        log.emit(
            "instance.state",
            workflow_id=1, wftask_id=10, experiment_id=7, agent_id=1,
            event="completion", state="completed",
        )
        assert tracker.current() == []
        # The completed residency still fed the baseline.
        assert tracker.baselines()["p/instance/delegated"]["count"] == 1

    def test_instance_learns_task_name_from_task_events(self):
        tracker, log, __ = make_tracker()
        log.emit(
            "task.state",
            workflow_id=1, wftask_id=10, task="digestion",
            event="enable", state="eligible",
        )
        log.emit(
            "instance.state",
            workflow_id=1, wftask_id=10, experiment_id=7, agent_id=2,
            event="delegation", state="delegated",
        )
        instance = [e for e in tracker.current() if e["kind"] == "instance"]
        assert instance[0]["task"] == "digestion"

    def test_scan_uses_fallback_until_baseline_is_credible(self):
        tracker, log, clock = make_tracker()
        log.emit("workflow.started", workflow_id=1, pattern="p")
        log.emit(
            "instance.state",
            workflow_id=1, wftask_id=10, experiment_id=7, agent_id=1,
            event="delegation", state="delegated",
        )
        policy = StuckPolicy(fallback_s=60.0, floor_s=1.0, min_samples=3)
        clock.advance(59.0)
        assert tracker.scan(policy) == []
        clock.advance(2.0)
        flagged = tracker.scan(policy)
        assert len(flagged) == 1
        assert flagged[0]["entity_id"] == 7
        assert "fallback" in flagged[0]["reason"]

    def test_scan_uses_baseline_multiple_once_credible(self):
        tracker, log, clock = make_tracker()
        log.emit("workflow.started", workflow_id=1, pattern="p")
        # Three instances complete after 10 s each: baseline mean 10 s.
        for experiment_id in (1, 2, 3):
            log.emit(
                "instance.state",
                workflow_id=1, wftask_id=10, experiment_id=experiment_id,
                agent_id=1, event="delegation", state="delegated",
            )
            clock.advance(10.0)
            log.emit(
                "instance.state",
                workflow_id=1, wftask_id=10, experiment_id=experiment_id,
                agent_id=1, event="completion", state="completed",
            )
        log.emit(
            "instance.state",
            workflow_id=1, wftask_id=10, experiment_id=4, agent_id=1,
            event="delegation", state="delegated",
        )
        policy = StuckPolicy(multiple=3.0, min_samples=3, floor_s=1.0)
        clock.advance(29.0)  # below 3 x 10 s
        assert tracker.scan(policy) == []
        clock.advance(2.0)  # 31 s > 30 s threshold
        flagged = tracker.scan(policy)
        assert len(flagged) == 1
        assert flagged[0]["baseline_samples"] == 3
        assert flagged[0]["threshold_s"] == pytest.approx(30.0)

    def test_floor_suppresses_zero_baseline_flapping(self):
        """ManualClock baselines are all zeros; the floor keeps
        sub-floor residencies from being flagged instantly."""
        tracker, log, clock = make_tracker()
        log.emit("workflow.started", workflow_id=1, pattern="p")
        for experiment_id in (1, 2, 3):
            log.emit(
                "instance.state",
                workflow_id=1, wftask_id=10, experiment_id=experiment_id,
                agent_id=1, event="delegation", state="delegated",
            )
            log.emit(
                "instance.state",
                workflow_id=1, wftask_id=10, experiment_id=experiment_id,
                agent_id=1, event="completion", state="completed",
            )
        log.emit(
            "instance.state",
            workflow_id=1, wftask_id=10, experiment_id=4, agent_id=1,
            event="delegation", state="delegated",
        )
        policy = StuckPolicy(multiple=3.0, min_samples=3, floor_s=1.0)
        assert tracker.scan(policy) == []  # residency 0 < floor
        clock.advance(1.5)
        assert len(tracker.scan(policy)) == 1  # above floor and 3x0 mean

    def test_eviction_caps_tracked_entities(self):
        clock = ManualClock()
        tracker = StateResidencyTracker(clock=clock, max_entities=2)
        log = EventLog()
        log.subscribe(tracker.on_event)
        for experiment_id in (1, 2, 3):
            log.emit(
                "instance.state",
                workflow_id=1, wftask_id=10, experiment_id=experiment_id,
                agent_id=1, event="delegation", state="delegated",
            )
        assert len(tracker.current()) == 2
        assert tracker.evicted == 1

    def test_malformed_events_never_raise(self):
        tracker, log, __ = make_tracker()
        log.emit("task.state", task=None, state=None)
        log.emit("instance.state", experiment_id="not-an-int", state=7)
        log.emit("workflow.started", workflow_id=None, pattern=3)
        assert tracker.current() == []


class TestStuckPolicy:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            StuckPolicy(multiple=0.0)
        with pytest.raises(ValueError):
            StuckPolicy(fallback_s=0.0)
        with pytest.raises(ValueError):
            StuckPolicy(floor_s=-1.0)


class TestAlertRule:
    def test_rejects_unknown_comparison(self):
        with pytest.raises(ValueError):
            AlertRule(name="x", source="s", threshold=1, comparison="~")

    def test_rejects_negative_hold(self):
        with pytest.raises(ValueError):
            AlertRule(name="x", source="s", threshold=1, for_s=-1.0)


def make_engine(clock=None, exporter=None):
    clock = clock or ManualClock()
    hub = ObservabilityHub(clock=clock)
    engine = AlertEngine(hub, exporter=exporter, clock=clock)
    return engine, hub, clock


class TestAlertEngine:
    def test_fires_immediately_without_hold(self):
        engine, __, __ = make_engine()
        value = {"v": 0.0}
        engine.add_source("sig", lambda: value["v"])
        engine.add_rule(AlertRule(name="r", source="sig", threshold=5))
        assert engine.evaluate() == []
        value["v"] = 6.0
        transitions = engine.evaluate()
        assert [(t["from"], t["to"]) for t in transitions] == [
            ("inactive", "pending"),
            ("pending", "firing"),
        ]

    def test_hysteresis_holds_pending_until_for_s(self):
        engine, __, clock = make_engine()
        value = {"v": 10.0}
        engine.add_source("sig", lambda: value["v"])
        engine.add_rule(
            AlertRule(name="r", source="sig", threshold=5, for_s=30.0)
        )
        transitions = engine.evaluate()
        assert [t["to"] for t in transitions] == ["pending"]
        clock.advance(10.0)
        assert engine.evaluate() == []  # still pending, not held long enough
        clock.advance(25.0)
        transitions = engine.evaluate()
        assert [t["to"] for t in transitions] == ["firing"]

    def test_pending_cancels_silently_when_condition_clears(self):
        engine, __, clock = make_engine()
        value = {"v": 10.0}
        engine.add_source("sig", lambda: value["v"])
        engine.add_rule(
            AlertRule(name="r", source="sig", threshold=5, for_s=30.0)
        )
        engine.evaluate()
        clock.advance(5.0)
        value["v"] = 0.0
        transitions = engine.evaluate()
        assert [(t["from"], t["to"], t["event"]) for t in transitions] == [
            ("pending", "inactive", "cancel")
        ]
        # A flap never fired, so nothing to resolve.
        assert engine.report()["rules"][0]["status"] == "inactive"

    def test_firing_resolves_and_can_refire(self):
        engine, __, clock = make_engine()
        value = {"v": 10.0}
        engine.add_source("sig", lambda: value["v"])
        engine.add_rule(AlertRule(name="r", source="sig", threshold=5))
        engine.evaluate()
        value["v"] = 0.0
        transitions = engine.evaluate()
        assert [t["to"] for t in transitions] == ["resolved"]
        clock.advance(1.0)
        value["v"] = 10.0
        transitions = engine.evaluate()
        assert [(t["from"], t["to"]) for t in transitions] == [
            ("resolved", "pending"),
            ("pending", "firing"),
        ]

    def test_metric_source_reads_the_registry(self):
        engine, hub, __ = make_engine()
        hub.registry.gauge("queue_depth", queue="a").set(3.0)
        hub.registry.gauge("queue_depth", queue="b").set(4.0)
        engine.add_rule(
            AlertRule(name="deep", source="metric:queue_depth", threshold=5)
        )
        transitions = engine.evaluate()  # 3 + 4 = 7 > 5
        assert [t["to"] for t in transitions] == ["pending", "firing"]

    def test_unknown_source_marks_error_without_killing_the_pass(self):
        engine, __, __ = make_engine()
        engine.add_source("good", lambda: 10.0)
        engine.add_rule(AlertRule(name="bad", source="missing", threshold=1))
        engine.add_rule(AlertRule(name="good", source="good", threshold=1))
        transitions = engine.evaluate()
        assert [t["rule"] for t in transitions] == ["good", "good"]
        report = {r["name"]: r for r in engine.report()["rules"]}
        assert report["bad"]["error"] is not None
        assert report["good"]["error"] is None

    def test_transitions_are_audited_and_counted(self):
        from repro.weblims import build_expdb
        from repro.core import install_workflow_support
        from repro.obs import install_observability

        app = build_expdb()
        engine_bean = install_workflow_support(app)
        clock = ManualClock()
        hub = install_observability(expdb=app, engine=engine_bean)
        alert_engine = AlertEngine(hub, clock=clock)
        alert_engine.add_source("sig", lambda: 10.0)
        alert_engine.add_rule(AlertRule(name="r", source="sig", threshold=5))
        alert_engine.evaluate()
        total, records = hub.audit.query(kind="alert.transition")
        assert total == 2  # pending then firing
        assert {r["state"] for r in records} == {"pending", "firing"}
        assert records[0]["detail"]["rule"] == "r"
        snapshot = hub.registry.snapshot()
        series = snapshot["watch_alert_transitions_total"]["series"]
        by_target = {s["labels"]["to"]: s["value"] for s in series}
        assert by_target == {"pending": 1, "firing": 1}

    def test_transitions_reach_the_exporter(self):
        clock = ManualClock()
        exporter = TelemetryExporter(clock=clock)
        sink = MemorySink()
        exporter.add_sink(sink)
        engine, __, __ = make_engine(clock=clock, exporter=exporter)
        engine.add_source("sig", lambda: 10.0)
        engine.add_rule(AlertRule(name="r", source="sig", threshold=5))
        engine.evaluate()
        exporter.flush()
        kinds = [record["kind"] for record in sink.records]
        assert kinds == ["alert.transition", "alert.transition"]
        assert sink.records[-1]["to"] == "firing"

    def test_health_degrades_only_while_firing(self):
        engine, __, __ = make_engine()
        value = {"v": 10.0}
        engine.add_source("sig", lambda: value["v"])
        engine.add_rule(AlertRule(name="r", source="sig", threshold=5))
        assert engine.health()["status"] == "ok"
        engine.evaluate()
        health = engine.health()
        assert health["status"] == "degraded"
        assert health["firing"] == ["r"]
        value["v"] = 0.0
        engine.evaluate()
        assert engine.health()["status"] == "ok"

    def test_source_name_cannot_shadow_metric_namespace(self):
        engine, __, __ = make_engine()
        with pytest.raises(ValueError):
            engine.add_source("metric:boom", lambda: 1.0)


class TestTelemetryExporter:
    def test_offer_drops_oldest_when_full(self):
        exporter = TelemetryExporter(clock=ManualClock(), capacity=3)
        for index in range(5):
            exporter.offer("r", index=index)
        assert exporter.pending() == 3
        assert exporter.dropped == 2
        sink = MemorySink()
        exporter.add_sink(sink)
        exporter.flush()
        assert [record["index"] for record in sink.records] == [2, 3, 4]

    def test_dead_sink_counts_errors_and_spares_others(self):
        exporter = TelemetryExporter(clock=ManualClock())
        good = MemorySink()
        exporter.add_sink(BrokenSink())
        exporter.add_sink(good)
        exporter.offer("a")
        exporter.offer("b")
        flushed = exporter.flush()
        assert flushed == 2
        # The broken sink fails once and is skipped thereafter.
        assert exporter.sink_errors == 1
        assert len(good.records) == 2

    def test_flush_limit_drains_partially(self):
        exporter = TelemetryExporter(clock=ManualClock())
        sink = MemorySink()
        exporter.add_sink(sink)
        for index in range(4):
            exporter.offer("r", index=index)
        assert exporter.flush(limit=3) == 3
        assert exporter.pending() == 1

    def test_jsonlines_sink_appends_one_object_per_line(self, tmp_path):
        import json

        from repro.obs.watch import JsonLinesSink

        path = tmp_path / "telemetry.jsonl"
        exporter = TelemetryExporter(clock=ManualClock())
        exporter.add_sink(JsonLinesSink(str(path)))
        exporter.offer("alert.transition", rule="r")
        exporter.offer("metrics.snapshot", metrics={})
        exporter.flush()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["kind"] == "alert.transition"

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            TelemetryExporter(capacity=0)


class TestFamilyValue:
    def test_sums_children_and_filters_by_labels(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.gauge("depth", queue="a").set(3.0)
        registry.gauge("depth", queue="b").set(4.0)
        assert registry.family_value("depth") == pytest.approx(7.0)
        assert registry.family_value("depth", queue="a") == pytest.approx(3.0)
        assert registry.family_value("depth", queue="zz") == 0.0

    def test_unknown_and_histogram_families_read_zero(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.histogram("latency").observe(5.0)
        assert registry.family_value("latency") == 0.0
        assert registry.family_value("nope") == 0.0


class TestFlightRecorder:
    def make_system(self):
        from repro.workloads.protein import build_protein_lab

        lab = build_protein_lab(clock=ManualClock(), watch=True)
        return lab, lab.engine, lab.obs, lab.obs.watcher

    def test_unknown_workflow_is_structured_not_found(self):
        __, __, __, watcher = self.make_system()
        timeline = watcher.recorder.timeline(424242)
        assert timeline == {"found": False, "workflow_id": 424242}
        assert watcher.recorder.summary(424242)["found"] is False
        assert "not found" in watcher.recorder.render_text(424242)

    def test_timeline_merges_audit_and_spans_in_order(self):
        __, engine, hub, watcher = self.make_system()
        workflow = engine.start_workflow("protein_creation")
        workflow_id = workflow["workflow_id"]
        timeline = watcher.recorder.timeline(workflow_id)
        assert timeline["found"] is True
        assert timeline["pattern"] == "protein_creation"
        assert timeline["events"], "started workflow must have audit events"
        keys = [
            (event["ts"], {"audit": 0, "span": 1, "dlq": 2}[event["source"]])
            for event in timeline["events"]
            if event["ts"] is not None
        ]
        assert keys == sorted(keys)
        summary = watcher.recorder.summary(workflow_id)
        assert summary["audit_records"] == len(
            [e for e in timeline["events"] if e["source"] == "audit"]
        )
        text = watcher.recorder.render_text(workflow_id)
        assert f"workflow {workflow_id}" in text

    def test_install_watch_is_idempotent_per_hub(self):
        from repro.obs.watch import install_watch

        __, __, hub, watcher = self.make_system()
        assert install_watch(hub) is watcher
