"""Metrics registry: instruments, quantiles, exposition, collectors."""

from __future__ import annotations

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates_and_rejects_negatives(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_same_labels_return_same_child(self):
        registry = MetricsRegistry()
        a = registry.counter("reads_total", table="Experiment")
        b = registry.counter("reads_total", table="Experiment")
        c = registry.counter("reads_total", table="Sample")
        assert a is b
        assert a is not c

    def test_kind_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="counter"):
            registry.gauge("x")

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.dec(3)
        gauge.inc()
        assert gauge.value == 8


class TestHistogram:
    def test_quantiles_nearest_rank(self):
        histogram = Histogram()
        for value in range(1, 101):  # 1..100
            histogram.observe(float(value))
        assert histogram.quantile(0.5) == 50.0
        assert histogram.quantile(0.95) == 95.0
        assert histogram.quantile(0.99) == 99.0
        assert histogram.count == 100
        assert histogram.sum == sum(range(1, 101))

    def test_quantile_of_empty_is_zero(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_reservoir_is_bounded_but_count_is_not(self):
        histogram = Histogram(reservoir_size=10)
        for value in range(100):
            histogram.observe(float(value))
        assert histogram.count == 100
        # Only the most recent observations remain for quantiles.
        assert histogram.quantile(0.5) >= 90.0

    def test_summary_keys(self):
        histogram = Histogram()
        histogram.observe(3.0)
        assert set(histogram.summary()) == {"count", "sum", "p50", "p95", "p99"}

    def test_family_quantile_aggregates_across_labels(self):
        registry = MetricsRegistry()
        registry.histogram("latency_ms", path="/a").observe(1.0)
        registry.histogram("latency_ms", path="/b").observe(9.0)
        assert registry.family_quantile("latency_ms", 0.99) == 9.0
        assert registry.family_quantile("latency_ms", 0.5) == 1.0
        assert registry.family_quantile("missing", 0.5) == 0.0


class TestFamilyQuantile:
    def test_aggregates_across_many_label_sets(self):
        registry = MetricsRegistry()
        # 1..100 spread over four label sets: the family-wide quantiles
        # must match a single histogram over the union.
        for value in range(1, 101):
            registry.histogram("latency_ms", path=f"/p{value % 4}").observe(
                float(value)
            )
        assert registry.family_quantile("latency_ms", 0.5) == 50.0
        assert registry.family_quantile("latency_ms", 0.95) == 95.0
        assert registry.family_quantile("latency_ms", 0.99) == 99.0

    def test_empty_family_and_wrong_kind_return_zero(self):
        registry = MetricsRegistry()
        assert registry.family_quantile("never_created", 0.5) == 0.0
        registry.counter("a_counter").inc()
        assert registry.family_quantile("a_counter", 0.5) == 0.0
        # A histogram family with no observations yet.
        registry.histogram("empty_ms", path="/a")
        assert registry.family_quantile("empty_ms", 0.99) == 0.0

    def test_aggregate_quantile_merges_disjoint_reservoirs(self):
        registry = MetricsRegistry()
        # /fast holds the low half, /slow the high half; neither child
        # alone sees the true family median.
        for value in range(1, 51):
            registry.histogram("mixed_ms", path="/fast").observe(float(value))
        for value in range(51, 101):
            registry.histogram("mixed_ms", path="/slow").observe(float(value))
        fast = registry.histogram("mixed_ms", path="/fast")
        slow = registry.histogram("mixed_ms", path="/slow")
        assert fast.quantile(0.99) <= 50.0
        assert slow.quantile(0.5) >= 75.0
        assert registry.family_quantile("mixed_ms", 0.5) == 50.0
        assert registry.family_quantile("mixed_ms", 0.99) == 99.0

    def test_aggregation_respects_reservoir_eviction(self):
        registry = MetricsRegistry()
        child = registry.histogram("evict_ms", path="/a")
        child.reservoir_size = 10
        for value in range(100):
            child.observe(float(value))
        # Only the newest ten observations survive in the reservoir.
        assert registry.family_quantile("evict_ms", 0.5) >= 90.0


class TestExemplars:
    def test_observe_without_trace_id_records_no_exemplar(self):
        histogram = Histogram()
        histogram.observe(5.0)
        assert histogram.exemplars() == []

    def test_exemplars_keep_the_slowest(self):
        histogram = Histogram(exemplar_limit=3)
        for value in range(10):
            histogram.observe(float(value), trace_id=f"trace-{value}")
        kept = histogram.exemplars()
        assert [e["value"] for e in kept] == [9.0, 8.0, 7.0]
        assert kept[0]["trace_id"] == "trace-9"

    def test_snapshot_includes_exemplars_only_when_present(self):
        registry = MetricsRegistry()
        registry.histogram("h", path="/a").observe(1.0, trace_id="t-1")
        registry.histogram("h", path="/b").observe(2.0)
        snapshot = registry.snapshot()
        by_path = {
            series["labels"]["path"]: series
            for series in snapshot["h"]["series"]
        }
        assert by_path["/a"]["exemplars"] == [
            {"value": 1.0, "trace_id": "t-1"}
        ]
        assert "exemplars" not in by_path["/b"]

    def test_family_exemplars_merge_and_label(self):
        registry = MetricsRegistry()
        registry.histogram("h", path="/a").observe(1.0, trace_id="t-a")
        registry.histogram("h", path="/b").observe(9.0, trace_id="t-b")
        merged = registry.family_exemplars("h")
        assert [e["trace_id"] for e in merged] == ["t-b", "t-a"]
        assert merged[0]["labels"] == {"path": "/b"}
        assert registry.family_exemplars("missing") == []


class TestExposition:
    def test_render_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("reads_total", help="reads", table="T").inc(3)
        registry.gauge("depth", queue="q").set(2)
        text = registry.render()
        assert "# HELP reads_total reads" in text
        assert "# TYPE reads_total counter" in text
        assert 'reads_total{table="T"} 3' in text
        assert 'depth{queue="q"} 2' in text

    def test_render_histogram_as_summary_with_quantiles(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            registry.histogram("latency_ms", path="/user").observe(value)
        text = registry.render()
        assert "# TYPE latency_ms summary" in text
        assert 'latency_ms{path="/user",quantile="0.5"} 2.000000' in text
        assert 'latency_ms_count{path="/user"} 3' in text
        assert 'latency_ms_sum{path="/user"} 6.000000' in text

    def test_collectors_run_at_render_and_snapshot(self):
        registry = MetricsRegistry()
        source = {"value": 1}
        registry.add_collector(
            lambda: registry.counter("mirrored_total").set(source["value"])
        )
        assert "mirrored_total 1" in registry.render()
        source["value"] = 7
        snapshot = registry.snapshot()
        assert snapshot["mirrored_total"]["series"][0]["value"] == 7

    def test_broken_collector_does_not_break_exposition(self):
        registry = MetricsRegistry()
        registry.add_collector(lambda: 1 / 0)
        registry.counter("ok_total").inc()
        assert "ok_total 1" in registry.render()

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.histogram("h", unit="ms").observe(5.0)
        snapshot = registry.snapshot()
        [series] = snapshot["h"]["series"]
        assert series["labels"] == {"unit": "ms"}
        assert series["summary"]["count"] == 1.0
        assert series["summary"]["p50"] == 5.0
