"""Unit tests for the durable audit/provenance store (repro.obs.audit)."""

from __future__ import annotations

import pytest

from repro.core.events import EventLog
from repro.minidb.engine import Database
from repro.obs.audit import (
    AUDIT_TABLE,
    AuditStore,
    decode_record,
    install_audit_schema,
    verify_timeline,
)
from repro.obs.log import StructuredLog
from repro.obs.trace import Tracer


@pytest.fixture
def db():
    database = Database()
    install_audit_schema(database)
    return database


@pytest.fixture
def store(db):
    return AuditStore(db)


class TestSchema:
    def test_install_is_idempotent(self, db):
        assert db.has_table(AUDIT_TABLE)
        assert install_audit_schema(db) is False

    def test_schema_replays_from_wal(self, tmp_path):
        wal = tmp_path / "audit.wal"
        first = Database(wal_path=wal)
        install_audit_schema(first)
        AuditStore(first).record("task.state", workflow_id=1)
        first.close()
        reopened = Database(wal_path=wal)
        assert reopened.has_table(AUDIT_TABLE)
        assert install_audit_schema(reopened) is False
        assert reopened.count(AUDIT_TABLE) == 1


class TestRecord:
    def test_record_persists_structured_columns(self, store):
        row = store.record(
            "task.state",
            actor="engine",
            workflow_id=3,
            wftask_id=7,
            task="pcr",
            event="activate",
            state="active",
            sequence=12,
        )
        assert row["audit_id"] == 1
        stored = store.db.get(AUDIT_TABLE, 1)
        assert stored["kind"] == "task.state"
        assert stored["workflow_id"] == 3
        assert stored["state"] == "active"
        assert stored["created"] > 0

    def test_extra_fields_land_in_detail(self, store):
        store.record("task.restarted", workflow_id=1, cascade=["b", "c"])
        record = decode_record(store.db.get(AUDIT_TABLE, 1))
        assert record["detail"] == {"cascade": ["b", "c"]}

    def test_trace_context_is_stamped(self, db):
        tracer = Tracer()
        store = AuditStore(db, tracer=tracer)
        with tracer.span("request") as span:
            store.record("task.state", workflow_id=1)
        store.record("task.state", workflow_id=1)
        first, second = (decode_record(r) for r in db.select(AUDIT_TABLE))
        assert first["trace_id"] == span.trace_id
        assert second["trace_id"] is None

    def test_record_never_raises(self):
        broken = Database()  # no audit table installed
        store = AuditStore(broken)
        assert store.record("task.state") is None
        assert store.write_errors == 1

    def test_record_narrates_to_the_log(self, db):
        log = StructuredLog()
        store = AuditStore(db, log=log.logger("audit"))
        store.record("task.state", workflow_id=5)
        records = log.records(logger="audit")
        assert len(records) == 1
        assert records[0].fields["workflow_id"] == 5


class TestOnEvent:
    def test_engine_events_become_rows(self, store):
        events = EventLog()
        events.subscribe(store.on_event)
        events.emit(
            "task.state",
            workflow_id=1,
            wftask_id=2,
            task="pcr",
            event="activate",
            state="active",
        )
        record = decode_record(store.db.get(AUDIT_TABLE, 1))
        assert record["kind"] == "task.state"
        assert record["wftask_id"] == 2
        assert record["task"] == "pcr"
        assert record["sequence"] == 1
        assert record["actor"] == "engine"

    def test_actor_extracted_from_payload(self, store):
        events = EventLog()
        events.subscribe(store.on_event)
        events.emit("authorization.decided", auth_id=1, decided_by="alice")
        events.emit("instance.state", experiment_id=1, agent_id=4)
        first, second = (
            decode_record(r) for r in store.db.select(AUDIT_TABLE)
        )
        assert first["actor"] == "alice"
        assert second["actor"] == "agent:4"

    def test_unstorable_payload_values_are_skipped(self, store):
        events = EventLog()
        events.subscribe(store.on_event)
        events.emit("weird", blob=object(), note="kept")
        record = decode_record(store.db.get(AUDIT_TABLE, 1))
        assert record["detail"] == {"note": "kept"}


class TestQuery:
    def seed(self, store):
        store.record("task.state", workflow_id=1, actor="engine", task="a")
        store.record("task.state", workflow_id=2, actor="engine", task="b")
        store.record("agent.dispatch", workflow_id=1, actor="robot", task="a")

    def test_filter_by_workflow(self, store):
        self.seed(store)
        total, rows = store.query(workflow_id=1)
        assert total == 2
        assert [r["kind"] for r in rows] == ["task.state", "agent.dispatch"]

    def test_filter_by_actor_and_kind(self, store):
        self.seed(store)
        total, rows = store.query(actor="robot")
        assert total == 1 and rows[0]["kind"] == "agent.dispatch"
        total, rows = store.query(kind="task.state", workflow_id=2)
        assert total == 1 and rows[0]["task"] == "b"

    def test_pagination(self, store):
        self.seed(store)
        total, page = store.query(limit=2, offset=1)
        assert total == 3
        assert [r["audit_id"] for r in page] == [2, 3]

    def test_time_range(self, store):
        self.seed(store)
        rows = store.db.select(AUDIT_TABLE, order_by="audit_id")
        middle = rows[1]["created"]
        total, page = store.query(since=middle)
        assert total >= 2
        assert all(r["created"] >= middle for r in page)

    def test_trace_filter(self, db):
        tracer = Tracer()
        store = AuditStore(db, tracer=tracer)
        with tracer.span("one") as span:
            store.record("task.state", workflow_id=1)
        store.record("task.state", workflow_id=1)
        total, rows = store.query(trace_id=span.trace_id)
        assert total == 1

    def test_timeline_returns_everything(self, store):
        for __ in range(150):
            store.record("task.state", workflow_id=9)
        assert len(store.timeline(9)) == 150
        assert store.count() == 150


class TestVerifyTimeline:
    def row(self, kind, key, event, state, audit_id=0):
        column = "wftask_id" if kind == "task.state" else "experiment_id"
        return {
            "audit_id": audit_id,
            "kind": kind,
            column: key,
            "event": event,
            "state": state,
        }

    def test_legal_sequence_passes(self):
        records = [
            self.row("task.state", 1, "become_eligible", "eligible"),
            self.row("task.state", 1, "activate", "active"),
            self.row("instance.state", 5, "delegate", "delegated"),
            self.row("instance.state", 5, "start", "active"),
            self.row("instance.state", 5, "complete", "completed"),
            self.row("task.state", 1, "complete", "completed"),
        ]
        assert verify_timeline(records) == []

    def test_restart_cycle_is_legal(self):
        records = [
            self.row("task.state", 1, "become_eligible", "eligible"),
            self.row("task.state", 1, "activate", "active"),
            self.row("task.state", 1, "complete", "completed"),
            self.row("task.state", 1, "restart", "created"),
            self.row("task.state", 1, "become_eligible", "eligible"),
        ]
        assert verify_timeline(records) == []

    def test_lost_row_is_detected(self):
        records = [
            self.row("task.state", 1, "become_eligible", "eligible"),
            # the activate row was lost
            self.row("task.state", 1, "complete", "completed"),
        ]
        assert verify_timeline(records)

    def test_duplicated_row_is_detected(self):
        records = [
            self.row("task.state", 1, "become_eligible", "eligible"),
            self.row("task.state", 1, "become_eligible", "eligible"),
        ]
        assert verify_timeline(records)

    def test_incomplete_row_is_reported(self):
        assert verify_timeline(
            [{"audit_id": 9, "kind": "task.state", "event": None, "state": None}]
        )

    def test_other_kinds_are_ignored(self):
        assert verify_timeline(
            [{"audit_id": 1, "kind": "agent.dispatch"}]
        ) == []
