"""Unit tests for the structured logging layer (repro.obs.log)."""

from __future__ import annotations

import json

from repro.obs.log import LEVELS, LogRecord, StructuredLog, level_number
from repro.obs.trace import Tracer


class TestLevels:
    def test_ordering(self):
        assert (
            LEVELS["debug"] < LEVELS["info"] < LEVELS["warning"] < LEVELS["error"]
        )

    def test_level_number(self):
        assert level_number("warning") == LEVELS["warning"]


class TestEmission:
    def test_records_are_buffered_in_order(self):
        log = StructuredLog()
        log.log("info", "engine", "first")
        log.log("info", "engine", "second")
        messages = [r.message for r in log.records()]
        assert messages == ["first", "second"]

    def test_sequence_is_monotonic(self):
        log = StructuredLog()
        first = log.log("info", "a", "x")
        second = log.log("info", "b", "y")
        assert second.sequence == first.sequence + 1

    def test_fields_are_kept(self):
        log = StructuredLog()
        record = log.log("info", "engine", "started", workflow_id=7)
        assert record.fields == {"workflow_id": 7}
        assert record.to_dict()["workflow_id"] == 7

    def test_level_filter_suppresses_below_threshold(self):
        log = StructuredLog(level="warning")
        assert log.log("debug", "engine", "noise") is None
        assert log.log("warning", "engine", "real") is not None
        assert log.suppressed == 1
        assert len(log.records()) == 1

    def test_set_level(self):
        log = StructuredLog()
        log.set_level("error")
        assert log.log("info", "x", "dropped") is None
        log.set_level("debug")
        assert log.log("info", "x", "kept") is not None

    def test_unknown_level_never_raises(self):
        log = StructuredLog()
        assert log.log("verbose", "x", "?") is None

    def test_ring_buffer_drops_oldest(self):
        log = StructuredLog(capacity=3)
        for i in range(5):
            log.log("info", "x", f"m{i}")
        assert [r.message for r in log.records()] == ["m2", "m3", "m4"]
        assert log.dropped == 2
        assert log.emitted == 5


class TestTraceCorrelation:
    def test_active_span_is_stamped(self):
        tracer = Tracer()
        log = StructuredLog(tracer=tracer)
        with tracer.span("request") as span:
            record = log.log("info", "engine", "inside")
        outside = log.log("info", "engine", "outside")
        assert record.trace_id == span.trace_id
        assert record.span_id == span.span_id
        assert outside.trace_id is None

    def test_records_filterable_by_trace(self):
        tracer = Tracer()
        log = StructuredLog(tracer=tracer)
        with tracer.span("a") as span:
            log.log("info", "x", "in-trace")
        log.log("info", "x", "no-trace")
        selected = log.records(trace_id=span.trace_id)
        assert [r.message for r in selected] == ["in-trace"]


class TestSubscribers:
    def test_subscribers_see_admitted_records(self):
        log = StructuredLog(level="info")
        seen = []
        log.subscribe(seen.append)
        log.log("debug", "x", "hidden")
        log.log("info", "x", "shown")
        assert [r.message for r in seen] == ["shown"]

    def test_subscriber_exceptions_are_swallowed(self):
        log = StructuredLog()

        def bad(record):
            raise RuntimeError("boom")

        log.subscribe(bad)
        assert log.log("info", "x", "survives") is not None

    def test_unsubscribe(self):
        log = StructuredLog()
        seen = []
        log.subscribe(seen.append)
        log.unsubscribe(seen.append)
        log.log("info", "x", "quiet")
        assert seen == []


class TestQueries:
    def test_minimum_level_filter(self):
        log = StructuredLog()
        log.log("debug", "x", "d")
        log.log("warning", "x", "w")
        log.log("error", "x", "e")
        assert [r.message for r in log.records(level="warning")] == ["w", "e"]

    def test_logger_filter_and_limit(self):
        log = StructuredLog()
        for i in range(4):
            log.log("info", "engine" if i % 2 else "broker", f"m{i}")
        engine = log.records(logger="engine", limit=1)
        assert [r.message for r in engine] == ["m3"]

    def test_tail(self):
        log = StructuredLog()
        for i in range(5):
            log.log("info", "x", f"m{i}")
        assert [r.message for r in log.tail(2)] == ["m3", "m4"]

    def test_render_is_json_lines(self):
        log = StructuredLog()
        log.log("info", "x", "one", n=1)
        log.log("info", "x", "two", n=2)
        lines = log.render().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert [p["message"] for p in parsed] == ["one", "two"]
        assert parsed[0]["n"] == 1

    def test_clear_keeps_counters(self):
        log = StructuredLog()
        log.log("info", "x", "m")
        log.clear()
        assert log.records() == []
        assert log.emitted == 1
        assert log.log("info", "x", "m2").sequence == 2


class TestBoundLogger:
    def test_methods_map_to_levels(self):
        log = StructuredLog()
        engine = log.logger("engine")
        engine.debug("d")
        engine.info("i")
        engine.warning("w")
        engine.error("e")
        assert [r.level for r in log.records()] == [
            "debug",
            "info",
            "warning",
            "error",
        ]
        assert {r.logger for r in log.records()} == {"engine"}


class TestLogRecord:
    def test_to_dict_omits_absent_trace(self):
        record = LogRecord(
            ts=1.0, level="info", logger="x", message="m", sequence=1
        )
        assert "trace_id" not in record.to_dict()

    def test_to_json_handles_unserialisable_fields(self):
        record = LogRecord(
            ts=1.0,
            level="info",
            logger="x",
            message="m",
            sequence=1,
            fields={"obj": object()},
        )
        assert "obj" in json.loads(record.to_json())
