"""Runtime lock-order witness: every divergence kind, plus the seams.

The unit tests hand the witness a synthetic :class:`StaticOrder` so each
divergence kind (mutual, never-nested, inverted, unpredicted) can be
provoked deterministically; the integration tests hook it into real
:class:`ProfiledLock` wrappers and a full protein-lab run.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis.concurrency import StaticOrder
from repro.obs.prof import LockProfiler, ProfiledLock
from repro.obs.prof.witness import LockOrderWitness, normalize_lock_name
from repro.resilience.clock import ManualClock


def make_witness(
    edges=frozenset(), groups=()
) -> LockOrderWitness:
    return LockOrderWitness(
        order=StaticOrder(edges=set(edges), groups=[set(g) for g in groups])
    )


def nest(witness: LockOrderWitness, *names: str) -> None:
    """Acquire ``names`` in order, then release them LIFO."""
    for name in names:
        witness.on_acquire(name)
    for name in reversed(names):
        witness.on_release(name)


class TestNormalization:
    def test_per_queue_names_collapse(self):
        assert normalize_lock_name("broker.queue.engine") == "broker.queue.*"
        assert normalize_lock_name("broker.queue.agent.7") == "broker.queue.*"

    def test_other_names_pass_through(self):
        assert normalize_lock_name("minidb.mutex") == "minidb.mutex"
        assert normalize_lock_name("broker.registry") == "broker.registry"


class TestVerdicts:
    def test_predicted_order_is_clean(self):
        witness = make_witness(edges={("minidb.mutex", "broker.registry")})
        nest(witness, "minidb.mutex", "broker.registry")
        report = witness.check()
        assert report.ok
        assert report.acquisitions == 2
        assert report.max_depth == 2
        [pair] = report.observed_pairs
        assert (pair["held"], pair["acquired"]) == (
            "minidb.mutex", "broker.registry"
        )

    def test_inverted_order_diverges(self):
        witness = make_witness(edges={("minidb.mutex", "broker.registry")})
        nest(witness, "broker.registry", "minidb.mutex")
        [divergence] = witness.check().divergences
        assert divergence.kind == "inverted"

    def test_both_orders_is_a_mutual_divergence(self):
        witness = make_witness(edges={("minidb.mutex", "broker.registry")})
        nest(witness, "minidb.mutex", "broker.registry")
        nest(witness, "broker.registry", "minidb.mutex")
        kinds = sorted(d.kind for d in witness.check().divergences)
        # Reported once, not once per direction; the inversion of the
        # static edge is also called out.
        assert kinds == ["inverted", "mutual"]

    def test_never_nested_group_diverges(self):
        witness = make_witness(groups=[{"broker.registry", "broker.queue.*"}])
        nest(witness, "broker.registry", "broker.queue.colonies")
        [divergence] = witness.check().divergences
        assert divergence.kind == "never-nested"
        assert "broker.queue.colonies" in divergence.detail

    def test_two_queue_conditions_normalize_into_the_group(self):
        # Two *different* per-queue locks collapse onto the same static
        # node — nesting them is still a never-nested violation.
        witness = make_witness(groups=[{"broker.registry", "broker.queue.*"}])
        nest(witness, "broker.queue.a", "broker.queue.b")
        [divergence] = witness.check().divergences
        assert divergence.kind == "never-nested"

    def test_unpredicted_pair_of_known_locks_diverges(self):
        witness = make_witness(edges={("minidb.mutex", "broker.registry")})
        nest(witness, "minidb.mutex", "broker.queue.x")
        [divergence] = witness.check().divergences
        assert divergence.kind == "unpredicted"

    def test_unknown_locks_are_recorded_but_not_judged(self):
        witness = make_witness(edges={("minidb.mutex", "broker.registry")})
        nest(witness, "custom.a", "custom.b")
        report = witness.check()
        assert report.ok
        assert len(report.observed_pairs) == 1

    def test_unknown_mutual_inversion_is_still_a_divergence(self):
        # Locks outside the witnessed namespace carry no static
        # prediction, but observing both orders is wrong regardless.
        witness = make_witness()
        nest(witness, "custom.a", "custom.b")
        nest(witness, "custom.b", "custom.a")
        [divergence] = witness.check().divergences
        assert divergence.kind == "mutual"

    def test_per_thread_stacks_do_not_cross(self):
        witness = make_witness(edges={("minidb.mutex", "broker.registry")})
        witness.on_acquire("minidb.mutex")

        def other():
            nest(witness, "broker.registry")

        thread = threading.Thread(target=other)
        thread.start()
        thread.join()
        witness.on_release("minidb.mutex")
        report = witness.check()
        assert report.observed_pairs == []
        assert report.acquisitions == 2


class TestProfiledLockHook:
    def test_nested_profiled_locks_report_the_pair(self):
        witness = make_witness(edges={("outer", "inner")})
        clock = ManualClock()
        outer = ProfiledLock("outer", threading.Lock(), clock, witness)
        inner = ProfiledLock("inner", threading.Lock(), clock, witness)
        with outer, inner:
            pass
        report = witness.check()
        assert report.ok
        [pair] = report.observed_pairs
        assert (pair["held"], pair["acquired"]) == ("outer", "inner")

    def test_reentrant_hold_is_one_outermost_acquisition(self):
        witness = make_witness()
        clock = ManualClock()
        lock = ProfiledLock("re", threading.RLock(), clock, witness)
        with lock:
            with lock:
                pass
        report = witness.check()
        assert report.acquisitions == 1
        assert report.observed_pairs == []

    def test_lock_profiler_threads_witness_through_wrap(self):
        witness = make_witness()
        profiler = LockProfiler(witness=witness)
        lock = profiler.wrap("wrapped", threading.Lock())
        with lock:
            pass
        assert witness.check().acquisitions == 1


class TestDefaultOrder:
    def test_default_order_comes_from_the_installed_tree(self):
        witness = LockOrderWitness()
        # The broker pair is never-nested in the installed tree, so
        # nesting them must diverge with no hand-built order at all.
        nest(witness, "broker.registry", "broker.queue.engine")
        kinds = [d.kind for d in witness.check().divergences]
        assert kinds == ["never-nested"]


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def lab(self):
        from repro.workloads.protein import build_protein_lab

        lab = build_protein_lab(profiling=True, witness=True)
        for __ in range(3):
            response = lab.app.post(
                "/user", workflow_action="start", pattern="protein_creation"
            )
            assert response.ok
            lab.run_messages()
        return lab

    def test_live_lab_matches_the_static_graph(self, lab):
        report = lab.obs.profiler.witness.check()
        assert report.ok, report.render_text()
        assert report.acquisitions > 0

    def test_witness_verdict_joins_the_profile_report(self, lab):
        profile = lab.obs.profiler.report()
        assert profile["lock_order"]["ok"] is True
        assert profile["lock_order"]["acquisitions"] > 0
        text = lab.obs.profiler.render_text()
        assert "lock-order witness" in text
