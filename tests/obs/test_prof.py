"""Profiling layer: attribution, lock contention, retention, SLO burn.

The attribution tests drive a :class:`ManualClock` so every span
duration is exact and the "stages sum to the root duration" invariant
can be asserted to the millisecond.  The end-to-end class runs the real
protein workload with profiling on and checks the acceptance loop:
a histogram tail exemplar's trace id resolves to a retained span tree.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.messaging.broker import MessageBroker
from repro.obs import ObservabilityHub
from repro.obs.prof import (
    CriticalPathAnalyzer,
    LockProfiler,
    ProfiledLock,
    SLOPolicy,
    SLOTracker,
    SlowTraceRetainer,
    StackSampler,
    install_profiling,
)
from repro.resilience.clock import ManualClock, SystemClock


def _build_sync_trace(hub: ObservabilityHub, clock: ManualClock):
    """One request trace with known stage durations (all in ms):

    root http.request (10) > filter.process (8) > engine.start (5)
    > db.commit (3); exclusive times: filter 3, engine.dispatch 2,
    db.commit 3, other 2.
    """
    tracer = hub.tracer
    root = tracer.start_span("http.request", path="/user")
    clock.advance(0.001)
    flt = tracer.start_span(
        "filter.process", pattern="protein_creation"
    )
    clock.advance(0.002)
    engine = tracer.start_span("engine.start")
    clock.advance(0.005)
    tracer.record(
        "db.commit",
        trace_id=root.trace_id,
        parent_id=engine.span_id,
        duration_ms=3.0,
    )
    tracer.end_span(engine)
    clock.advance(0.001)
    tracer.end_span(flt)
    clock.advance(0.001)
    tracer.end_span(root)
    return root


class TestAttribution:
    def test_sync_stages_sum_exactly_to_the_root_duration(self):
        clock = ManualClock()
        hub = ObservabilityHub(clock=clock)
        root = _build_sync_trace(hub, clock)
        analyzer = CriticalPathAnalyzer(hub.exporter)
        attribution = analyzer.attribute(root.trace_id)
        assert attribution is not None
        assert attribution.total_ms == pytest.approx(10.0)
        assert attribution.stages["filter"] == pytest.approx(3.0)
        assert attribution.stages["engine.dispatch"] == pytest.approx(2.0)
        assert attribution.stages["db.commit"] == pytest.approx(3.0)
        assert attribution.stages["other"] == pytest.approx(2.0)
        assert sum(attribution.stages.values()) == pytest.approx(
            attribution.total_ms
        )

    def test_pattern_extracted_from_span_attributes(self):
        clock = ManualClock()
        hub = ObservabilityHub(clock=clock)
        root = _build_sync_trace(hub, clock)
        attribution = CriticalPathAnalyzer(hub.exporter).attribute(
            root.trace_id
        )
        assert attribution.pattern == "protein_creation"

    def test_async_pipeline_stages_stay_out_of_the_sync_total(self):
        clock = ManualClock()
        hub = ObservabilityHub(clock=clock)
        root = _build_sync_trace(hub, clock)
        # Post-response pipeline: queue wait, agent run, pump apply.
        hub.tracer.record(
            "broker.deliver",
            trace_id=root.trace_id,
            parent_id=root.span_id,
            duration_ms=4.0,
        )
        hub.tracer.record(
            "agent.handle",
            trace_id=root.trace_id,
            parent_id=root.span_id,
            duration_ms=6.0,
        )
        hub.tracer.record(
            "engine.apply_message",
            trace_id=root.trace_id,
            parent_id=root.span_id,
            duration_ms=2.0,
        )
        attribution = CriticalPathAnalyzer(hub.exporter).attribute(
            root.trace_id
        )
        assert attribution.async_stages == {
            "queue.wait": pytest.approx(4.0),
            "agent.exec": pytest.approx(6.0),
            "engine.apply": pytest.approx(2.0),
        }
        # engine.apply_message must not be misfiled under engine.dispatch,
        # and async spans must not inflate the sync decomposition.
        assert sum(attribution.stages.values()) == pytest.approx(
            attribution.total_ms
        )

    def test_event_annotations_do_not_contribute_to_stages(self):
        clock = ManualClock()
        hub = ObservabilityHub(clock=clock)
        tracer = hub.tracer
        root = tracer.start_span("http.request")
        clock.advance(0.004)
        tracer.record(
            "event.task.state",
            trace_id=root.trace_id,
            parent_id=root.span_id,
            duration_ms=0.0,
        )
        tracer.end_span(root)
        attribution = CriticalPathAnalyzer(hub.exporter).attribute(
            root.trace_id
        )
        assert attribution.stages["other"] == pytest.approx(4.0)
        assert attribution.stages["filter"] == 0.0

    def test_trace_without_http_root_is_not_attributable(self):
        clock = ManualClock()
        hub = ObservabilityHub(clock=clock)
        with hub.span("background.job") as span:
            clock.advance(0.002)
        analyzer = CriticalPathAnalyzer(hub.exporter)
        assert analyzer.attribute(span.trace_id) is None
        assert analyzer.attribute_all() == []

    def test_critical_path_follows_the_latest_ending_child(self):
        clock = ManualClock()
        hub = ObservabilityHub(clock=clock)
        root = _build_sync_trace(hub, clock)
        attribution = CriticalPathAnalyzer(hub.exporter).attribute(
            root.trace_id
        )
        # db.commit was recorded at the engine span's end and outlives
        # it on the timeline, so the path descends all the way into it.
        assert [name for name, __ in attribution.critical_path] == [
            "http.request",
            "filter.process",
            "engine.start",
            "db.commit",
        ]

    def test_aggregate_groups_by_pattern_and_keeps_the_slowest(self):
        clock = ManualClock()
        hub = ObservabilityHub(clock=clock)
        tracer = hub.tracer
        slow = _build_sync_trace(hub, clock)
        fast = tracer.start_span("http.request")
        clock.advance(0.002)
        tracer.end_span(fast)
        analyzer = CriticalPathAnalyzer(hub.exporter)
        aggregated = analyzer.aggregate(analyzer.attribute_all())
        assert set(aggregated) == {"protein_creation", "(none)"}
        pattern = aggregated["protein_creation"]
        assert pattern["traces"] == 1
        assert pattern["slowest_trace_id"] == slow.trace_id
        assert pattern["mean_total_ms"] == pytest.approx(10.0)
        assert aggregated["(none)"]["mean_total_ms"] == pytest.approx(2.0)


class TestProfiledLock:
    def test_uncontended_acquire_records_hold_but_no_wait(self):
        lock = ProfiledLock("t", threading.Lock(), SystemClock())
        with lock:
            pass
        assert lock.acquisitions == 1
        assert lock.contended == 0
        assert lock.wait_hist.count == 0
        assert lock.hold_hist.count == 1
        [holder] = lock.summary()["holders"]
        assert holder["site"].startswith("test_prof.py:")
        assert holder["share"] == pytest.approx(1.0)

    def test_contended_acquire_measures_the_wait(self):
        lock = ProfiledLock("t", threading.Lock(), SystemClock())
        entered = threading.Event()

        def worker() -> None:
            entered.set()
            with lock:
                pass

        with lock:
            thread = threading.Thread(target=worker)
            thread.start()
            entered.wait()
            time.sleep(0.02)  # let the worker block on the inner lock
        thread.join()
        assert lock.acquisitions == 2
        assert lock.contended == 1
        assert lock.wait_hist.count == 1
        assert lock.wait_hist.sum > 0.0

    def test_reentrant_hold_counts_as_one_acquisition(self):
        lock = ProfiledLock("t", threading.RLock(), SystemClock())
        with lock:
            with lock:
                assert lock._is_owned()
        assert lock.acquisitions == 1
        assert lock.hold_hist.count == 1
        assert not lock._is_owned()

    def test_nonblocking_failure_leaves_no_stats(self):
        inner = threading.Lock()
        lock = ProfiledLock("t", inner, SystemClock())
        inner.acquire()
        try:
            assert lock.acquire(blocking=False) is False
        finally:
            inner.release()
        assert lock.acquisitions == 0
        assert lock.wait_hist.count == 0

    def test_condition_over_profiled_lock_keeps_owner_semantics(self):
        profiler = LockProfiler()
        lock = profiler.wrap("broker.queue.q", threading.Lock())
        condition = threading.Condition(lock)
        with pytest.raises(RuntimeError):
            condition.notify()  # not owned -> Condition consults _is_owned
        ready = []

        def consumer() -> None:
            with condition:
                while not ready:
                    condition.wait(timeout=2.0)

        thread = threading.Thread(target=consumer)
        thread.start()
        time.sleep(0.01)
        with condition:
            ready.append(True)
            condition.notify()
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        # The wait cycle released and reacquired through the wrapper.
        assert lock.acquisitions >= 2
        assert lock.hold_hist.count >= 2

    def test_profiler_report_sorts_by_wait_then_hold(self):
        profiler = LockProfiler(clock=SystemClock())
        quiet = profiler.wrap("quiet", threading.Lock())
        busy = profiler.wrap("busy", threading.Lock())
        with quiet:
            pass
        entered = threading.Event()

        def worker() -> None:
            entered.set()
            with busy:
                pass

        with busy:
            thread = threading.Thread(target=worker)
            thread.start()
            entered.wait()
            time.sleep(0.02)
        thread.join()
        report = profiler.report()
        assert [entry["name"] for entry in report] == ["busy", "quiet"]
        assert report[0]["contention_rate"] == pytest.approx(0.5)


class TestSlowTraceRetainer:
    def _trace(self, hub: ObservabilityHub, clock: ManualClock) -> str:
        span = hub.tracer.start_span("http.request")
        clock.advance(0.001)
        hub.tracer.end_span(span)
        return span.trace_id

    def test_keeps_only_the_slowest_per_operation(self):
        clock = ManualClock()
        hub = ObservabilityHub(clock=clock)
        retainer = SlowTraceRetainer(hub.exporter, per_operation=2)
        ids = [self._trace(hub, clock) for __ in range(3)]
        assert retainer.offer("start", 5.0, ids[0]) is True
        assert retainer.offer("start", 9.0, ids[1]) is True
        # Faster than both retained entries: rejected without a snapshot.
        assert retainer.offer("start", 1.0, ids[2]) is False
        entries = retainer.slowest("start")
        assert [e["duration_ms"] for e in entries] == [9.0, 5.0]
        assert retainer.operations() == ["start"]

    def test_a_slower_trace_evicts_the_fastest_retained(self):
        clock = ManualClock()
        hub = ObservabilityHub(clock=clock)
        retainer = SlowTraceRetainer(hub.exporter, per_operation=2)
        ids = [self._trace(hub, clock) for __ in range(3)]
        retainer.offer("start", 5.0, ids[0])
        retainer.offer("start", 9.0, ids[1])
        assert retainer.offer("start", 7.0, ids[2]) is True
        assert [e["trace_id"] for e in retainer.slowest("start")] == [
            ids[1],
            ids[2],
        ]
        assert retainer.tree(ids[0]) is None

    def test_retained_tree_survives_tracer_ring_eviction(self):
        clock = ManualClock()
        hub = ObservabilityHub(clock=clock)
        retainer = SlowTraceRetainer(hub.exporter)
        trace_id = self._trace(hub, clock)
        retainer.offer("start", 4.0, trace_id)
        hub.tracer.clear()  # the ring moves on; the snapshot must not
        tree = retainer.tree(trace_id)
        assert tree is not None
        assert tree[0]["name"] == "http.request"
        report = retainer.report()
        assert report["start"][0]["spans"] == 1

    def test_traceless_offers_are_ignored(self):
        hub = ObservabilityHub()
        retainer = SlowTraceRetainer(hub.exporter)
        assert retainer.offer("start", 100.0, None) is False
        assert retainer.report() == {}


class TestSLOTracker:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SLOPolicy(operation="x", threshold_ms=0.0)
        with pytest.raises(ValueError):
            SLOPolicy(operation="x", threshold_ms=5.0, objective=1.0)
        with pytest.raises(ValueError):
            SLOPolicy(operation="x", threshold_ms=5.0, window=0)

    def test_burn_rate_over_a_sliding_window(self):
        tracker = SLOTracker(
            policies=[
                SLOPolicy(
                    operation="start",
                    threshold_ms=10.0,
                    objective=0.9,
                    window=10,
                )
            ]
        )
        for __ in range(8):
            tracker.observe("start", 5.0)
        tracker.observe("start", 50.0)
        tracker.observe("start", 50.0)
        status = tracker.report()["start"]
        assert status["violations"] == 2
        assert status["violation_rate"] == pytest.approx(0.2)
        # Budget is 10% of the window; two violations burn it 2x over.
        assert status["burn_rate"] == pytest.approx(2.0)
        assert status["budget_remaining"] == 0
        assert status["ok"] is False
        health = tracker.health()
        assert health["status"] == "degraded"
        assert health["burning"] == ["start"]

    def test_within_budget_is_ok(self):
        tracker = SLOTracker(
            policies=[
                SLOPolicy(
                    operation="start",
                    threshold_ms=10.0,
                    objective=0.5,
                    window=10,
                )
            ]
        )
        for value in (1.0, 2.0, 50.0, 3.0):
            tracker.observe("start", value)
        status = tracker.report()["start"]
        assert status["ok"] is True
        assert tracker.health()["status"] == "ok"

    def test_unknown_operation_is_a_no_op(self):
        tracker = SLOTracker()
        tracker.observe("nothing", 1.0)
        assert tracker.report() == {}


class TestStackSampler:
    def test_sample_once_captures_this_thread(self):
        sampler = StackSampler()
        seen = sampler.sample_once()
        assert seen >= 1
        report = sampler.report()
        assert report["samples"] == 1
        assert report["distinct_stacks"] >= 1
        [stack, count] = report["hottest"][0]["stack"], report["hottest"][0][
            "count"
        ]
        assert count >= 1
        assert "test_prof.py:" in stack

    def test_collapsed_output_format(self):
        sampler = StackSampler()
        sampler.sample_once()
        line = sampler.collapsed(limit=1)
        stack, count = line.rsplit(" ", 1)
        assert int(count) >= 1
        assert ";" in stack or ":" in stack

    def test_start_stop_idempotent(self):
        sampler = StackSampler(interval_s=0.001)
        sampler.start()
        sampler.start()
        assert sampler.running
        sampler.stop()
        sampler.stop()
        assert not sampler.running

    def test_clear_resets_counts(self):
        sampler = StackSampler()
        sampler.sample_once()
        sampler.clear()
        assert sampler.report()["samples"] == 0
        assert sampler.collapsed() == ""


class TestUntimedDeliveries:
    def test_redelivered_messages_counted_by_reason(self):
        hub = ObservabilityHub()
        broker = MessageBroker()
        hub.watch_broker(broker)
        broker.declare_queue("q")
        broker.send("q", "body")
        message = broker.receive("q")  # timed: send timestamp consumed
        broker.requeue(message)
        broker.receive("q")  # second delivery has no timestamp left
        snapshot = hub.registry.snapshot()
        [series] = snapshot["broker_deliveries_untimed"]["series"]
        assert series["labels"] == {"reason": "redelivered"}
        assert series["value"] == 1

    def test_recovered_messages_counted_by_reason(self):
        broker = MessageBroker()
        broker.declare_queue("q")
        broker.send("q", "body")  # sent before any observer existed
        hub = ObservabilityHub()
        hub.watch_broker(broker)
        broker.receive("q")
        snapshot = hub.registry.snapshot()
        [series] = snapshot["broker_deliveries_untimed"]["series"]
        assert series["labels"] == {"reason": "recovered"}
        assert series["value"] == 1


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def lab(self):
        from repro.workloads.protein import build_protein_lab

        lab = build_protein_lab(
            profiling=True,
            slos=(
                SLOPolicy(
                    operation="protein_creation",
                    threshold_ms=10_000.0,
                    objective=0.9,
                    window=20,
                ),
            ),
        )
        for __ in range(5):
            response = lab.app.post(
                "/user", workflow_action="start", pattern="protein_creation"
            )
            assert response.ok
            lab.run_messages()
        return lab

    def test_exemplar_links_tail_observation_to_retained_tree(self, lab):
        profiler = lab.obs.profiler
        exemplars = lab.obs.registry.family_exemplars(
            "http_request_latency_ms"
        )
        assert exemplars, "profiling must record request exemplars"
        # The slowest request's exemplar resolves to a full span tree in
        # the retainer — histogram tail to trace, the acceptance loop.
        slowest = exemplars[0]
        tree = profiler.retainer.tree(slowest["trace_id"])
        assert tree is not None
        names = set()
        stack = list(tree)
        while stack:
            node = stack.pop()
            names.add(node["name"])
            stack.extend(node["children"])
        assert "http.request" in names
        assert "filter.process" in names

    def test_attribution_stages_sum_close_to_measured_total(self, lab):
        aggregated = lab.obs.profiler.attribution()
        agg = aggregated["protein_creation"]
        assert agg["traces"] >= 5
        total = agg["mean_total_ms"]
        accounted = sum(agg["stages"].values())
        assert total > 0
        assert abs(accounted - total) <= 0.1 * total

    def test_lock_and_slo_sections_populated(self, lab):
        report = lab.obs.profiler.report()
        lock_names = {entry["name"] for entry in report["locks"]}
        assert "minidb.mutex" in lock_names
        assert "broker.registry" in lock_names
        assert any(name.startswith("broker.queue.") for name in lock_names)
        minidb = next(
            entry for entry in report["locks"]
            if entry["name"] == "minidb.mutex"
        )
        assert minidb["acquisitions"] > 0
        assert minidb["holders"]
        assert report["slo"]["protein_creation"]["window_count"] >= 5

    def test_slo_health_component_does_not_gate_readiness(self, lab):
        from repro.obs.hub import READINESS_COMPONENTS, hub_readiness

        assert "slo" not in READINESS_COMPONENTS
        report = lab.obs.health_report()
        assert "slo" in report["components"]
        ready, __ = hub_readiness(lab.obs)
        assert ready is True

    def test_profile_servlet_serves_report_and_trace_view(self, lab):
        response = lab.app.get("/workflow/profile")
        assert response.ok
        body = json.loads(response.body)
        assert body["enabled"] is True
        assert "protein_creation" in body["attribution"]
        retained = lab.obs.profiler.retainer.report()
        operation = next(iter(retained))
        trace_id = retained[operation][0]["trace_id"]
        trace_view = lab.app.get(
            "/workflow/profile", view="trace", trace_id=trace_id
        )
        assert trace_view.ok
        assert json.loads(trace_view.body)["trace_id"] == trace_id
        assert lab.app.get(
            "/workflow/profile", view="trace", trace_id="nope"
        ).status == 404
        assert lab.app.get(
            "/workflow/profile", view="flamegraph"
        ).status == 404  # sampler was not started
        text = lab.app.get("/workflow/profile", format="text")
        assert text.ok
        assert "latency attribution" in text.body

    def test_install_profiling_is_idempotent(self, lab):
        first = lab.obs.profiler
        again = install_profiling(lab.obs)
        assert again is first

    def test_render_text_mentions_every_section(self, lab):
        text = lab.obs.profiler.render_text()
        assert "latency attribution" in text
        assert "lock contention" in text
        assert "SLO burn rates" in text
        assert "slowest retained traces" in text


class TestProfilingOffByDefault:
    def test_bare_hub_has_no_profiler_and_no_exemplars(self):
        hub = ObservabilityHub()
        assert hub.profiler is None
        assert hub.exemplars_enabled is False

    def test_profile_servlet_reports_disabled(self):
        from repro.obs import install_observability
        from repro.weblims import build_expdb

        app = build_expdb()
        install_observability(expdb=app)
        response = app.get("/workflow/profile")
        assert response.ok
        assert json.loads(response.body)["enabled"] is False

    def test_unprofiled_workload_records_no_exemplars(self):
        from repro.workloads.protein import build_protein_lab

        lab = build_protein_lab()
        response = lab.app.post(
            "/user", workflow_action="start", pattern="protein_creation"
        )
        assert response.ok
        lab.run_messages()
        assert lab.obs.profiler is None
        assert (
            lab.obs.registry.family_exemplars("http_request_latency_ms")
            == []
        )
