"""Tracer: nesting, propagation, ring bound, export."""

from __future__ import annotations

import json

import pytest

from repro.obs.trace import (
    PARENT_SPAN_KEY,
    TRACE_ID_KEY,
    TraceExporter,
    Tracer,
)


class TestSpans:
    def test_root_span_starts_a_trace(self):
        tracer = Tracer()
        with tracer.span("root") as span:
            assert span.trace_id
            assert span.parent_id is None
            assert not span.finished
        assert span.finished
        assert span.duration_ms >= 0.0

    def test_nested_spans_share_trace_and_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        assert tracer.current_span() is None

    def test_sibling_spans_after_exit_parent_to_outer(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("first"):
                pass
            with tracer.span("second") as second:
                assert second.parent_id == outer.span_id

    def test_exception_closes_span_with_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        [span] = tracer.finished_spans()
        assert span.error == "ValueError: boom"
        assert tracer.current_span() is None

    def test_annotate_requires_active_span(self):
        tracer = Tracer()
        assert tracer.annotate("event.lost") is None
        with tracer.span("root") as root:
            marker = tracer.annotate("event.kept", state="active")
        assert marker.trace_id == root.trace_id
        assert marker.parent_id == root.span_id
        assert marker.duration_ms == 0.0

    def test_capacity_bounds_archive(self):
        tracer = Tracer(capacity=5)
        for index in range(9):
            with tracer.span(f"s{index}"):
                pass
        spans = tracer.finished_spans()
        assert len(spans) == 5
        assert tracer.dropped == 4
        assert [span.name for span in spans] == [
            "s4", "s5", "s6", "s7", "s8",
        ]


class TestPropagation:
    def test_inject_then_extract_round_trips(self):
        tracer = Tracer()
        with tracer.span("request") as span:
            headers = tracer.inject({"kind": "task.dispatch"})
        assert headers[TRACE_ID_KEY] == span.trace_id
        assert headers[PARENT_SPAN_KEY] == span.span_id
        trace_id, parent_id = Tracer.extract(headers)
        assert (trace_id, parent_id) == (span.trace_id, span.span_id)

    def test_inject_without_active_span_is_noop(self):
        tracer = Tracer()
        assert tracer.inject({}) == {}
        assert Tracer.extract({}) == (None, None)

    def test_remote_parent_joins_the_originating_trace(self):
        tracer = Tracer()
        with tracer.span("sender") as sender:
            headers = tracer.inject({})
        trace_id, parent_id = Tracer.extract(headers)
        with tracer.span(
            "consumer", trace_id=trace_id, parent_id=parent_id
        ) as consumer:
            assert consumer.trace_id == sender.trace_id
            assert consumer.remote_parent
        assert {s.name for s in tracer.spans_for(sender.trace_id)} == {
            "sender",
            "consumer",
        }


class TestExporter:
    def test_tree_nests_children(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                tracer.annotate("event.mark")
        trace_id = tracer.trace_ids()[0]
        [root] = TraceExporter(tracer).tree(trace_id)
        assert root["name"] == "root"
        [child] = root["children"]
        assert child["name"] == "child"
        assert [grandchild["name"] for grandchild in child["children"]] == [
            "event.mark"
        ]

    def test_dump_writes_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("root", experiment=7):
            pass
        trace_id = tracer.trace_ids()[0]
        path = tmp_path / "trace.json"
        TraceExporter(tracer).dump(trace_id, path)
        data = json.loads(path.read_text())
        assert data["trace_id"] == trace_id
        assert data["spans"][0]["attributes"] == {"experiment": 7}
