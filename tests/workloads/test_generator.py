"""Synthetic lab topologies used by the ablation benchmarks."""

from __future__ import annotations

import pytest

from repro.workloads.generator import build_synthetic_lab


@pytest.fixture(scope="module")
def lab():
    return build_synthetic_lab(stages=4)


class TestChain:
    def test_chain_runs_to_completion(self, lab):
        pattern = lab.chain_pattern(3)
        workflow = lab.engine.start_workflow(pattern.name)
        assert lab.run_to_completion(workflow["workflow_id"]) == "completed"

    def test_chain_length_bounds(self, lab):
        with pytest.raises(ValueError):
            lab.chain_pattern(0)
        with pytest.raises(ValueError):
            lab.chain_pattern(99)

    def test_chain_data_flows_stage_to_stage(self, lab):
        pattern = lab.chain_pattern(2)
        workflow = lab.engine.start_workflow(pattern.name)
        lab.run_to_completion(workflow["workflow_id"])
        # Stage0 produced a Mat0 sample consumed downstream.
        mat0 = lab.app.db.select("Sample")
        assert any(row["type_name"] == "Mat0" for row in mat0)


class TestFanout:
    def test_fanout_runs_to_completion(self, lab):
        pattern = lab.fanout_pattern(3)
        workflow = lab.engine.start_workflow(pattern.name)
        assert lab.run_to_completion(workflow["workflow_id"]) == "completed"
        view = lab.engine.workflow_view(workflow["workflow_id"])
        mids = [t for name, t in view.tasks.items() if name.startswith("mid")]
        assert len(mids) == 3
        assert all(task.state == "completed" for task in mids)

    def test_fanout_width_bound(self, lab):
        with pytest.raises(ValueError):
            lab.fanout_pattern(0)

    def test_fanout_needs_three_stages(self):
        small = build_synthetic_lab(stages=2)
        with pytest.raises(ValueError):
            small.fanout_pattern(2)


class TestRetry:
    def test_retry_pattern_with_failures(self):
        flaky = build_synthetic_lab(stages=1, failure_rate=0.5, seed=3)
        pattern = flaky.retry_pattern(default_instances=6)
        workflow = flaky.engine.start_workflow(pattern.name)
        status = flaky.run_to_completion(workflow["workflow_id"])
        view = flaky.engine.workflow_view(workflow["workflow_id"])
        task = view.tasks["only"]
        assert len(task.instances) == 6
        # With 6 parallel instances at 50% failure, some fail and —
        # under this seed — at least one succeeds, completing the task.
        assert status == "completed"
        assert task.aborted_instances >= 1
        assert task.completed_instances >= 1

    def test_fresh_pattern_names_unique(self, lab):
        first = lab.chain_pattern(2)
        second = lab.chain_pattern(2)
        assert first.name != second.name
