"""The calibrated cost model and its measurement plumbing."""

from __future__ import annotations

import pytest

from repro.workloads.costmodel import CostModel, RequestCost


class TestRequestCost:
    def test_component_arithmetic(self):
        model = CostModel(
            request_overhead_ms=100.0,
            db_read_ms=10.0,
            db_write_ms=20.0,
            persistent_send_ms=50.0,
            transient_send_ms=5.0,
            email_ms=30.0,
            filter_invocation_ms=1.0,
            servlet_invocation_ms=2.0,
            engine_check_ms=3.0,
        )
        cost = RequestCost(
            db_reads=4,
            db_writes=2,
            messages_sent=3,
            persistent_sends=2,
            emails_sent=1,
            filter_invocations=2,
            servlet_invocations=1,
            engine_checks=2,
            model=model,
        )
        assert cost.db_ms == 4 * 10 + 2 * 20
        assert cost.messaging_ms == 2 * 50 + 1 * 5 + 1 * 30
        assert cost.web_cpu_ms == 2 * 1 + 1 * 2 + 2 * 3
        assert cost.overhead_ms == 100.0
        assert cost.total_ms == pytest.approx(
            100 + cost.db_ms + cost.messaging_ms + cost.web_cpu_ms
        )

    def test_breakdown_keys(self):
        cost = RequestCost()
        breakdown = cost.breakdown()
        assert set(breakdown) == {
            "overhead",
            "database",
            "messaging",
            "web_cpu",
            "audit",
            "total",
        }

    def test_defaults_follow_paper_ordering(self):
        """Per-op costs must keep DB accesses dominant over CPU and make
        persistent sends noticeable — the qualitative claims of §5.2."""
        model = CostModel()
        assert model.db_read_ms > 50 * model.filter_invocation_ms
        assert model.persistent_send_ms > model.db_write_ms
        assert model.request_overhead_ms < 500  # floor below the band top


class TestMeasureRequest:
    def test_measurement_attributes_counts(self, lab_app):
        from repro.workloads.costmodel import measure_request

        lab_app.bean.insert("Pcr", {"cycles": 1})

        def operation():
            return lab_app.get("/user", action="read", table="Pcr")

        response, cost = measure_request(
            lab_app.db, lab_app.container, None, operation
        )
        assert response.status == 200
        assert cost.db_reads >= 2  # metadata lookup + merged read
        assert cost.db_writes == 0
        assert cost.servlet_invocations == 1
        assert cost.messages_sent == 0

    def test_write_operation_counts_writes(self, lab_app):
        from repro.workloads.costmodel import measure_request

        def operation():
            return lab_app.post(
                "/user", action="insert", table="Pcr", v_cycles="5"
            )

        __, cost = measure_request(
            lab_app.db, lab_app.container, None, operation
        )
        assert cost.db_writes == 2  # Experiment + Pcr rows
        assert cost.db_reads >= 1  # metadata + constraint checks
