"""The crash-point torture harness itself (``repro.resilience.torture``).

These run reduced-size sweeps (the full battery is a CI job): every
named durability fault point is killed at its first occurrences, every
strided byte-truncation of the live tail is recovered, and the
committed-prefix invariants must hold for all of them.  One test
deliberately plants a violation to prove the harness can see one.
"""

from __future__ import annotations

from repro.resilience.torture import (
    DB_POINTS,
    JOURNAL_POINTS,
    TortureReport,
    TortureViolation,
    run_torture,
    torture_database,
    torture_journal,
    truncation_sweep_database,
    truncation_sweep_journal,
)


class TestCrashSweeps:
    def test_database_sweep_covers_every_point_cleanly(self, tmp_path):
        scenarios, violations = torture_database(tmp_path, seed=7, n_ops=18)
        assert violations == []
        # Every point in the matrix actually fired at least once.
        fired_dirs = {p.name for p in (tmp_path / "db").iterdir()}
        assert fired_dirs == set(DB_POINTS)
        assert scenarios >= len(DB_POINTS)

    def test_pinned_reader_sweep_covers_every_point_cleanly(self, tmp_path):
        """Crashes with an MVCC snapshot pinned across checkpoints and a
        GC backlog: the pinned view must never drift and recovery must
        still land on a committed prefix."""
        scenarios, violations = torture_database(
            tmp_path, seed=7, n_ops=18, pinned=True
        )
        assert violations == []
        fired_dirs = {p.name for p in (tmp_path / "db-pinned").iterdir()}
        assert fired_dirs == set(DB_POINTS)
        assert scenarios >= len(DB_POINTS)

    def test_journal_sweep_covers_every_point_cleanly(self, tmp_path):
        scenarios, violations = torture_journal(tmp_path, seed=7, n_ops=40)
        assert violations == []
        fired_dirs = {p.name for p in (tmp_path / "journal").iterdir()}
        assert fired_dirs == set(JOURNAL_POINTS)
        assert scenarios >= len(JOURNAL_POINTS)

    def test_sweeps_are_deterministic_per_seed(self, tmp_path):
        first = torture_database(tmp_path / "a", seed=11, n_ops=10)
        second = torture_database(tmp_path / "b", seed=11, n_ops=10)
        assert first[0] == second[0]
        assert first[1] == second[1] == []


class TestTruncationSweeps:
    def test_every_db_tail_offset_recovers_to_a_prefix(self, tmp_path):
        scenarios, violations = truncation_sweep_database(
            tmp_path, seed=7, n_ops=6, stride=1
        )
        assert violations == []
        assert scenarios > 100  # one per byte of the live tail

    def test_every_journal_tail_offset_recovers_to_a_prefix(self, tmp_path):
        scenarios, violations = truncation_sweep_journal(
            tmp_path, seed=7, n_ops=8, stride=1
        )
        assert violations == []
        assert scenarios > 50


class TestHarnessHonesty:
    def test_a_planted_corruption_is_reported_not_swallowed(self, tmp_path):
        """Trash a live segment *between* build and sweep: the harness
        must surface violations, proving its verdicts are live."""
        from repro.resilience import torture as torture_module

        original = torture_module._copy_store

        def sabotage(src_dir, dst_dir, stem):
            # The sweep rewrites the tail segment from pristine bytes,
            # so plant the damage in the checkpoint side file — the
            # recovery *base*, which is never salvaged or truncated.
            original(src_dir, dst_dir, stem)
            for ckpt in sorted(dst_dir.glob(stem + ".*.ckpt"))[:1]:
                raw = bytearray(ckpt.read_bytes())
                assert len(raw) > 10
                raw[10] ^= 0xFF
                ckpt.write_bytes(bytes(raw))

        torture_module._copy_store = sabotage
        try:
            __, violations = truncation_sweep_database(
                tmp_path, seed=7, n_ops=4, stride=25
            )
        finally:
            torture_module._copy_store = original
        assert violations
        assert all(v.scenario == "db.truncate" for v in violations)


class TestReport:
    def test_full_battery_report_shape(self, tmp_path):
        report = run_torture(
            tmp_path, seed=7, db_ops=6, journal_ops=12, stride=16
        )
        assert isinstance(report, TortureReport)
        assert report.ok
        payload = report.to_dict()
        assert payload["ok"] is True
        assert set(payload["scenarios"]) == {
            "db.crash",
            "db.crash.pinned",
            "journal.crash",
            "db.truncate",
            "journal.truncate",
        }
        assert payload["scenarios"]["db.crash.pinned"] > 0
        assert payload["total_scenarios"] == sum(
            payload["scenarios"].values()
        )

    def test_violation_serialises(self):
        violation = TortureViolation(
            scenario="db.crash",
            point="wal.rotate",
            occurrence=3,
            message="boom",
        )
        assert violation.to_dict()["point"] == "wal.rotate"
