"""Retry policies and the dispatch circuit breaker (no wall-clock)."""

from __future__ import annotations

import random

import pytest

from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    NO_RETRY,
    OPEN,
    STATE_CODES,
    CircuitBreaker,
    ManualClock,
    RetryPolicy,
)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_deliveries=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)

    def test_exhausted_at_cap(self):
        policy = RetryPolicy(max_deliveries=3)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)
        assert policy.exhausted(4)

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(
            base_delay_s=1.0, multiplier=2.0, max_delay_s=100.0, jitter=0.0
        )
        rng = random.Random(0)
        assert policy.backoff(1, rng) == 1.0
        assert policy.backoff(2, rng) == 2.0
        assert policy.backoff(3, rng) == 4.0

    def test_backoff_clamped_to_max(self):
        policy = RetryPolicy(
            base_delay_s=1.0, multiplier=10.0, max_delay_s=5.0, jitter=0.0
        )
        assert policy.backoff(4, random.Random(0)) == 5.0

    def test_jitter_bounds(self):
        policy = RetryPolicy(
            base_delay_s=1.0, multiplier=1.0, max_delay_s=10.0, jitter=0.2
        )
        rng = random.Random(7)
        samples = [policy.backoff(1, rng) for __ in range(200)]
        assert all(0.8 <= sample <= 1.2 for sample in samples)
        assert len(set(samples)) > 1

    def test_no_retry_dead_letters_immediately(self):
        assert NO_RETRY.exhausted(1)

    def test_frozen_value_object(self):
        with pytest.raises(AttributeError):
            RetryPolicy().max_deliveries = 2  # type: ignore[misc]


class TestCircuitBreaker:
    def make(self, **kwargs) -> tuple[CircuitBreaker, ManualClock]:
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=kwargs.pop("failure_threshold", 3),
            reset_timeout_s=kwargs.pop("reset_timeout_s", 30.0),
            clock=clock,
            **kwargs,
        )
        return breaker, clock

    def test_starts_closed_and_allows(self):
        breaker, __ = self.make()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_after_consecutive_failures(self):
        breaker, __ = self.make(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_count(self):
        breaker, __ = self.make(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_cooldown_admits_a_half_open_probe(self):
        breaker, clock = self.make(failure_threshold=1, reset_timeout_s=30.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(29.0)
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # only one probe at a time

    def test_probe_success_closes(self):
        breaker, clock = self.make(failure_threshold=1)
        breaker.record_failure()
        clock.advance(30.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        breaker, clock = self.make(failure_threshold=1)
        breaker.record_failure()
        clock.advance(30.0)
        assert breaker.allow()
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(29.0)
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)

    def test_snapshot_and_state_codes(self):
        breaker, __ = self.make(failure_threshold=1)
        breaker.record_failure()
        snapshot = breaker.snapshot()
        assert snapshot["state"] == OPEN
        assert snapshot["trips"] == 1
        assert snapshot["consecutive_failures"] == 1
        assert STATE_CODES[snapshot["state"]] == 2
        assert sorted(STATE_CODES.values()) == [0, 1, 2]
