"""Rejection, backoff redelivery, dead-lettering and DLQ operations."""

from __future__ import annotations

import json

import pytest

from repro.errors import DeadLetterError
from repro.messaging import MessageBroker
from repro.resilience import ManualClock, NO_RETRY, RetryPolicy
from repro.weblims.dlqservlet import DeadLetterServlet
from repro.weblims.http import HttpRequest

#: Deterministic backoff for schedule assertions.
FLAT = RetryPolicy(
    max_deliveries=3, base_delay_s=10.0, multiplier=1.0, max_delay_s=10.0, jitter=0.0
)


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def broker(clock):
    broker = MessageBroker(clock=clock, default_retry_policy=FLAT)
    broker.declare_queue("q")
    return broker


class TestRejectBackoff:
    def test_rejected_message_is_invisible_until_backoff_elapses(
        self, broker, clock
    ):
        broker.send("q", "wobbly")
        message = broker.receive("q")
        assert broker.reject(message, reason="transient") is True
        assert broker.queue_depth("q") == 1
        assert broker.receive("q") is None  # backoff holds it back
        clock.advance(10.0)
        redelivered = broker.receive("q")
        assert redelivered is not None
        assert redelivered.redelivered
        assert redelivered.delivery_count == 2
        assert broker.stats.redeliveries == 1

    def test_per_queue_policy_overrides_default(self, broker):
        broker.set_retry_policy("q", NO_RETRY)
        assert broker.retry_policy("q") is NO_RETRY
        broker.send("q", "poison")
        message = broker.receive("q")
        assert broker.reject(message, reason="bad xml") is False
        assert broker.dlq_depth() == 1
        assert broker.queue_depth("q") == 0

    def test_exhaustion_dead_letters_never_drops(self, broker, clock):
        broker.send("q", "poison")
        for expected_count in (1, 2, 3):
            message = broker.receive("q")
            assert message is not None
            assert message.delivery_count == expected_count
            will_retry = broker.reject(message, reason=f"try {expected_count}")
            clock.advance(10.0)
        assert will_retry is False
        assert broker.queue_depth("q") == 0
        assert broker.dlq_depth() == 1
        assert broker.stats.rejections == 3
        assert broker.stats.dead_lettered == 1
        entry = broker.dead_letters()[0]
        assert entry["queue"] == "q"
        assert entry["reason"] == "try 3"
        assert entry["delivery_count"] == 3

    def test_reject_requires_in_flight(self, broker):
        message = broker.send("q", "x")
        from repro.errors import AcknowledgeError

        with pytest.raises(AcknowledgeError):
            broker.reject(message)


class TestRequeueDead:
    def quarantine(self, broker) -> int:
        broker.set_retry_policy("q", NO_RETRY)
        broker.send("q", "poison", headers={"kind": "result"})
        message = broker.receive("q")
        broker.reject(message, reason="parse error")
        return message.message_id

    def test_requeue_resets_delivery_state(self, broker):
        message_id = self.quarantine(broker)
        requeued = broker.requeue_dead(message_id)
        assert requeued.message_id == message_id
        assert requeued.delivery_count == 0
        assert broker.dlq_depth() == 0
        fresh = broker.receive("q")
        assert fresh is not None
        assert not fresh.redelivered
        assert broker.stats.dlq_requeued == 1

    def test_unknown_id_raises(self, broker):
        with pytest.raises(DeadLetterError):
            broker.requeue_dead(999)


class TestDlqDurability:
    def test_dead_letters_survive_restart(self, tmp_path):
        journal = tmp_path / "broker.journal"
        broker = MessageBroker(journal)
        broker.declare_queue("q")
        broker.set_retry_policy("q", NO_RETRY)
        broker.send("q", "poison")
        message = broker.receive("q")
        broker.reject(message, reason="bad payload")
        broker.close()

        reopened = MessageBroker(journal)
        assert reopened.queue_depth("q") == 0
        assert reopened.dlq_depth() == 1
        entry = reopened.dead_letters()[0]
        assert entry["reason"] == "bad payload"
        assert entry["message_id"] == message.message_id

    def test_requeue_survives_restart(self, tmp_path):
        journal = tmp_path / "broker.journal"
        broker = MessageBroker(journal)
        broker.declare_queue("q")
        broker.set_retry_policy("q", NO_RETRY)
        broker.send("q", "poison")
        broker.reject(broker.receive("q"), reason="oops")
        broker.requeue_dead(broker.dead_letters()[0]["message_id"])
        broker.close()

        reopened = MessageBroker(journal)
        assert reopened.dlq_depth() == 0
        assert reopened.queue_depth("q") == 1
        assert reopened.receive("q").body == "poison"


class TestDeadLetterServlet:
    def quarantined_broker(self) -> MessageBroker:
        broker = MessageBroker(default_retry_policy=NO_RETRY)
        broker.declare_queue("q")
        broker.send("q", "poison", headers={"kind": "task.result"})
        broker.reject(broker.receive("q"), reason="parse error")
        return broker

    def test_get_lists_quarantine(self):
        broker = self.quarantined_broker()
        servlet = DeadLetterServlet(broker)
        response = servlet.do_get(
            HttpRequest("GET", "/workflow/dlq"), container=None
        )
        assert response.status == 200
        data = json.loads(response.body)
        assert data["depth"] == 1
        assert data["dead_lettered_total"] == 1
        assert data["messages"][0]["reason"] == "parse error"
        assert data["messages"][0]["headers"]["kind"] == "task.result"

    def test_post_requeues(self):
        broker = self.quarantined_broker()
        servlet = DeadLetterServlet(broker)
        message_id = broker.dead_letters()[0]["message_id"]
        response = servlet.do_post(
            HttpRequest(
                "POST",
                "/workflow/dlq",
                params={
                    "dlq_action": "requeue",
                    "message_id": str(message_id),
                },
            ),
            container=None,
        )
        assert response.status == 200
        data = json.loads(response.body)
        assert data["requeued"] == message_id
        assert data["depth"] == 0
        assert broker.queue_depth("q") == 1

    def test_post_validates_action_and_id(self):
        broker = self.quarantined_broker()
        servlet = DeadLetterServlet(broker)
        bad_action = servlet.do_post(
            HttpRequest("POST", "/workflow/dlq", params={"dlq_action": "drop"}),
            container=None,
        )
        assert bad_action.status == 400
        bad_id = servlet.do_post(
            HttpRequest(
                "POST",
                "/workflow/dlq",
                params={"dlq_action": "requeue", "message_id": "nope"},
            ),
            container=None,
        )
        assert bad_id.status == 400
        missing = servlet.do_post(
            HttpRequest(
                "POST",
                "/workflow/dlq",
                params={"dlq_action": "requeue", "message_id": "424242"},
            ),
            container=None,
        )
        assert missing.status == 404
