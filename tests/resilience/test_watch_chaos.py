"""Acceptance test for the watch layer: the full alert lifecycle under
chaos, entirely ManualClock-driven — zero wall-clock sleeps.

The scenario is the chaos suite's agent-silence case (seed 3): the
dispatch to the digestion robot is dropped, the instance sits in
``delegated`` long past its pattern baseline, and the watch layer must
drive the ``stuck-instances`` alert pending → firing (audited and
exported), then resolve it once the lease sweep redelivers and the
workflow completes.
"""

from __future__ import annotations

from repro.obs import verify_timeline
from repro.obs.watch import MemorySink, StuckPolicy
from repro.resilience import FaultPlan, ManualClock
from repro.workloads.protein import build_protein_lab


def watch_lab(tmp_path=None, seed=3, lease_ttl_s=120.0, fault_plan=None):
    clock = ManualClock()
    lab = build_protein_lab(
        colonies=25,
        seed=seed,
        clock=clock,
        wal_path=str(tmp_path / "watch.wal") if tmp_path is not None else None,
        lease_ttl_s=lease_ttl_s,
        fault_plan=fault_plan,
        watch=True,
        stuck_policy=StuckPolicy(
            multiple=3.0, min_samples=3, floor_s=1.0, fallback_s=60.0
        ),
    )
    return lab, clock


class TestAlertLifecycleUnderChaos:
    def test_agent_silence_drives_pending_firing_resolved(self, tmp_path):
        plan = FaultPlan(seed=3).rule(
            "broker.publish", "drop", times=1,
            where={"queue": "agent.digest-bot"},
        )
        lab, clock = watch_lab(tmp_path, fault_plan=plan)
        watcher = lab.obs.watcher
        assert watcher is not None
        sink = MemorySink()
        watcher.exporter.add_sink(sink)

        workflow = lab.engine.start_workflow("protein_creation")
        workflow_id = workflow["workflow_id"]
        lab.run_messages()
        assert plan.fired_points() == ["broker.publish"]

        # Nothing is stuck yet and no rule has tripped.
        assert watcher.evaluate() == []
        assert watcher.alerts.counts().get("firing", 0) == 0

        # 90 s of silence: past the 60 s fallback, short of the 120 s
        # lease TTL — stuck-instances goes pending, held by for_s=30.
        clock.advance(90.0)
        transitions = watcher.evaluate()
        stuck = {
            (t["from"], t["to"])
            for t in transitions
            if t["rule"] == "stuck-instances"
        }
        assert stuck == {("inactive", "pending")}
        flagged = watcher.stuck()
        assert {entry["workflow_id"] for entry in flagged} == {workflow_id}
        assert any(entry["state"] == "delegated" for entry in flagged)

        # 40 s more: the hold elapsed (and the lease expired) — firing.
        clock.advance(40.0)
        transitions = watcher.evaluate()
        by_rule = {(t["rule"], t["to"]) for t in transitions}
        assert ("stuck-instances", "firing") in by_rule
        assert ("expired-leases", "firing") in by_rule
        assert lab.obs.health_report()["components"]["alerts"][
            "status"
        ] == "degraded"

        # The firing transition is durable: audited and exported.
        total, records = lab.obs.audit.query(kind="alert.transition")
        assert total >= 2
        assert any(r["state"] == "firing" for r in records)
        watcher.exporter.flush()
        exported = sink.of_kind("alert.transition")
        assert {(r["rule"], r["to"]) for r in exported} >= {
            ("stuck-instances", "pending"),
            ("stuck-instances", "firing"),
        }

        # Recovery: the sweep redelivers, the workflow completes, and
        # one more evaluation pass resolves every firing alert.
        assert lab.manager.sweep_leases()["redispatched"] == 1
        assert lab.run_to_completion(workflow_id) == "completed"
        transitions = watcher.evaluate()
        resolved = {
            t["rule"] for t in transitions if t["to"] == "resolved"
        }
        assert {"stuck-instances", "expired-leases"} <= resolved
        assert watcher.alerts.counts().get("firing", 0) == 0
        assert lab.obs.health_report()["components"]["alerts"][
            "status"
        ] == "ok"
        assert watcher.stuck() == []

        # The flight recorder shows the whole story on one timeline,
        # and the audit trail still satisfies the Fig. 4 machines.
        timeline = watcher.recorder.timeline(workflow_id)
        assert timeline["found"] is True
        kinds = [e["kind"] for e in timeline["events"]]
        assert "lease.expired" in kinds
        records = lab.obs.audit.timeline(workflow_id)
        assert records and verify_timeline(records) == []

    def test_watch_layer_stays_quiet_on_a_clean_run(self, tmp_path):
        """No faults: a healthy run must produce zero transitions and
        leave the alerts component ok — no false alarms."""
        lab, clock = watch_lab(tmp_path)
        watcher = lab.obs.watcher
        workflow = lab.engine.start_workflow("protein_creation")
        workflow_id = workflow["workflow_id"]
        assert lab.run_to_completion(workflow_id) == "completed"
        clock.advance(300.0)  # idle time after completion is not "stuck"
        assert watcher.evaluate() == []
        assert watcher.stuck() == []
        assert watcher.alerts.report()["history"] == []
        assert lab.obs.health_report()["components"]["alerts"][
            "status"
        ] == "ok"
