"""Agent liveness leases: grant/renew/expiry, sweep, dispatch breaker."""

from __future__ import annotations

import pytest

from repro.agents import AgentManager
from repro.core import InstanceState, PatternBuilder, install_workflow_support
from repro.core.dispatch import ENGINE_QUEUE, KIND_STARTED
from repro.core.persistence import authorize_agent, register_agent, save_pattern
from repro.core.spec import AgentSpec
from repro.messaging import MessageBroker
from repro.minidb.schema import Column
from repro.minidb.types import ColumnType
from repro.resilience import FaultPlan, LeaseTable, ManualClock
from repro.weblims import build_expdb
from repro.weblims.schema_setup import add_experiment_type


class TestLeaseTable:
    def test_grant_renew_release(self):
        clock = ManualClock()
        table = LeaseTable(clock=clock, ttl_s=60.0)
        lease = table.grant(1, workflow_id=9, task="a", agent="bot")
        assert lease.remaining(clock.monotonic()) == 60.0
        clock.advance(50.0)
        renewed = table.renew(1)
        assert renewed is not None and renewed.renewals == 1
        assert renewed.remaining(clock.monotonic()) == 60.0
        assert table.active_count() == 1
        released = table.release(1)
        assert released is lease
        assert table.active_count() == 0
        assert table.renew(1) is None
        assert table.release(1) is None

    def test_expired_sorted_oldest_first(self):
        clock = ManualClock()
        table = LeaseTable(clock=clock, ttl_s=10.0)
        table.grant(1)
        clock.advance(5.0)
        table.grant(2)
        clock.advance(10.0)  # both overdue, lease 1 first
        assert [lease.experiment_id for lease in table.expired()] == [1, 2]
        assert table.expired(now=clock.monotonic() - 6.0) == []

    def test_regrant_preserves_redispatch_budget(self):
        table = LeaseTable(clock=ManualClock(), ttl_s=10.0)
        table.grant(1, agent="first-bot")
        assert table.note_redispatch(1) == 1
        regranted = table.grant(1, agent="other-bot")
        assert regranted.redispatches == 1
        assert table.note_redispatch(404) == 0

    def test_snapshot_reports_expiry(self):
        clock = ManualClock()
        table = LeaseTable(clock=clock, ttl_s=10.0)
        table.grant(1, task="a", agent="bot", queue="agent.bot")
        clock.advance(11.0)
        (row,) = table.snapshot()
        assert row["expired"] is True
        assert row["task"] == "a"
        assert row["remaining_s"] == -1.0

    def test_ttl_validation(self):
        with pytest.raises(ValueError):
            LeaseTable(ttl_s=0)


@pytest.fixture
def lease_lab():
    """A single-task lab whose only agent never answers."""
    clock = ManualClock()
    app = build_expdb()
    broker = MessageBroker(clock=clock)
    manager = AgentManager(
        app.db,
        broker,
        clock=clock,
        lease_ttl_s=60.0,
        max_redispatches=1,
        breaker_threshold=2,
        breaker_reset_s=30.0,
    )
    engine = install_workflow_support(app, dispatcher=manager)
    manager.attach_engine(engine)
    add_experiment_type(app.db, "A", [Column("reading", ColumnType.REAL)])
    add_experiment_type(app.db, "B", [])
    spec = AgentSpec("silent-bot", "robot")
    register_agent(app.db, spec)
    authorize_agent(app.db, "silent-bot", "A")
    pattern = (
        PatternBuilder("solo")
        .task("a", experiment_type="A")
        .task("b", experiment_type="B")
        .flow("a", "b")
        .build(db=app.db)
    )
    save_pattern(app.db, pattern)
    return app, engine, manager, broker, clock


class TestSweep:
    def start(self, engine):
        workflow = engine.start_workflow("solo")
        view = engine.workflow_view(workflow["workflow_id"])
        return workflow["workflow_id"], view.tasks["a"].instances[0].experiment_id

    def test_dispatch_grants_a_lease(self, lease_lab):
        __, engine, manager, ___, ____ = lease_lab
        ___, experiment_id = self.start(engine)
        lease = manager.leases.get(experiment_id)
        assert lease is not None
        assert lease.agent == "silent-bot"
        assert lease.queue == "agent.silent-bot"
        assert manager.dispatch_count == 1

    def test_fresh_lease_not_swept(self, lease_lab):
        __, engine, manager, ___, ____ = lease_lab
        self.start(engine)
        assert manager.sweep_leases() == {
            "redispatched": 0,
            "aborted": 0,
            "released": 0,
        }

    def test_expiry_redispatches_within_budget(self, lease_lab):
        __, engine, manager, broker, clock = lease_lab
        ___, experiment_id = self.start(engine)
        clock.advance(61.0)
        counts = manager.sweep_leases()
        assert counts["redispatched"] == 1
        assert manager.redispatches == 1
        assert manager.leases.expiries == 1
        # A second dispatch went out and a fresh lease covers it.
        assert manager.dispatch_count == 2
        assert broker.queue_depth("agent.silent-bot") == 2
        lease = manager.leases.get(experiment_id)
        assert lease is not None and lease.redispatches == 1
        assert engine.events.of_kind("lease.redispatch")

    def test_budget_spent_aborts_cleanly(self, lease_lab):
        app, engine, manager, __, clock = lease_lab
        workflow_id, experiment_id = self.start(engine)
        clock.advance(61.0)
        manager.sweep_leases()  # redispatch
        clock.advance(61.0)
        counts = manager.sweep_leases()  # budget spent: abort
        assert counts["aborted"] == 1
        assert manager.lease_aborts == 1
        assert manager.leases.get(experiment_id) is None
        experiment = app.db.get("Experiment", experiment_id)
        assert experiment["wf_state"] == InstanceState.ABORTED.value
        # The Fig. 4 machinery fails the workflow instead of hanging it.
        assert app.db.get("Workflow", workflow_id)["status"] == "aborted"
        assert engine.events.of_kind("lease.abort")

    def test_started_message_renews_the_lease(self, lease_lab):
        __, engine, manager, broker, clock = lease_lab
        ___, experiment_id = self.start(engine)
        clock.advance(50.0)
        broker.send(
            ENGINE_QUEUE,
            "",
            headers={"kind": KIND_STARTED, "experiment_id": experiment_id},
        )
        manager.pump()
        lease = manager.leases.get(experiment_id)
        assert lease is not None and lease.renewals == 1
        clock.advance(50.0)  # past the original deadline, not the renewed
        assert manager.sweep_leases()["redispatched"] == 0

    def test_stale_lease_released_quietly(self, lease_lab):
        __, engine, manager, ___, clock = lease_lab
        ____, experiment_id = self.start(engine)
        # Decided another way (a human raced the robot in the web UI).
        engine.complete_instance(experiment_id, success=True)
        clock.advance(61.0)
        counts = manager.sweep_leases()
        assert counts == {"redispatched": 0, "aborted": 0, "released": 1}
        assert manager.leases.expiries == 0
        assert manager.leases.get(experiment_id) is None


class TestDispatchBreaker:
    def test_failures_trip_then_short_circuit(self, lease_lab):
        __, engine, manager, ___, ____ = lease_lab
        manager.faults = FaultPlan().rule("agent.dispatch", "crash", times=None)
        for ___ in range(3):
            engine.start_workflow("solo")
        # Threshold 2: two recorded failures, the third short-circuits.
        assert manager.dispatch_failures == 2
        assert manager.breaker_short_circuits == 1
        snapshot = manager.breaker_snapshots()["agent.silent-bot"]
        assert snapshot["state"] == "open"
        assert engine.events.of_kind("dispatch.failed")
        assert engine.events.of_kind("dispatch.skipped")
        # Every instance still holds a lease: the sweep will recover them.
        assert manager.leases.active_count() == 3

    def test_breaker_probe_recovers_after_cooldown(self, lease_lab):
        __, engine, manager, ___, clock = lease_lab
        manager.faults = FaultPlan().rule("agent.dispatch", "crash", times=2)
        engine.start_workflow("solo")
        engine.start_workflow("solo")
        assert manager.breaker_snapshots()["agent.silent-bot"]["state"] == "open"
        clock.advance(31.0)  # past breaker_reset_s; faults exhausted
        engine.start_workflow("solo")
        assert manager.dispatch_count == 1
        assert manager.breaker_snapshots()["agent.silent-bot"]["state"] == "closed"
