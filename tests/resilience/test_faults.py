"""The fault-injection substrate: rules, matching, seeding, actions."""

from __future__ import annotations

import pytest

from repro.errors import FaultInjected
from repro.resilience import FaultPlan, FaultRule, ManualClock, fire, mangle


class TestFaultRule:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule("broker.publish", "explode")

    def test_point_is_a_glob(self):
        rule = FaultRule("broker.*", "drop")
        assert rule.matches("broker.publish", {})
        assert rule.matches("broker.ack", {})
        assert not rule.matches("wal.append", {})

    def test_where_filters_on_context_equality(self):
        rule = FaultRule("broker.publish", "drop", where={"queue": "q1"})
        assert rule.matches("broker.publish", {"queue": "q1"})
        assert not rule.matches("broker.publish", {"queue": "q2"})
        assert not rule.matches("broker.publish", {})


class TestFaultPlan:
    def test_first_match_wins(self):
        plan = (
            FaultPlan()
            .rule("broker.*", "drop")
            .rule("broker.publish", "crash")
        )
        assert plan.fire("broker.publish").action == "drop"

    def test_times_budget(self):
        plan = FaultPlan().rule("p", "drop", times=2)
        assert plan.fire("p") is not None
        assert plan.fire("p") is not None
        assert plan.fire("p") is None
        assert plan.rules[0].exhausted

    def test_after_skips_initial_matches(self):
        plan = FaultPlan().rule("p", "drop", after=2, times=1)
        assert plan.fire("p") is None
        assert plan.fire("p") is None
        assert plan.fire("p") is not None
        assert plan.fire("p") is None  # times spent

    def test_unlimited_times(self):
        plan = FaultPlan().rule("p", "drop", times=None)
        for __ in range(10):
            assert plan.fire("p") is not None

    def test_probability_is_seeded_and_reproducible(self):
        def firings(seed: int) -> list[bool]:
            plan = FaultPlan(seed=seed).rule(
                "p", "drop", times=None, probability=0.5
            )
            return [plan.fire("p") is not None for __ in range(50)]

        first = firings(42)
        assert first == firings(42)
        assert True in first and False in first
        assert first != firings(43)

    def test_history_records_applied_faults(self):
        plan = FaultPlan().rule("p", "drop", where={"queue": "q"})
        plan.fire("p", queue="q")
        assert plan.history == [("p", "drop", {"queue": "q"})]
        assert plan.fired_points() == ["p"]


class TestFireHelper:
    def test_none_plan_is_a_noop(self):
        assert fire(None, "anything") is None

    def test_crash_raises_fault_injected(self):
        plan = FaultPlan().rule("p", "crash", note="simulated death")
        with pytest.raises(FaultInjected) as excinfo:
            fire(plan, "p")
        assert excinfo.value.point == "p"
        assert "simulated death" in str(excinfo.value)

    def test_delay_advances_the_plan_clock(self):
        clock = ManualClock()
        plan = FaultPlan(clock=clock).rule("p", "delay", delay_s=2.5)
        before = clock.monotonic()
        assert fire(plan, "p") is None  # execution continues
        assert clock.monotonic() == before + 2.5

    def test_caller_actions_returned_verbatim(self):
        plan = (
            FaultPlan()
            .rule("a", "drop")
            .rule("b", "duplicate")
            .rule("c", "corrupt")
        )
        assert fire(plan, "a") == "drop"
        assert fire(plan, "b") == "duplicate"
        assert fire(plan, "c") == "corrupt"

    def test_no_matching_rule_returns_none(self):
        plan = FaultPlan().rule("other", "drop")
        assert fire(plan, "p") is None


class TestMangle:
    def test_deterministic(self):
        assert mangle("<result>ok</result>") == mangle("<result>ok</result>")

    def test_output_is_poison_for_xml_and_json(self):
        corrupted = mangle('{"fine": true}')
        assert "\x00" in corrupted
        assert corrupted.endswith("<corrupted/>")

    def test_truncates_at_midpoint(self):
        body = "x" * 100
        assert mangle(body).startswith("x" * 50)
        assert "x" * 51 not in mangle(body)


class TestManualClock:
    def test_sleep_advances_instead_of_blocking(self):
        clock = ManualClock(start=10.0)
        clock.sleep(5.0)
        assert clock.now() == 15.0
        assert clock.monotonic() == 15.0

    def test_cannot_go_backwards(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1.0)
