"""Witness-backed chaos: lock orders under fault injection.

The static analyzer proves the lock graph acyclic on paths it can
resolve; the chaos scenarios force the *other* paths — crash recovery,
redelivery, lease sweeps — while the :class:`LockOrderWitness` rides
every profiled lock.  Any acquisition order the static graph did not
predict fails the run, closing the loop between the two models under
the nastiest interleavings the suite knows how to provoke.
"""

from __future__ import annotations

import pytest

from repro.errors import FaultInjected
from repro.resilience import FaultPlan, ManualClock
from repro.workloads.protein import build_protein_lab


def witnessed_lab(tmp_path=None, **kwargs):
    clock = ManualClock()
    lab = build_protein_lab(
        colonies=25,
        clock=clock,
        wal_path=(
            str(tmp_path / "chaos.wal") if tmp_path is not None else None
        ),
        profiling=True,
        witness=True,
        **kwargs,
    )
    return lab, clock


def assert_no_divergence(lab) -> None:
    report = lab.obs.profiler.witness.check()
    assert report.acquisitions > 0, "witness saw no lock traffic"
    assert report.ok, report.render_text()


class TestWitnessUnderFaults:
    def test_wal_crash_and_recovery_stay_ordered(self, tmp_path):
        lab, __ = witnessed_lab(tmp_path, seed=1)
        plan = FaultPlan(seed=1).rule("wal.append", "crash", times=None)
        lab.attach_faults(plan)
        denied = lab.app.post(
            "/user", workflow_action="start", pattern="protein_creation"
        )
        assert denied.status == 503

        lab.attach_faults(None)
        retried = lab.app.post(
            "/user", workflow_action="start", pattern="protein_creation"
        )
        assert retried.status == 200
        workflow_id = retried.attributes["workflow_id"]
        assert lab.run_to_completion(workflow_id) == "completed"
        assert_no_divergence(lab)

    def test_broker_crash_and_redelivery_stay_ordered(self):
        from repro.core.dispatch import KIND_RESULT

        lab, __ = witnessed_lab(seed=2)
        plan = FaultPlan(seed=2).rule(
            "manager.ack", "crash", times=1, where={"kind": KIND_RESULT}
        )
        lab.attach_faults(plan)
        workflow = lab.engine.start_workflow("protein_creation")
        with pytest.raises(FaultInjected):
            lab.run_messages()

        lab.attach_faults(None)
        lab.broker.requeue_all_in_flight()
        status = lab.run_to_completion(workflow["workflow_id"])
        assert status == "completed"
        assert_no_divergence(lab)

    def test_lease_sweep_redispatch_stays_ordered(self):
        lab, clock = witnessed_lab(seed=3, lease_ttl_s=120.0)
        plan = FaultPlan(seed=3).rule(
            "broker.publish", "drop", times=1,
            where={"queue": "agent.digest-bot"},
        )
        lab.attach_faults(plan)
        workflow = lab.engine.start_workflow("protein_creation")
        lab.run_messages()
        clock.advance(121.0)
        assert lab.manager.sweep_leases()["redispatched"] == 1
        assert lab.run_to_completion(workflow["workflow_id"]) == "completed"
        assert_no_divergence(lab)
