"""Graceful degradation: the filter when the workflow machinery is down."""

from __future__ import annotations

import pytest

from repro.core import (
    DegradationPolicy,
    PatternBuilder,
    install_workflow_support,
)
from repro.core.persistence import save_pattern
from repro.errors import DatabaseError, MessagingError
from repro.minidb.schema import Column
from repro.minidb.types import ColumnType
from repro.obs import ObservabilityHub, hub_readiness
from repro.weblims import build_expdb
from repro.weblims.schema_setup import add_experiment_type


def wire(degradation: DegradationPolicy | None = None):
    app = build_expdb()
    engine = install_workflow_support(app, degradation=degradation)
    add_experiment_type(app.db, "A", [Column("reading", ColumnType.REAL)])
    pattern = (
        PatternBuilder("flow")
        .task("a", experiment_type="A")
        .task("b", experiment_type="A")
        .flow("a", "b")
        .build(db=app.db)
    )
    save_pattern(app.db, pattern)
    return app, engine, app.container.context["workflow_filter"]


class TestPolicy:
    def test_mode_validated(self):
        with pytest.raises(ValueError, match="degradation mode"):
            DegradationPolicy(mode="explode")

    def test_defaults(self):
        policy = DegradationPolicy()
        assert policy.mode == "reject"
        assert policy.retry_after_s == 5


class TestRejectMode:
    def test_no_probe_means_ready(self):
        app, __, filter_ = wire()
        assert filter_.readiness is None
        response = app.post("/user", action="insert", table="A", v_reading="1")
        assert response.status == 200
        assert filter_.stats.degraded == 0

    def test_workflow_relevant_write_rejected_with_retry_after(self):
        app, engine, filter_ = wire()
        filter_.readiness = lambda: (False, "broker unreachable")
        response = app.post("/user", action="insert", table="A", v_reading="1")
        assert response.status == 503
        assert response.headers["Retry-After"] == "5"
        assert "broker unreachable" in response.body
        assert app.db.count("A") == 0  # nothing reached the LIMS
        assert filter_.stats.degraded == 1
        degraded = engine.events.of_kind("request.degraded")
        assert degraded and "broker unreachable" in degraded[-1]["reason"]

    def test_irrelevant_requests_still_pass_through(self):
        app, __, filter_ = wire()
        filter_.readiness = lambda: (False, "down")
        response = app.get("/user", action="list")
        assert response.status == 200
        assert filter_.stats.passed_through == 1
        assert filter_.stats.degraded == 0

    def test_mode_b_rejected_while_degraded(self):
        app, __, filter_ = wire()
        filter_.readiness = lambda: (False, "engine wedged")
        response = app.post("/user", workflow_action="start", pattern="flow")
        assert response.status == 503
        assert filter_.stats.processed == 0

    def test_probe_crash_counts_as_not_ready(self):
        app, __, filter_ = wire()

        def bad_probe():
            raise DatabaseError("health query failed")

        filter_.readiness = bad_probe
        response = app.post("/user", action="insert", table="A", v_reading="1")
        assert response.status == 503
        assert "health query failed" in response.body

    def test_retry_after_configurable(self):
        app, __, filter_ = wire(DegradationPolicy(retry_after_s=42))
        filter_.readiness = lambda: (False, "down")
        response = app.post("/user", action="insert", table="A", v_reading="1")
        assert response.headers["Retry-After"] == "42"

    def test_mode_b_servlet_failure_degrades_not_500(self, monkeypatch):
        app, __, filter_ = wire()

        def boom(request, container):
            raise MessagingError("broker send failed")

        monkeypatch.setattr(filter_.workflow_servlet, "service", boom)
        response = app.post("/user", workflow_action="start", pattern="flow")
        assert response.status == 503
        assert filter_.stats.degraded == 1


class TestPassthroughMode:
    def test_relevant_write_forwarded_to_bare_lims(self):
        app, __, filter_ = wire(DegradationPolicy(mode="passthrough"))
        filter_.readiness = lambda: (False, "down")
        response = app.post("/user", action="insert", table="A", v_reading="1")
        assert response.status == 200
        assert app.db.count("A") == 1  # Exp-DB worked as if Exp-WF were gone
        assert filter_.stats.degraded == 1
        assert filter_.stats.preprocessed == 0  # no validation happened

    def test_mode_b_still_rejected(self):
        """A workflow action has no original destination to fall back to."""
        app, __, filter_ = wire(DegradationPolicy(mode="passthrough"))
        filter_.readiness = lambda: (False, "down")
        response = app.post("/user", workflow_action="start", pattern="flow")
        assert response.status == 503


class TestPostprocessDegradation:
    def test_successful_write_never_masked(self, monkeypatch):
        """Mode (c) failure appends a notice; the 200 stands."""
        app, engine, filter_ = wire()

        def boom(table, attributes):
            raise MessagingError("broker gone mid-postprocess")

        monkeypatch.setattr(engine, "on_data_change", boom)
        response = app.post("/user", action="insert", table="A", v_reading="1")
        assert response.status == 200
        assert app.db.count("A") == 1
        assert filter_.stats.degraded == 1
        notices = response.attributes.get("workflow_notices", [])
        assert any("workflow manager unavailable" in n for n in notices)


class TestHubReadiness:
    def hub_with(self, statuses: dict[str, str]) -> ObservabilityHub:
        hub = ObservabilityHub()
        for component, status in statuses.items():
            hub.register_health(component, lambda status=status: {"status": status})
        return hub

    def test_ready_when_all_ok(self):
        hub = self.hub_with({"database": "ok", "engine": "ok", "broker": "ok"})
        assert hub_readiness(hub) == (True, "")

    def test_absent_components_do_not_count(self):
        """A filter-only deployment has no broker to be unhealthy."""
        hub = self.hub_with({"database": "ok"})
        assert hub_readiness(hub) == (True, "")

    def test_unhealthy_component_blocks_readiness(self):
        hub = self.hub_with({"database": "ok", "broker": "degraded"})
        ready, reason = hub_readiness(hub)
        assert not ready
        assert "broker=degraded" in reason

    def test_non_core_components_ignored(self):
        hub = self.hub_with({"email": "down", "database": "ok"})
        assert hub_readiness(hub)[0] is True
