"""Chaos suite: seeded fault plans through full protein-workflow runs.

Five distinct failure modes — WAL write crash, broker crash mid-flight,
agent silence past its lease, a poison message, and a duplicated
delivery — each driven by a deterministic :class:`FaultPlan` against the
complete lab (web LIMS + engine + persistent messaging + agents).  Every
scenario must end in a *clean* completion or a *clean* failure: the
audit timeline obeys the Fig. 4 machines (``verify_timeline``), and a
poison message is always accounted for in the dead-letter queue, never
dropped.  No scenario sleeps on the wall clock — time is a
:class:`ManualClock` the tests advance by hand.
"""

from __future__ import annotations

import pytest

from repro.core.dispatch import ENGINE_QUEUE, KIND_RESULT
from repro.errors import FaultInjected
from repro.obs import verify_timeline
from repro.resilience import FaultPlan, ManualClock, RetryPolicy
from repro.workloads.protein import build_protein_lab

#: Deterministic redelivery: two tries, flat five-second backoff.
TWO_TRIES = RetryPolicy(
    max_deliveries=2, base_delay_s=5.0, multiplier=1.0, max_delay_s=5.0, jitter=0.0
)


def chaos_lab(tmp_path=None, **kwargs):
    clock = ManualClock()
    lab = build_protein_lab(
        colonies=25,
        clock=clock,
        wal_path=str(tmp_path / "chaos.wal") if tmp_path is not None else None,
        **kwargs,
    )
    return lab, clock


def clean_timeline(lab, workflow_id) -> None:
    records = lab.obs.audit.timeline(workflow_id)
    assert records, "audit trail must not be empty"
    assert verify_timeline(records) == []


class TestWalCrash:
    def test_wal_write_crash_degrades_then_recovers(self, tmp_path):
        """Seed 1: the WAL dies under a workflow start; the request is
        answered 503-with-Retry-After, and the retry completes fully."""
        lab, __ = chaos_lab(tmp_path, seed=1)
        # Every append dies: the first casualty is a best-effort audit
        # write (absorbed by design), the next is engine state — fatal.
        plan = FaultPlan(seed=1).rule("wal.append", "crash", times=None)
        lab.attach_faults(plan)

        denied = lab.app.post(
            "/user", workflow_action="start", pattern="protein_creation"
        )
        assert denied.status == 503
        assert denied.headers["Retry-After"] == "5"
        assert "wal.append" in plan.fired_points()

        lab.attach_faults(None)  # the disk comes back
        retried = lab.app.post(
            "/user", workflow_action="start", pattern="protein_creation"
        )
        assert retried.status == 200
        workflow_id = retried.attributes["workflow_id"]
        assert lab.run_to_completion(workflow_id) == "completed"
        clean_timeline(lab, workflow_id)


class TestBrokerCrashMidFlight:
    def test_unacked_message_redelivered_and_absorbed(self):
        """Seed 2: the manager dies between applying a result and acking
        it; after the restart the broker redelivers, and the engine's
        stale checks absorb the duplicate."""
        lab, __ = chaos_lab(seed=2)
        plan = FaultPlan(seed=2).rule(
            "manager.ack", "crash", times=1, where={"kind": KIND_RESULT}
        )
        lab.attach_faults(plan)
        workflow = lab.engine.start_workflow("protein_creation")
        workflow_id = workflow["workflow_id"]

        with pytest.raises(FaultInjected):
            lab.run_messages()
        assert lab.broker.in_flight_count() >= 1

        # "Restart": the dead consumer's messages return to their queues.
        lab.attach_faults(None)
        assert lab.broker.requeue_all_in_flight() >= 1
        assert lab.run_to_completion(workflow_id) == "completed"
        assert lab.broker.stats.redeliveries >= 1
        stale = lab.engine.events.of_kind("message.stale")
        assert any(e["message_kind"] == "task.result" for e in stale)
        assert lab.broker.dlq_depth() == 0
        clean_timeline(lab, workflow_id)


class TestAgentSilence:
    def test_lease_expiry_redispatches_the_silent_agent(self):
        """Seed 3: a dispatch to the digestion robot vanishes; the lease
        sweep notices the silence and re-dispatches."""
        lab, clock = chaos_lab(seed=3, lease_ttl_s=120.0)
        plan = FaultPlan(seed=3).rule(
            "broker.publish", "drop", times=1, where={"queue": "agent.digest-bot"}
        )
        lab.attach_faults(plan)
        workflow = lab.engine.start_workflow("protein_creation")
        workflow_id = workflow["workflow_id"]

        lab.run_messages()
        # Digestion never started; everything else is quiescent.
        view = lab.engine.workflow_view(workflow_id)
        assert view.tasks["digestion"].completed_instances == 0
        assert plan.fired_points() == ["broker.publish"]

        clock.advance(121.0)
        counts = lab.manager.sweep_leases()
        assert counts["redispatched"] == 1
        assert lab.manager.redispatches == 1
        assert lab.run_to_completion(workflow_id) == "completed"
        clean_timeline(lab, workflow_id)

    def test_silence_past_budget_fails_cleanly(self):
        """Seed 4: every dispatch to the robot vanishes; once the
        redispatch budget is spent the instance aborts through the
        Fig. 4 machine — the workflow fails instead of hanging."""
        lab, clock = chaos_lab(seed=4, lease_ttl_s=120.0, max_redispatches=1)
        plan = FaultPlan(seed=4).rule(
            "broker.publish", "drop", times=None,
            where={"queue": "agent.digest-bot"},
        )
        lab.attach_faults(plan)
        workflow = lab.engine.start_workflow("protein_creation")
        workflow_id = workflow["workflow_id"]

        lab.run_messages()
        clock.advance(121.0)
        assert lab.manager.sweep_leases()["redispatched"] == 1
        lab.run_messages()
        clock.advance(121.0)
        assert lab.manager.sweep_leases()["aborted"] == 1
        assert lab.manager.lease_aborts == 1

        status = lab.run_to_completion(workflow_id)
        assert status != "running"  # failed cleanly, no hang
        view = lab.engine.workflow_view(workflow_id)
        assert view.tasks["digestion"].state == "aborted"
        clean_timeline(lab, workflow_id)


class TestPoisonMessage:
    def test_corrupted_result_quarantined_never_dropped(self):
        """Seed 5: a result message is corrupted in transit; redelivery
        with backoff retries it, the delivery cap quarantines it, and
        the operator's cancel fails the workflow cleanly."""
        lab, clock = chaos_lab(seed=5, retry_policy=TWO_TRIES)
        plan = FaultPlan(seed=5).rule(
            "broker.publish", "corrupt", times=1,
            where={"queue": ENGINE_QUEUE, "kind": KIND_RESULT},
        )
        lab.attach_faults(plan)
        workflow = lab.engine.start_workflow("protein_creation")
        workflow_id = workflow["workflow_id"]

        for __ in range(10):
            lab.run_messages()
            if lab.broker.dlq_depth():
                break
            clock.advance(5.0)  # let the rejection backoff elapse
        assert lab.broker.dlq_depth() == 1
        assert lab.manager.messages_rejected == 2  # both delivery attempts
        (entry,) = lab.broker.dead_letters()
        assert entry["queue"] == ENGINE_QUEUE
        assert entry["headers"]["kind"] == KIND_RESULT
        assert entry["delivery_count"] == 2

        # The lost result leaves its instance undecided; fail over to a
        # clean operator cancel rather than hanging forever.
        lab.engine.cancel_workflow(workflow_id, by="operator")
        assert lab.app.db.get("Workflow", workflow_id)["status"] == "aborted"
        assert lab.broker.dlq_depth() == 1  # still accounted for
        dead_letters = [
            record
            for record in lab.obs.audit.query(kind="message.dead_letter")[1]
        ]
        assert dead_letters
        clean_timeline(lab, workflow_id)


class TestDuplicateDelivery:
    def test_duplicated_result_absorbed_exactly_once(self):
        """Seed 6: a result message is duplicated on publish; the engine
        applies one copy and records the other as stale — state changes
        exactly once and nothing is dead-lettered."""
        lab, __ = chaos_lab(seed=6)
        plan = FaultPlan(seed=6).rule(
            "broker.publish", "duplicate", times=1,
            where={"queue": ENGINE_QUEUE, "kind": KIND_RESULT},
        )
        lab.attach_faults(plan)
        workflow = lab.engine.start_workflow("protein_creation")
        workflow_id = workflow["workflow_id"]

        assert lab.run_to_completion(workflow_id) == "completed"
        stale = lab.engine.events.of_kind("message.stale")
        assert any(e["message_kind"] == "task.result" for e in stale)
        assert lab.broker.dlq_depth() == 0
        assert lab.manager.messages_rejected == 0
        clean_timeline(lab, workflow_id)


class TestCheckpointUnderLoad:
    def test_checkpoint_crash_under_load_recovers_cleanly(self, tmp_path):
        """Seed 8: an online checkpoint dies mid-write while a workflow
        is in flight; the live system absorbs the failure, a later
        checkpoint succeeds under the same load, and a cold restart
        from the compacted WAL sees the completed workflow."""
        from repro.minidb import Database

        lab, __ = chaos_lab(tmp_path, seed=8)
        plan = FaultPlan(seed=8).rule("checkpoint.write", "crash", times=1)
        lab.attach_faults(plan)
        workflow = lab.engine.start_workflow("protein_creation")
        workflow_id = workflow["workflow_id"]
        lab.run_messages()  # mid-flight: tasks dispatched, results pending

        with pytest.raises(FaultInjected):
            lab.app.db.checkpoint()
        assert plan.fired_points() == ["checkpoint.write"]

        # The disk "comes back": the same process checkpoints under
        # load and drives the workflow to completion.
        lab.attach_faults(None)
        assert lab.app.db.checkpoint() > 0
        assert lab.run_to_completion(workflow_id) == "completed"
        assert lab.app.db.checkpoint() > 0
        assert lab.app.db.checkpoints == 2
        clean_timeline(lab, workflow_id)

        # Cold restart: recovery is checkpoint + tail, same state.
        lab.app.db.close()
        reopened = Database(tmp_path / "chaos.wal")
        assert reopened.get("Workflow", workflow_id)["status"] == "completed"
        recovery = reopened.wal_info()["last_recovery"]
        assert recovery["checkpoint_records"] > 0
        reopened.close()


class TestDeterminism:
    def test_same_plan_same_outcome(self):
        """The same seed and plan replay the same faults and reach the
        same final state — what makes chaos results debuggable."""

        def run() -> tuple[list[str], dict[str, str]]:
            lab, clock = chaos_lab(seed=7, retry_policy=TWO_TRIES)
            plan = FaultPlan(seed=7).rule(
                "broker.deliver", "drop", times=None, probability=0.2,
                where={"queue": ENGINE_QUEUE},
            )
            lab.attach_faults(plan)
            workflow = lab.engine.start_workflow("protein_creation")
            lab.run_to_completion(workflow["workflow_id"])
            view = lab.engine.workflow_view(workflow["workflow_id"])
            states = {name: task.state for name, task in view.tasks.items()}
            return plan.fired_points(), states

        assert run() == run()
