"""Human technician and analysis-program agents."""

from __future__ import annotations

import json

from repro.agents import AnalysisProgramAgent, HumanTechnicianAgent
from repro.agents.program import default_compute
from repro.core import PatternBuilder
from repro.core.spec import AgentSpec


class TestHumanTechnician:
    def make_human(self, msg_lab):
        spec = AgentSpec("tech", "human", contact="tech@lab")
        return msg_lab.register(
            HumanTechnicianAgent(spec, msg_lab.broker, msg_lab.email), "A"
        )

    def test_dispatch_notifies_by_email_and_parks_work(self, msg_lab):
        human = self.make_human(msg_lab)
        msg_lab.define(PatternBuilder("p").task("a", experiment_type="A"))
        workflow = msg_lab.engine.start_workflow("p")
        for request in msg_lab.engine.pending_authorizations():
            msg_lab.engine.respond_authorization(request["auth_id"], True)
        msg_lab.run()
        # The human has mail and a worklist entry; the instance waits.
        inbox = msg_lab.email.inbox("tech@lab")
        assert any("assigned to you" in mail.subject for mail in inbox)
        assert len(human.worklist) == 1
        view = msg_lab.engine.workflow_view(workflow["workflow_id"])
        assert view.tasks["a"].instances[0].state == "delegated"

    def test_human_enters_results_via_web_interface(self, msg_lab):
        human = self.make_human(msg_lab)
        msg_lab.define(PatternBuilder("p").task("a", experiment_type="A"))
        workflow = msg_lab.engine.start_workflow("p")
        for request in msg_lab.engine.pending_authorizations():
            msg_lab.engine.respond_authorization(request["auth_id"], True)
        msg_lab.run()
        experiment_id = next(iter(human.worklist))
        human.take_work(experiment_id)
        response = msg_lab.app.post(
            "/user",
            workflow_action="complete_instance",
            experiment_id=str(experiment_id),
            success="true",
            outputs=json.dumps([{"sample_type": "SA", "name": "by-hand"}]),
            r_reading="0.6",
        )
        assert response.status == 200
        view = msg_lab.engine.workflow_view(workflow["workflow_id"])
        assert view.tasks["a"].state == "completed"
        assert msg_lab.db.get("A", experiment_id)["reading"] == 0.6

    def test_abort_clears_worklist_with_notification(self, msg_lab):
        human = self.make_human(msg_lab)
        msg_lab.define(PatternBuilder("p").task("a", experiment_type="A"))
        workflow = msg_lab.engine.start_workflow("p")
        for request in msg_lab.engine.pending_authorizations():
            msg_lab.engine.respond_authorization(request["auth_id"], True)
        msg_lab.run()
        experiment_id = next(iter(human.worklist))
        msg_lab.engine.abort_instance(experiment_id)
        msg_lab.run()
        assert experiment_id not in human.worklist
        assert any(
            "cancelled" in mail.subject
            for mail in msg_lab.email.inbox("tech@lab")
        )

    def test_authorization_response_over_message_bus(self, msg_lab):
        from repro.core.persistence import authorize_agent

        human = self.make_human(msg_lab)
        authorize_agent(msg_lab.db, "tech", "B")  # human may authorize B too
        msg_lab.define(
            PatternBuilder("gate").task(
                "a", experiment_type="A", requires_authorization=True
            )
        )
        msg_lab.engine.start_workflow("gate")
        msg_lab.run()
        assert human.authorization_requests
        auth_id = int(human.authorization_requests[0]["auth_id"])
        human.respond_authorization(auth_id, True)
        msg_lab.run()
        assert msg_lab.engine.pending_authorizations() == []
        stored = msg_lab.db.get("WFAuthorization", auth_id)
        assert stored["status"] == "granted"
        assert stored["decided_by"] == "tech"


class TestAnalysisProgram:
    def test_default_compute_improves_with_quality_and_count(self):
        low = default_compute([{"quality": 0.2}])
        high = default_compute([{"quality": 0.9}])
        assert high["score"] > low["score"]
        one = default_compute([{"quality": 0.8}])
        two = default_compute([{"quality": 0.8}, {"quality": 0.8}])
        assert two["score"] > one["score"]

    def test_no_inputs_fails_when_required(self, msg_lab):
        agent = AnalysisProgramAgent(
            AgentSpec("prog", "program"), msg_lab.broker
        )
        result = agent.execute(1, [])
        assert result.success is False

    def test_no_inputs_ok_when_not_required(self, msg_lab):
        agent = AnalysisProgramAgent(
            AgentSpec("prog", "program"),
            msg_lab.broker,
            require_inputs=False,
        )
        result = agent.execute(1, [])
        assert result.success is True

    def test_custom_compute_function(self, msg_lab):
        agent = AnalysisProgramAgent(
            AgentSpec("prog", "program"),
            msg_lab.broker,
            compute=lambda samples: {"hits": len(samples)},
        )
        result = agent.execute(1, [{"sample_id": 1}, {"sample_id": 2}])
        assert result.result_values == {"hits": 2}
        assert result.chosen_input_ids == [1, 2]

    def test_program_over_messaging(self, msg_lab):
        msg_lab.db.insert(
            "Sample", {"type_name": "SB", "name": "in", "quality": 0.9}
        )
        msg_lab.db.insert("SB", {"sample_id": 1})
        msg_lab.register(
            AnalysisProgramAgent(
                AgentSpec("blast", "program"),
                msg_lab.broker,
                # Map the score onto the experiment type's real column.
                compute=lambda samples: {
                    "reading": default_compute(samples)["score"]
                },
                produces=[{"sample_type": "SA", "name_prefix": "hit"}],
            ),
            "A",
        )
        msg_lab.define(PatternBuilder("p").task("a", experiment_type="A"))
        workflow = msg_lab.engine.start_workflow("p")
        for request in msg_lab.engine.pending_authorizations():
            msg_lab.engine.respond_authorization(request["auth_id"], True)
        msg_lab.run()
        view = msg_lab.engine.workflow_view(workflow["workflow_id"])
        assert view.tasks["a"].state == "completed"
        produced = msg_lab.db.select("Sample", order_by="sample_id")[-1]
        assert produced["type_name"] == "SA"
