"""The template agent's message pump and the quiescence runner."""

from __future__ import annotations

import pytest

from repro.agents import TemplateAgent
from repro.agents.base import AgentResult
from repro.agents.runtime import run_until_quiescent
from repro.core.dispatch import ENGINE_QUEUE, KIND_ABORT, KIND_DISPATCH
from repro.core.spec import AgentSpec
from repro.errors import AgentError
from repro.messaging import Connection, MessageBroker
from repro.xmlbridge import RelationalDocument


def dispatch_message(broker, queue, experiment_id=1):
    producer = Connection(broker).create_producer(queue)
    body = RelationalDocument("task-input", experiment_id=str(experiment_id)).to_xml()
    producer.send(
        body,
        headers={"kind": KIND_DISPATCH, "experiment_id": experiment_id},
    )
    return producer


class EchoAgent(TemplateAgent):
    kind = "program"

    def execute(self, experiment_id, native):
        return AgentResult(success=True, note=f"did {experiment_id}")


class BrokenAgent(TemplateAgent):
    kind = "program"

    def execute(self, experiment_id, native):
        raise AgentError("machine on fire")


class TestTemplateAgent:
    def test_unimplemented_execute_reports_failure(self):
        broker = MessageBroker()
        agent = TemplateAgent(AgentSpec("base", "program"), broker)
        dispatch_message(broker, "agent.base")
        agent.step()
        # The dispatch failed but was converted into a failure result.
        consumer = Connection(broker).create_consumer(ENGINE_QUEUE)
        kinds = [m.headers["kind"] for m in consumer.drain()]
        assert "task.result" in kinds
        assert agent.errors

    def test_started_then_result_sent(self):
        broker = MessageBroker()
        agent = EchoAgent(AgentSpec("echo", "program"), broker)
        dispatch_message(broker, "agent.echo", experiment_id=7)
        agent.step()
        consumer = Connection(broker).create_consumer(ENGINE_QUEUE)
        kinds = [m.headers["kind"] for m in consumer.drain()]
        assert kinds == ["task.started", "task.result"]

    def test_agent_failure_sends_unsuccessful_result(self):
        broker = MessageBroker()
        agent = BrokenAgent(AgentSpec("broken", "program"), broker)
        dispatch_message(broker, "agent.broken", experiment_id=3)
        agent.step()
        consumer = Connection(broker).create_consumer(ENGINE_QUEUE)
        messages = consumer.drain()
        result = [m for m in messages if m.headers["kind"] == "task.result"]
        assert result
        from repro.agents.protocol import parse_result_xml

        parsed = parse_result_xml(result[0].body)
        assert parsed.success is False
        assert "machine on fire" in parsed.note

    def test_abort_before_dispatch_suppresses_work(self):
        broker = MessageBroker()
        agent = EchoAgent(AgentSpec("echo", "program"), broker)
        producer = Connection(broker).create_producer("agent.echo")
        producer.send("", headers={"kind": KIND_ABORT, "experiment_id": 9})
        dispatch_message(broker, "agent.echo", experiment_id=9)
        agent.run_until_idle()
        consumer = Connection(broker).create_consumer(ENGINE_QUEUE)
        assert consumer.drain() == []  # neither started nor result

    def test_unknown_message_recorded(self):
        broker = MessageBroker()
        agent = EchoAgent(AgentSpec("echo", "program"), broker)
        Connection(broker).create_producer("agent.echo").send(
            "", headers={"kind": "mystery"}
        )
        agent.step()
        assert agent.errors and agent.errors[0][0] == "unknown"

    def test_step_returns_false_when_idle(self):
        broker = MessageBroker()
        agent = EchoAgent(AgentSpec("echo", "program"), broker)
        assert agent.step() is False

    def test_close_requeues(self):
        broker = MessageBroker()
        agent = EchoAgent(AgentSpec("echo", "program"), broker)
        dispatch_message(broker, "agent.echo")
        agent.close()
        assert broker.queue_depth("agent.echo") == 1


class TestRunUntilQuiescent:
    def test_raises_on_livelock(self, msg_lab):
        """Two agents ping-ponging messages forever must be detected."""

        class PingAgent(TemplateAgent):
            kind = "program"

            def __init__(self, spec, broker, peer_queue):
                super().__init__(spec, broker)
                self.peer = self.connection.create_producer(peer_queue)

            def on_unknown(self, message):
                self.peer.send("", headers={"kind": "ping"})

        broker = msg_lab.broker
        ping = PingAgent(AgentSpec("ping", "program"), broker, "agent.pong")
        pong = PingAgent(AgentSpec("pong", "program"), broker, "agent.ping")
        Connection(broker).create_producer("agent.ping").send(
            "", headers={"kind": "ping"}
        )
        with pytest.raises(AgentError, match="did not quiesce"):
            run_until_quiescent(msg_lab.manager, [ping, pong], max_rounds=5)

    def test_returns_total_messages_moved(self, msg_lab):
        assert run_until_quiescent(msg_lab.manager, []) == 0
