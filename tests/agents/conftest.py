"""Fixtures for agent-framework tests: a full lab with messaging."""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro.agents import AgentManager, EmailTransport
from repro.core import PatternBuilder, WorkflowBean, install_workflow_support
from repro.core.persistence import authorize_agent, register_agent, save_pattern
from repro.core.spec import AgentSpec
from repro.messaging import MessageBroker
from repro.minidb.schema import Column
from repro.minidb.types import ColumnType
from repro.weblims import ExpDB, build_expdb
from repro.weblims.schema_setup import (
    add_experiment_type,
    add_sample_type,
    declare_experiment_io,
)


@dataclass
class MessagingLab:
    app: ExpDB
    engine: WorkflowBean
    broker: MessageBroker
    manager: AgentManager
    email: EmailTransport
    agents: list = field(default_factory=list)

    @property
    def db(self):
        return self.app.db

    def register(self, agent, *types):
        register_agent(self.db, agent.spec)
        for experiment_type in types:
            authorize_agent(self.db, agent.spec.name, experiment_type)
        self.agents.append(agent)
        return agent

    def define(self, builder: PatternBuilder):
        pattern = builder.build(db=self.db)
        save_pattern(self.db, pattern)
        return pattern

    def run(self):
        from repro.agents import run_until_quiescent

        return run_until_quiescent(self.manager, self.agents)


@pytest.fixture
def msg_lab() -> MessagingLab:
    app = build_expdb()
    broker = MessageBroker()
    email = EmailTransport()
    manager = AgentManager(app.db, broker, email=email)
    engine = install_workflow_support(app, dispatcher=manager)
    manager.attach_engine(engine)
    add_experiment_type(app.db, "A", [Column("reading", ColumnType.REAL)])
    add_experiment_type(app.db, "B", [])
    add_sample_type(app.db, "SA", [])
    add_sample_type(app.db, "SB", [])
    declare_experiment_io(app.db, "A", "SB", "input")
    declare_experiment_io(app.db, "A", "SA", "output")
    declare_experiment_io(app.db, "B", "SA", "input")
    return MessagingLab(
        app=app, engine=engine, broker=broker, manager=manager, email=email
    )


@pytest.fixture
def robot_spec():
    return AgentSpec("test-robot", "robot")
