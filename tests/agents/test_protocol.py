"""The XML task-result protocol between agents and the manager."""

from __future__ import annotations

import pytest

from repro.agents.protocol import TaskResult, build_result_xml, parse_result_xml
from repro.errors import AgentFormatError


def roundtrip(result: TaskResult) -> TaskResult:
    return parse_result_xml(build_result_xml(result))


class TestRoundtrip:
    def test_minimal_failure_result(self):
        result = roundtrip(TaskResult(experiment_id=7, success=False))
        assert result.experiment_id == 7
        assert result.success is False
        assert result.outputs == []
        assert result.chosen_input_ids == []

    def test_full_result(self):
        original = TaskResult(
            experiment_id=42,
            success=True,
            outputs=[
                {
                    "sample_type": "PcrProduct",
                    "name": "pcr-42",
                    "quality": 0.93,
                    "values": {"length_bp": 1200, "pure": True},
                },
                {"sample_type": "Colony"},
            ],
            chosen_input_ids=[3, 9],
            result_values={"cycles": 30, "ratio": 2.5, "label": "ok"},
            note="all good",
        )
        result = roundtrip(original)
        assert result.experiment_id == 42
        assert result.success is True
        assert result.chosen_input_ids == [3, 9]
        assert result.outputs[0]["quality"] == 0.93
        assert result.outputs[0]["values"] == {"length_bp": 1200, "pure": True}
        assert result.outputs[1] == {"sample_type": "Colony"}
        assert result.result_values == {
            "cycles": 30,
            "ratio": 2.5,
            "label": "ok",
        }
        assert result.note == "all good"

    def test_null_values_roundtrip(self):
        original = TaskResult(
            experiment_id=1,
            success=True,
            result_values={"maybe": None},
        )
        assert roundtrip(original).result_values == {"maybe": None}

    def test_boolean_encoded_as_boolean_not_integer(self):
        original = TaskResult(
            experiment_id=1, success=True, result_values={"flag": True}
        )
        value = roundtrip(original).result_values["flag"]
        assert value is True

    def test_special_characters(self):
        original = TaskResult(
            experiment_id=1,
            success=True,
            result_values={"label": "<&>'\""},
            note="a <note> & more",
        )
        result = roundtrip(original)
        assert result.result_values["label"] == "<&>'\""
        assert result.note == "a <note> & more"


class TestParsingErrors:
    def test_malformed_xml(self):
        with pytest.raises(AgentFormatError):
            parse_result_xml("<task-result")

    def test_wrong_root(self):
        with pytest.raises(AgentFormatError):
            parse_result_xml("<other/>")

    def test_missing_experiment_id(self):
        with pytest.raises(AgentFormatError):
            parse_result_xml('<task-result success="true"/>')

    def test_output_without_sample_type(self):
        with pytest.raises(AgentFormatError):
            parse_result_xml(
                '<task-result experiment-id="1" success="true">'
                "<output/></task-result>"
            )

    def test_unknown_value_type(self):
        with pytest.raises(AgentFormatError):
            parse_result_xml(
                '<task-result experiment-id="1" success="true">'
                '<result-value column="x" type="blob">z</result-value>'
                "</task-result>"
            )

    def test_unencodable_python_value_rejected(self):
        with pytest.raises(AgentFormatError):
            build_result_xml(
                TaskResult(
                    experiment_id=1,
                    success=True,
                    result_values={"bad": object()},
                )
            )
