"""The liquid-handling robot agent and its CSV format."""

from __future__ import annotations

import pytest

from repro.agents import LiquidHandlingRobotAgent
from repro.agents.robot import CSV_HEADER, document_to_csv, parse_csv
from repro.core import PatternBuilder
from repro.core.spec import AgentSpec
from repro.errors import AgentError, AgentFormatError
from repro.xmlbridge import RelationalDocument


class TestCsvFormat:
    def build_document(self, db):
        document = RelationalDocument(
            "task-input", experiment_id="42", task="pcr"
        )
        document.add_table_from_db(
            db,
            "Sample",
            [
                {
                    "sample_id": 1,
                    "type_name": "SA",
                    "name": "s1",
                    "created": None,
                    "quality": 0.9,
                    "description": None,
                }
            ],
        )
        return document

    def test_document_to_csv_shape(self, msg_lab):
        csv_text = document_to_csv(self.build_document(msg_lab.db))
        lines = csv_text.splitlines()
        assert lines[0] == "# experiment,42,pcr"
        assert lines[1] == CSV_HEADER
        assert lines[2] == "1,SA,s1,0.9"

    def test_csv_roundtrip(self, msg_lab):
        csv_text = document_to_csv(self.build_document(msg_lab.db))
        experiment_id, samples = parse_csv(csv_text)
        assert experiment_id == 42
        assert samples == [
            {"sample_id": 1, "sample_type": "SA", "name": "s1", "quality": 0.9}
        ]

    def test_parse_rejects_missing_header(self):
        with pytest.raises(AgentFormatError):
            parse_csv("sample_id,sample_type,name,quality\n1,SA,s,0.9")

    def test_parse_rejects_bad_field_count(self):
        with pytest.raises(AgentFormatError):
            parse_csv(f"# experiment,1,x\n{CSV_HEADER}\n1,SA,s")

    def test_parse_rejects_bad_experiment_id(self):
        with pytest.raises(AgentFormatError):
            parse_csv(f"# experiment,NaN,x\n{CSV_HEADER}")


class TestRobotExecution:
    def make_robot(self, msg_lab, **kwargs):
        spec = AgentSpec("robo", "robot")
        defaults = dict(
            produces=[{"sample_type": "SA", "name_prefix": "out"}],
            failure_rate=0.0,
            seed=3,
        )
        defaults.update(kwargs)
        return LiquidHandlingRobotAgent(spec, msg_lab.broker, **defaults)

    def test_deterministic_under_seed(self, msg_lab):
        robot_a = self.make_robot(msg_lab)
        robot_b = self.make_robot(msg_lab)
        csv_text = f"# experiment,5,t\n{CSV_HEADER}\n1,SA,s,0.9"
        result_a = robot_a.execute(5, csv_text)
        result_b = robot_b.execute(5, csv_text)
        assert result_a.outputs == result_b.outputs

    def test_failure_injection(self, msg_lab):
        robot = self.make_robot(msg_lab, failure_rate=1.0)
        csv_text = f"# experiment,5,t\n{CSV_HEADER}"
        result = robot.execute(5, csv_text)
        assert result.success is False
        assert robot.failures == 1

    def test_chooses_best_inputs(self, msg_lab):
        robot = self.make_robot(msg_lab, inputs_to_use=2)
        rows = "\n".join(
            f"{i},SA,s{i},{q}" for i, q in [(1, 0.3), (2, 0.9), (3, 0.7)]
        )
        csv_text = f"# experiment,5,t\n{CSV_HEADER}\n{rows}"
        result = robot.execute(5, csv_text)
        assert sorted(result.chosen_input_ids) == [2, 3]

    def test_output_naming_and_quality_bounds(self, msg_lab):
        robot = self.make_robot(msg_lab)
        csv_text = f"# experiment,7,t\n{CSV_HEADER}\n1,SA,s,1.0"
        result = robot.execute(7, csv_text)
        output = result.outputs[0]
        assert output["name"] == "out-7"
        assert 0.0 <= output["quality"] <= 1.0

    def test_mismatched_experiment_id_rejected(self, msg_lab):
        robot = self.make_robot(msg_lab)
        csv_text = f"# experiment,5,t\n{CSV_HEADER}"
        with pytest.raises(AgentFormatError):
            robot.execute(6, csv_text)

    def test_result_fields_evaluated(self, msg_lab):
        robot = self.make_robot(
            msg_lab,
            result_fields={
                "reading": lambda rng: 0.5,
                "notes": "static",
            },
        )
        csv_text = f"# experiment,5,t\n{CSV_HEADER}"
        result = robot.execute(5, csv_text)
        assert result.result_values == {"reading": 0.5, "notes": "static"}

    def test_kind_mismatch_rejected(self, msg_lab):
        with pytest.raises(AgentError):
            LiquidHandlingRobotAgent(
                AgentSpec("h", "human"), msg_lab.broker, produces=[]
            )


class TestRobotOverMessaging:
    def test_end_to_end_dispatch(self, msg_lab):
        robot = msg_lab.register(
            LiquidHandlingRobotAgent(
                AgentSpec("bot-a", "robot"),
                msg_lab.broker,
                produces=[{"sample_type": "SA"}],
            ),
            "A",
        )
        msg_lab.define(
            PatternBuilder("solo").task("a", experiment_type="A")
        )
        workflow = msg_lab.engine.start_workflow("solo")
        for request in msg_lab.engine.pending_authorizations():
            msg_lab.engine.respond_authorization(request["auth_id"], True)
        msg_lab.run()
        view = msg_lab.engine.workflow_view(workflow["workflow_id"])
        assert view.tasks["a"].state == "completed"
        assert robot.runs == 1
        assert msg_lab.db.count("Sample") == 1
