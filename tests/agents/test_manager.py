"""The AgentManager: choice, dispatch, input extraction, inbound pump."""

from __future__ import annotations

import pytest

from repro.agents import LiquidHandlingRobotAgent
from repro.core import PatternBuilder
from repro.core.dispatch import ENGINE_QUEUE, KIND_DISPATCH, KIND_RESULT
from repro.core.spec import AgentSpec
from repro.errors import DispatchError
from repro.messaging import Connection
from repro.resilience import NO_RETRY
from repro.xmlbridge import RelationalDocument


class TestAgentChoice:
    def test_round_robin_across_authorized_agents(self, msg_lab):
        for name in ("bot-1", "bot-2"):
            msg_lab.register(
                LiquidHandlingRobotAgent(
                    AgentSpec(name, "robot"),
                    msg_lab.broker,
                    produces=[{"sample_type": "SA"}],
                ),
                "A",
            )
        picks = [msg_lab.manager.choose_agent("A")["name"] for __ in range(4)]
        assert picks == ["bot-1", "bot-2", "bot-1", "bot-2"]

    def test_no_agent_returns_none(self, msg_lab):
        assert msg_lab.manager.choose_agent("A") is None
        assert msg_lab.manager.choose_agent(None) is None


class TestTaskInputExtraction:
    def test_document_contains_experiment_and_inputs(self, msg_lab):
        msg_lab.register(
            LiquidHandlingRobotAgent(
                AgentSpec("bot", "robot"),
                msg_lab.broker,
                produces=[{"sample_type": "SA"}],
            ),
            "A",
        )
        # Stock SB sample is a required input of A.
        msg_lab.db.insert(
            "Sample", {"type_name": "SB", "name": "stock", "quality": 0.8}
        )
        msg_lab.db.insert("SB", {"sample_id": 1})
        msg_lab.define(PatternBuilder("p").task("a", experiment_type="A"))
        msg_lab.engine.start_workflow("p")
        for request in msg_lab.engine.pending_authorizations():
            msg_lab.engine.respond_authorization(request["auth_id"], True)

        # Inspect the robot's queue before the robot consumes it.
        connection = Connection(msg_lab.broker)
        consumer = connection.create_consumer("agent.bot")
        message = consumer.receive()
        assert message.headers["kind"] == KIND_DISPATCH
        document = RelationalDocument.from_xml(message.body)
        assert "A" in document.tables()  # the experiment record
        assert "SB" in document.tables()  # candidate stock input
        experiment_row = document.rows("A")[0]
        assert experiment_row["type_name"] == "A"
        sample_row = document.rows("SB")[0]
        assert sample_row["name"] == "stock"

    def test_dispatch_headers(self, msg_lab):
        msg_lab.register(
            LiquidHandlingRobotAgent(
                AgentSpec("bot", "robot"),
                msg_lab.broker,
                produces=[{"sample_type": "SA"}],
            ),
            "A",
        )
        msg_lab.define(PatternBuilder("p").task("a", experiment_type="A"))
        workflow = msg_lab.engine.start_workflow("p")
        for request in msg_lab.engine.pending_authorizations():
            msg_lab.engine.respond_authorization(request["auth_id"], True)
        consumer = Connection(msg_lab.broker).create_consumer("agent.bot")
        message = consumer.receive()
        assert message.headers["workflow_id"] == workflow["workflow_id"]
        assert message.headers["task"] == "a"
        assert message.headers["experiment_type"] == "A"
        assert message.headers["agent"] == "bot"


class TestInboundPump:
    def test_pump_without_engine_rejected(self, msg_lab):
        from repro.agents import AgentManager

        orphan = AgentManager(msg_lab.db, msg_lab.broker)
        with pytest.raises(DispatchError):
            orphan.pump()

    def test_poison_message_recorded_not_fatal(self, msg_lab):
        msg_lab.broker.set_retry_policy(ENGINE_QUEUE, NO_RETRY)
        producer = Connection(msg_lab.broker).create_producer(ENGINE_QUEUE)
        producer.send("<garbage", headers={"kind": KIND_RESULT})
        producer.send("", headers={"kind": "mystery.kind"})
        processed = msg_lab.manager.pump()
        assert processed == 2
        rejected = msg_lab.engine.events.of_kind("message.rejected")
        assert len(rejected) == 2
        assert {event["delivery_count"] for event in rejected} == {1}
        assert all(event["message_id"] for event in rejected)
        assert msg_lab.manager.messages_rejected == 2
        # The queue is drained; nothing is stuck — and nothing dropped:
        # both poison messages sit in the dead-letter quarantine.
        assert msg_lab.broker.queue_depth(ENGINE_QUEUE) == 0
        assert msg_lab.broker.dlq_depth() == 2
        reasons = [entry["reason"] for entry in msg_lab.broker.dead_letters()]
        assert len(reasons) == 2 and all(reasons)

    def test_result_with_unknown_result_column_rejected_not_fatal(self, msg_lab):
        """An agent reporting values for a nonexistent column is a
        schema-level (database) error — it must reject that message and
        roll back cleanly, never wedge the pump or corrupt state."""
        robot = msg_lab.register(
            LiquidHandlingRobotAgent(
                AgentSpec("bot", "robot"),
                msg_lab.broker,
                produces=[{"sample_type": "SA"}],
                result_fields={"no_such_column": 1},
            ),
            "A",
        )
        msg_lab.broker.set_retry_policy(ENGINE_QUEUE, NO_RETRY)
        msg_lab.define(PatternBuilder("p").task("a", experiment_type="A"))
        workflow = msg_lab.engine.start_workflow("p")
        for request in msg_lab.engine.pending_authorizations():
            msg_lab.engine.respond_authorization(request["auth_id"], True)
        msg_lab.run()
        rejected = msg_lab.engine.events.of_kind("message.rejected")
        assert rejected and "no_such_column" in rejected[-1]["error"]
        assert msg_lab.broker.queue_depth(ENGINE_QUEUE) == 0
        # Quarantined for inspection, not silently dropped.
        assert msg_lab.broker.dlq_depth() == 1
        # The failed result rolled back atomically: no orphan samples.
        view = msg_lab.engine.workflow_view(workflow["workflow_id"])
        assert view.tasks["a"].instances[0].state == "active"
        assert msg_lab.db.count("Sample") == 0
        del robot

    def test_stale_result_after_restart_tolerated(self, msg_lab):
        """A robot's result arriving after the task was restarted is
        acknowledged and recorded as stale, never an error."""
        robot = msg_lab.register(
            LiquidHandlingRobotAgent(
                AgentSpec("bot", "robot"),
                msg_lab.broker,
                produces=[{"sample_type": "SA"}],
            ),
            "A",
        )
        msg_lab.define(PatternBuilder("p").task("a", experiment_type="A"))
        workflow = msg_lab.engine.start_workflow("p")
        for request in msg_lab.engine.pending_authorizations():
            msg_lab.engine.respond_authorization(request["auth_id"], True)
        # Robot executes and sends its result...
        robot.run_until_idle()
        # ...but the user restarts the task before the manager pumps.
        msg_lab.engine.restart_task(workflow["workflow_id"], "a")
        msg_lab.manager.pump()
        stale = msg_lab.engine.events.of_kind("message.stale")
        assert stale
        assert msg_lab.broker.queue_depth(ENGINE_QUEUE) == 0


class TestEmailNotifications:
    def test_authorization_email_sent_to_human_contact(self, msg_lab):
        from repro.core.persistence import authorize_agent, register_agent

        register_agent(
            msg_lab.db, AgentSpec("pi", "human", contact="pi@lab.example")
        )
        authorize_agent(msg_lab.db, "pi", "A")
        msg_lab.define(
            PatternBuilder("p").task(
                "a", experiment_type="A", requires_authorization=True
            )
        )
        msg_lab.engine.start_workflow("p")
        inbox = msg_lab.email.inbox("pi@lab.example")
        assert len(inbox) == 1
        assert "authorization" in inbox[0].subject
