"""Broker journal segmentation and compaction (durability v2).

The journal must not grow without bound under steady send/ack churn:
once the tail passes ``compact_every`` records, the fully-acked history
is folded into a compaction snapshot and its segments are unlinked.
Compaction must preserve every queue's live contents exactly —
including delivery counts, which arm exactly-once redelivery checks.
"""

from __future__ import annotations

import pytest

from repro.errors import FaultInjected
from repro.messaging import MessageBroker
from repro.resilience import FaultPlan


@pytest.fixture
def journal(tmp_path):
    return tmp_path / "broker.journal"


def churn_broker(journal, **kwargs) -> MessageBroker:
    kwargs.setdefault("journal_segment_bytes", 1024)
    kwargs.setdefault("journal_compact_every", 32)
    return MessageBroker(journal, **kwargs)


class TestBoundedDisk:
    def test_steady_churn_keeps_the_journal_bounded(self, journal):
        broker = churn_broker(journal)
        broker.declare_queue("q")
        peak = 0
        for i in range(400):
            broker.send("q", f"m{i}")
            message = broker.receive("q")
            broker.ack(message)
            peak = max(peak, broker.journal_info()["size_bytes"])
        info = broker.journal_info()
        assert info["compactions"] >= 2
        # Fully-acked history is garbage-collected: the journal ends
        # far smaller than the 1200 records that passed through it.
        assert info["size_bytes"] < peak
        assert info["records_since_checkpoint"] <= 3 * 32

    def test_compaction_preserves_pending_messages(self, journal):
        broker = churn_broker(journal)
        broker.declare_queue("keep")
        broker.declare_queue("churn")
        survivors = [f"keep{i}" for i in range(5)]
        for body in survivors:
            broker.send("keep", body)
        for i in range(200):  # drive compaction past the survivors
            broker.send("churn", f"c{i}")
            broker.ack(broker.receive("churn"))
        assert broker.journal_info()["compactions"] >= 1
        broker.close()

        reopened = MessageBroker(journal)
        bodies = []
        while (message := reopened.receive("keep")) is not None:
            bodies.append(message.body)
        assert bodies == survivors
        assert reopened.receive("churn") is None

    def test_message_ids_monotonic_across_compaction(self, journal):
        broker = churn_broker(journal)
        broker.declare_queue("q")
        last = 0
        for i in range(120):
            message = broker.send("q", f"m{i}")
            assert message.message_id > last
            last = message.message_id
            broker.ack(broker.receive("q"))
        broker.close()
        reopened = MessageBroker(journal)
        assert reopened.send("q", "next").message_id > last


class TestDeliveryCountSurvival:
    def test_delivery_count_survives_compaction_and_restart(self, journal):
        """An unacked delivered message keeps its delivery count through
        a compaction snapshot — redelivery stays armed after restart."""
        broker = churn_broker(journal)
        broker.declare_queue("hot")
        broker.send("hot", "sticky")
        taken = broker.receive("hot")  # delivery 1, never acked
        assert taken.delivery_count == 1
        for i in range(100):  # churn until compaction folds history
            broker.send("hot", f"c{i}")
            broker.ack(broker.receive("hot"))
        assert broker.journal_info()["compactions"] >= 1
        broker.close()

        reopened = MessageBroker(journal)
        redelivered = reopened.receive("hot")
        assert redelivered.body == "sticky"
        assert redelivered.delivery_count == 2
        assert redelivered.redelivered


class TestCompactionCrash:
    @pytest.mark.parametrize(
        "point",
        ["journal.compact", "journal.compact.swap", "journal.compact.gc"],
    )
    def test_crash_during_compaction_preserves_state(self, journal, point):
        broker = churn_broker(journal)
        broker.declare_queue("live")
        broker.declare_queue("churn")
        pending = [f"live{i}" for i in range(4)]
        for body in pending:
            broker.send("live", body)
        plan = FaultPlan(seed=21).rule(point, "crash", times=1)
        broker.attach_faults(plan)
        with pytest.raises(FaultInjected):
            for i in range(200):
                broker.send("churn", f"c{i}")
                broker.ack(broker.receive("churn"))
        assert plan.fired_points() == [point]

        reopened = MessageBroker(journal)
        bodies = []
        while (message := reopened.receive("live")) is not None:
            bodies.append(message.body)
        # The compaction crash loses nothing and invents nothing: the
        # live queue is intact, and the churn queue holds at most the
        # single send that was in flight when the crash hit.
        assert bodies == pending
        leftovers = []
        while (message := reopened.receive("churn")) is not None:
            leftovers.append(message.body)
        assert len(leftovers) <= 1

    def test_interrupted_compaction_leaves_broker_usable(self, journal):
        broker = churn_broker(journal)
        broker.declare_queue("q")
        plan = FaultPlan(seed=22).rule("journal.compact", "crash", times=1)
        broker.attach_faults(plan)
        with pytest.raises(FaultInjected):
            for i in range(200):
                broker.send("q", f"c{i}")
                broker.ack(broker.receive("q"))
        broker.attach_faults(None)
        broker.send("q", "onward")
        assert broker.compact_journal() is True
        assert broker.receive("q").body == "onward"
