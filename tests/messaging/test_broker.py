"""Broker semantics: queues, delivery, acks, redelivery."""

from __future__ import annotations

import threading

import pytest

from repro.errors import AcknowledgeError, UnknownQueueError
from repro.messaging import MessageBroker


@pytest.fixture
def broker():
    b = MessageBroker()
    b.declare_queue("q")
    return b


class TestQueues:
    def test_declare_is_idempotent(self, broker):
        broker.declare_queue("q")
        assert broker.queue_names() == ["q"]

    def test_unknown_queue_rejected(self, broker):
        with pytest.raises(UnknownQueueError):
            broker.send("ghost", "x")
        with pytest.raises(UnknownQueueError):
            broker.receive("ghost")

    def test_depth_counts_waiting_only(self, broker):
        broker.send("q", "a")
        broker.send("q", "b")
        assert broker.queue_depth("q") == 2
        broker.receive("q")
        assert broker.queue_depth("q") == 1
        assert broker.in_flight_count() == 1


class TestDelivery:
    def test_fifo_order(self, broker):
        for body in ("one", "two", "three"):
            broker.send("q", body)
        received = [broker.receive("q").body for __ in range(3)]
        assert received == ["one", "two", "three"]

    def test_receive_empty_returns_none(self, broker):
        assert broker.receive("q", timeout=0.0) is None

    def test_message_ids_monotonic(self, broker):
        first = broker.send("q", "a")
        second = broker.send("q", "b")
        assert second.message_id > first.message_id

    def test_headers_carried(self, broker):
        broker.send("q", "body", headers={"kind": "test", "n": 7})
        message = broker.receive("q")
        assert message.headers == {"kind": "test", "n": 7}

    def test_blocking_receive_wakes_on_send(self, broker):
        results = []

        def consume():
            results.append(broker.receive("q", timeout=5.0))

        thread = threading.Thread(target=consume)
        thread.start()
        broker.send("q", "wake")
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert results[0].body == "wake"

    def test_timed_receive_gives_up(self, broker):
        assert broker.receive("q", timeout=0.05) is None


class TestAcknowledgement:
    def test_ack_removes_permanently(self, broker):
        broker.send("q", "a")
        message = broker.receive("q")
        broker.ack(message)
        assert broker.in_flight_count() == 0
        assert broker.receive("q") is None

    def test_double_ack_rejected(self, broker):
        broker.send("q", "a")
        message = broker.receive("q")
        broker.ack(message)
        with pytest.raises(AcknowledgeError):
            broker.ack(message)

    def test_ack_unreceived_rejected(self, broker):
        message = broker.send("q", "a")
        with pytest.raises(AcknowledgeError):
            broker.ack(message)

    def test_requeue_puts_message_first(self, broker):
        broker.send("q", "first")
        broker.send("q", "second")
        message = broker.receive("q")
        broker.requeue(message)
        assert broker.receive("q").body == "first"

    def test_redelivered_flag_set_on_second_delivery(self, broker):
        broker.send("q", "a")
        message = broker.receive("q")
        assert not message.redelivered
        broker.requeue(message)
        again = broker.receive("q")
        assert again.redelivered
        assert broker.stats.redeliveries == 1

    def test_requeue_all_in_flight_preserves_order(self, broker):
        for body in ("a", "b", "c"):
            broker.send("q", body)
        taken = [broker.receive("q") for __ in range(3)]
        assert [m.body for m in taken] == ["a", "b", "c"]
        assert broker.requeue_all_in_flight() == 3
        assert [broker.receive("q").body for __ in range(3)] == ["a", "b", "c"]


class TestStats:
    def test_counters(self, broker):
        broker.send("q", "a")
        broker.send("q", "b")
        message = broker.receive("q")
        broker.ack(message)
        assert broker.stats.sends == 2
        assert broker.stats.deliveries == 1
        assert broker.stats.acks == 1
        assert broker.stats.per_queue_sends == {"q": 2}
        assert broker.stats.persistent_sends == 0  # no journal
