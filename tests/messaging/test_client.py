"""Connections, producers and consumers (the JMS-style client API)."""

from __future__ import annotations

import pytest

from repro.errors import AcknowledgeError, ConnectionClosedError
from repro.messaging import Connection, MessageBroker


@pytest.fixture
def broker():
    return MessageBroker()


class TestConnectionLifecycle:
    def test_producers_declare_queues(self, broker):
        connection = Connection(broker)
        connection.create_producer("new-queue")
        assert "new-queue" in broker.queue_names()

    def test_closed_connection_rejects_factories(self, broker):
        connection = Connection(broker)
        connection.close()
        with pytest.raises(ConnectionClosedError):
            connection.create_producer("q")
        with pytest.raises(ConnectionClosedError):
            connection.create_consumer("q")

    def test_send_on_closed_connection_rejected(self, broker):
        connection = Connection(broker)
        producer = connection.create_producer("q")
        connection.close()
        with pytest.raises(ConnectionClosedError):
            producer.send("late")

    def test_close_is_idempotent(self, broker):
        connection = Connection(broker)
        connection.close()
        connection.close()


class TestProduceConsume:
    def test_roundtrip(self, broker):
        connection = Connection(broker)
        producer = connection.create_producer("q")
        consumer = connection.create_consumer("q")
        producer.send("hello", headers={"k": "v"})
        message = consumer.receive()
        assert message.body == "hello"
        consumer.ack(message)
        assert consumer.unacked_count == 0

    def test_competing_consumers_split_messages(self, broker):
        connection = Connection(broker)
        producer = connection.create_producer("q")
        consumer_a = connection.create_consumer("q")
        consumer_b = connection.create_consumer("q")
        producer.send("1")
        producer.send("2")
        first = consumer_a.receive()
        second = consumer_b.receive()
        assert {first.body, second.body} == {"1", "2"}

    def test_ack_of_foreign_message_rejected(self, broker):
        connection = Connection(broker)
        producer = connection.create_producer("q")
        consumer_a = connection.create_consumer("q")
        consumer_b = connection.create_consumer("q")
        producer.send("x")
        message = consumer_a.receive()
        with pytest.raises(AcknowledgeError):
            consumer_b.ack(message)

    def test_drain(self, broker):
        connection = Connection(broker)
        producer = connection.create_producer("q")
        consumer = connection.create_consumer("q")
        for index in range(5):
            producer.send(str(index))
        drained = consumer.drain()
        assert [m.body for m in drained] == ["0", "1", "2", "3", "4"]
        assert broker.in_flight_count() == 0


class TestDisconnectedConsumers:
    def test_messages_wait_for_late_consumer(self, broker):
        """Delivery guaranteed even if partners are not connected."""
        producer_conn = Connection(broker)
        producer = producer_conn.create_producer("agent.robot")
        producer.send("while-you-were-out")

        consumer_conn = Connection(broker)
        consumer = consumer_conn.create_consumer("agent.robot")
        message = consumer.receive()
        assert message.body == "while-you-were-out"

    def test_closing_consumer_requeues_unacked(self, broker):
        connection = Connection(broker)
        producer = connection.create_producer("q")
        consumer = connection.create_consumer("q")
        producer.send("a")
        producer.send("b")
        consumer.receive()
        consumer.receive()
        consumer.close()

        fresh = Connection(broker).create_consumer("q")
        redelivered = [fresh.receive().body, fresh.receive().body]
        assert redelivered == ["a", "b"]

    def test_connection_close_cascades_to_consumers(self, broker):
        connection = Connection(broker)
        producer = Connection(broker).create_producer("q")
        consumer = connection.create_consumer("q")
        producer.send("x")
        consumer.receive()
        connection.close()
        with pytest.raises(ConnectionClosedError):
            consumer.receive()
        assert broker.queue_depth("q") == 1  # requeued
