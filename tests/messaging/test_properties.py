"""Property-based tests on the broker's delivery guarantees."""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.messaging import Connection, MessageBroker

# A scripted interleaving of producer/consumer actions.
actions = st.lists(
    st.one_of(
        st.tuples(st.just("send"), st.text(max_size=10)),
        st.tuples(st.just("receive_ack"), st.none()),
        st.tuples(st.just("receive_hold"), st.none()),
        st.tuples(st.just("crash_consumer"), st.none()),
    ),
    max_size=40,
)


@given(script=actions)
@settings(max_examples=60, deadline=None)
def test_no_message_lost_no_message_duplicated(script):
    """Under any interleaving of sends, acks, holds and consumer crashes,
    every sent message is eventually received-and-acked exactly once."""
    broker = MessageBroker()
    broker.declare_queue("q")
    connection = Connection(broker)
    producer = connection.create_producer("q")
    consumer = connection.create_consumer("q")

    sent: list[str] = []
    acked: list[str] = []
    held = []

    for action, payload in script:
        if action == "send":
            producer.send(payload)
            sent.append(payload)
        elif action == "receive_ack":
            message = consumer.receive(timeout=0.0)
            if message is not None:
                consumer.ack(message)
                acked.append(message.body)
        elif action == "receive_hold":
            message = consumer.receive(timeout=0.0)
            if message is not None:
                held.append(message)
        elif action == "crash_consumer":
            consumer.close()
            held.clear()
            consumer = connection.create_consumer("q")

    # Drain everything that remains: queued + held-but-unacked.
    for message in held:
        consumer_of = consumer if message.message_id in consumer._unacked else None
        if consumer_of is not None:
            consumer.ack(message)
            acked.append(message.body)
    while (message := consumer.receive(timeout=0.0)) is not None:
        consumer.ack(message)
        acked.append(message.body)

    assert sorted(acked) == sorted(sent)
    assert broker.in_flight_count() == 0


@given(
    bodies=st.lists(st.text(max_size=8), max_size=15),
    consume_before_crash=st.integers(min_value=0, max_value=15),
)
@settings(max_examples=40, deadline=None)
def test_journal_replay_preserves_outstanding_set(bodies, consume_before_crash):
    """After a crash, exactly the unacked messages reappear, in order."""
    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "j.journal"
        broker = MessageBroker(journal)
        broker.declare_queue("q")
        for body in bodies:
            broker.send("q", body)
        acked = []
        for __ in range(min(consume_before_crash, len(bodies))):
            message = broker.receive("q")
            broker.ack(message)
            acked.append(message.body)
        broker.close()  # crash: anything unacked must come back

        reopened = MessageBroker(journal)
        recovered = []
        while (message := reopened.receive("q")) is not None:
            recovered.append(message.body)
        assert recovered == bodies[len(acked):]
        reopened.close()
