"""Per-queue broker locking: wakeup isolation, parallel queues, group journal."""

from __future__ import annotations

import threading

import pytest

from repro.messaging import MessageBroker


@pytest.fixture
def broker() -> MessageBroker:
    b = MessageBroker()
    b.declare_queue("quiet")
    b.declare_queue("busy")
    return b


class TestWakeupIsolation:
    def test_idle_consumer_not_woken_by_other_queue_traffic(self, broker):
        """The satellite invariant: traffic on B never wakes a waiter on A."""
        consumed: list[int] = []

        def quiet_consumer() -> None:
            # Blocks on queue "quiet" the whole time "busy" is churning.
            broker.receive("quiet", timeout=0.6)

        def busy_consumer() -> None:
            while len(consumed) < 20:
                message = broker.receive("busy", timeout=0.5)
                if message is None:
                    return
                consumed.append(message.message_id)
                broker.ack(message)

        quiet = threading.Thread(target=quiet_consumer)
        busy = threading.Thread(target=busy_consumer)
        quiet.start()
        busy.start()
        for i in range(20):
            broker.send("busy", f"job-{i}")
        quiet.join()
        busy.join()

        assert len(consumed) == 20
        assert broker.queue_wakeups("busy") >= 1
        assert broker.queue_wakeups("quiet") == 0

    def test_notified_waiter_counts_one_wakeup(self, broker):
        got: list[object] = []

        def consumer() -> None:
            got.append(broker.receive("quiet", timeout=1.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        # Let the consumer reach its wait before the send notifies it.
        deadline = threading.Event()
        deadline.wait(0.05)
        broker.send("quiet", "hello")
        thread.join()

        assert got[0] is not None and got[0].body == "hello"
        assert broker.queue_wakeups("quiet") == 1

    def test_timeout_without_traffic_counts_zero_wakeups(self, broker):
        assert broker.receive("quiet", timeout=0.05) is None
        assert broker.queue_wakeups("quiet") == 0


class TestParallelQueues:
    def test_concurrent_producers_and_consumers_across_queues(self):
        broker = MessageBroker()
        queues = [f"q{i}" for i in range(4)]
        for name in queues:
            broker.declare_queue(name)
        per_queue = 25
        received: dict[str, list[str]] = {name: [] for name in queues}

        def producer(name: str) -> None:
            for i in range(per_queue):
                broker.send(name, f"{name}-{i}")

        def consumer(name: str) -> None:
            while len(received[name]) < per_queue:
                message = broker.receive(name, timeout=2.0)
                if message is None:
                    return
                received[name].append(message.body)
                broker.ack(message)

        pool = [
            threading.Thread(target=fn, args=(name,))
            for name in queues
            for fn in (producer, consumer)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        for name in queues:
            # Per-queue FIFO order survives cross-queue concurrency.
            assert received[name] == [f"{name}-{i}" for i in range(per_queue)]
        assert broker.in_flight_count() == 0


class TestGroupModeJournal:
    def test_group_policy_batches_fsyncs_and_recovers(self, tmp_path):
        journal = tmp_path / "broker.journal"
        broker = MessageBroker(
            journal, sync_policy="group", group_window_s=0.002
        )
        broker.declare_queue("work")
        senders = 6
        per_sender = 20
        barrier = threading.Barrier(senders)

        def sender(n: int) -> None:
            barrier.wait()
            for i in range(per_sender):
                broker.send("work", f"s{n}-{i}")

        pool = [
            threading.Thread(target=sender, args=(n,)) for n in range(senders)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        info = broker.journal_info()
        assert info["sync_policy"] == "group"
        assert info["appended_records"] == senders * per_sender + 1
        assert info["fsyncs"] < info["appended_records"]
        broker.close()

        reopened = MessageBroker(journal)
        assert reopened.queue_depth("work") == senders * per_sender
        bodies = set()
        while (message := reopened.receive("work")) is not None:
            bodies.add(message.body)
            reopened.ack(message)
        assert len(bodies) == senders * per_sender
        reopened.close()

    def test_ack_before_crash_stays_acked_under_group(self, tmp_path):
        journal = tmp_path / "broker.journal"
        broker = MessageBroker(journal, sync_policy="group")
        broker.declare_queue("work")
        broker.send("work", "done")
        broker.send("work", "pending")
        first = broker.receive("work")
        broker.ack(first)
        broker.close()

        reopened = MessageBroker(journal)
        assert reopened.queue_depth("work") == 1
        assert reopened.receive("work").body == "pending"
        reopened.close()
