"""Crash between deliver and ack: journal replay redelivers exactly once.

Also pins the ``receive`` timeout contract: a positive timeout is an
absolute deadline computed once, not a window that restarts on every
condition-variable wakeup.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import FaultInjected
from repro.messaging import MessageBroker
from repro.resilience import FaultPlan, RetryPolicy


class TestCrashBetweenDeliverAndAck:
    def test_redelivered_exactly_once_after_restart(self, tmp_path):
        journal = tmp_path / "broker.journal"
        broker = MessageBroker(journal)
        broker.declare_queue("q")
        broker.send("q", "in-flight", headers={"kind": "task.result"})
        broker.attach_faults(FaultPlan().rule("broker.ack", "crash", times=1))

        message = broker.receive("q")
        assert message is not None and not message.redelivered
        with pytest.raises(FaultInjected):
            broker.ack(message)  # the process dies before the ack lands
        broker.close()

        reopened = MessageBroker(journal)
        redelivered = reopened.receive("q")
        assert redelivered is not None
        assert redelivered.body == "in-flight"
        assert redelivered.redelivered is True
        assert redelivered.delivery_count == 2
        assert reopened.stats.redeliveries == 1
        assert reopened.receive("q") is None  # exactly once

        reopened.ack(redelivered)
        reopened.close()
        final = MessageBroker(journal)
        assert final.receive("q") is None
        assert final.stats.redeliveries == 0

    def test_delivery_count_accumulates_across_restarts(self, tmp_path):
        journal = tmp_path / "broker.journal"
        broker = MessageBroker(journal)
        broker.declare_queue("q")
        broker.send("q", "x")
        broker.receive("q")  # never acked
        broker.close()
        second = MessageBroker(journal)
        second.receive("q")  # never acked either
        second.close()
        third = MessageBroker(journal)
        message = third.receive("q")
        assert message.delivery_count == 3


class TestReceiveDeadline:
    def test_positive_timeout_is_a_total_deadline(self):
        broker = MessageBroker()
        broker.declare_queue("q")
        start = time.monotonic()
        assert broker.receive("q", timeout=0.2) is None
        elapsed = time.monotonic() - start
        assert 0.2 <= elapsed < 1.0

    def test_scheduled_messages_do_not_extend_the_deadline(self):
        """A backoff-held message triggers periodic wakeups; each wakeup
        must not restart the timeout window."""
        broker = MessageBroker(
            default_retry_policy=RetryPolicy(
                max_deliveries=5, base_delay_s=30.0, multiplier=1.0,
                max_delay_s=30.0, jitter=0.0,
            )
        )
        broker.declare_queue("q")
        broker.send("q", "held-back")
        broker.reject(broker.receive("q"), reason="later")  # 30s backoff
        start = time.monotonic()
        assert broker.receive("q", timeout=0.25) is None
        elapsed = time.monotonic() - start
        assert 0.25 <= elapsed < 1.0
