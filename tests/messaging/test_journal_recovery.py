"""Broker journal durability: restart recovery semantics."""

from __future__ import annotations

import pytest

from repro.errors import JournalError
from repro.messaging import MessageBroker


@pytest.fixture
def journal(tmp_path):
    return tmp_path / "broker.journal"


def tail_segment(journal):
    """The active (highest-numbered) segment file of a closed journal."""
    segments = sorted(journal.parent.glob(journal.name + ".*.seg"))
    assert segments, f"no segment files next to {journal}"
    return segments[-1]


class TestPersistence:
    def test_unconsumed_messages_survive_restart(self, journal):
        broker = MessageBroker(journal)
        broker.declare_queue("q")
        broker.send("q", "persisted", headers={"n": 1})
        broker.close()

        reopened = MessageBroker(journal)
        assert reopened.queue_depth("q") == 1
        message = reopened.receive("q")
        assert message.body == "persisted"
        assert message.headers == {"n": 1}

    def test_acked_messages_do_not_reappear(self, journal):
        broker = MessageBroker(journal)
        broker.declare_queue("q")
        broker.send("q", "done")
        broker.send("q", "pending")
        message = broker.receive("q")
        broker.ack(message)
        broker.close()

        reopened = MessageBroker(journal)
        bodies = []
        while (message := reopened.receive("q")) is not None:
            bodies.append(message.body)
        assert bodies == ["pending"]

    def test_in_flight_unacked_messages_reappear(self, journal):
        """A consumer crash must never lose a message."""
        broker = MessageBroker(journal)
        broker.declare_queue("q")
        broker.send("q", "taken-but-never-acked")
        broker.receive("q")  # in flight, consumer dies here
        broker.close()

        reopened = MessageBroker(journal)
        assert reopened.receive("q").body == "taken-but-never-acked"

    def test_queue_declarations_survive(self, journal):
        broker = MessageBroker(journal)
        broker.declare_queue("a")
        broker.declare_queue("b")
        broker.close()
        reopened = MessageBroker(journal)
        assert set(reopened.queue_names()) == {"a", "b"}

    def test_message_ids_continue_after_restart(self, journal):
        broker = MessageBroker(journal)
        broker.declare_queue("q")
        first = broker.send("q", "a")
        broker.close()
        reopened = MessageBroker(journal)
        second = reopened.send("q", "b")
        assert second.message_id > first.message_id

    def test_order_preserved_across_restart(self, journal):
        broker = MessageBroker(journal)
        broker.declare_queue("q")
        for body in ("1", "2", "3"):
            broker.send("q", body)
        broker.close()
        reopened = MessageBroker(journal)
        assert [reopened.receive("q").body for __ in range(3)] == ["1", "2", "3"]

    def test_torn_final_line_ignored(self, journal):
        broker = MessageBroker(journal)
        broker.declare_queue("q")
        broker.send("q", "whole")
        broker.close()
        with open(tail_segment(journal), "a", encoding="utf-8") as handle:
            handle.write('deadbeef 9 {"type": "send", "mess')

        reopened = MessageBroker(journal)
        assert reopened.queue_depth("q") == 1

    def test_mid_journal_corruption_raises(self, journal):
        broker = MessageBroker(journal)
        broker.declare_queue("q")
        broker.send("q", "x")
        broker.close()
        segment = tail_segment(journal)
        lines = segment.read_text().splitlines()
        lines.insert(0, "not-json")
        segment.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError) as excinfo:
            MessageBroker(journal)
        assert excinfo.value.detail()["segment"] == 1

    def test_unknown_record_type_raises(self, journal):
        # A v1 single-file journal is adopted on open; replay then
        # rejects the unknown record type.
        journal.write_text('{"type": "mystery"}\n')
        with pytest.raises(JournalError):
            MessageBroker(journal)

    def test_persistent_flag(self, journal):
        assert MessageBroker(journal).persistent
        assert not MessageBroker().persistent
