"""Fixtures for workflow-engine tests.

``wf_lab`` is a minimal lab driven in *manual mode*: no agents are
registered, so instances are delegated without dispatch and completed
directly through the engine API — isolating engine semantics from the
messaging layer (covered separately in tests/agents and
tests/integration).
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.core import PatternBuilder, WorkflowBean
from repro.core.datamodel import install_workflow_datamodel
from repro.core.persistence import save_pattern
from repro.minidb.schema import Column
from repro.minidb.types import ColumnType
from repro.weblims import ExpDB, build_expdb
from repro.weblims.schema_setup import (
    add_experiment_type,
    add_sample_type,
    declare_experiment_io,
)


@dataclass
class WorkflowLab:
    app: ExpDB
    engine: WorkflowBean

    @property
    def db(self):
        return self.app.db

    def define(self, builder: PatternBuilder):
        pattern = builder.build(db=self.db)
        save_pattern(self.db, pattern)
        return pattern

    def state_of(self, workflow_id: int, task: str) -> str:
        return self.engine.workflow_view(workflow_id).tasks[task].state

    def instances_of(self, workflow_id: int, task: str):
        return self.engine.workflow_view(workflow_id).tasks[task].instances

    def complete_all(
        self, workflow_id: int, task: str, success: bool = True, **kwargs
    ) -> int:
        """Complete every undecided instance of a task; returns count."""
        done = 0
        for instance in self.instances_of(workflow_id, task):
            if not instance.decided:
                self.engine.complete_instance(
                    instance.experiment_id, success=success, **kwargs
                )
                done += 1
        return done

    def approve_pending(self, workflow_id: int | None = None) -> int:
        approved = 0
        for request in self.engine.pending_authorizations(workflow_id):
            self.engine.respond_authorization(request["auth_id"], True, "test")
            approved += 1
        return approved


@pytest.fixture
def wf_lab() -> WorkflowLab:
    app = build_expdb()
    install_workflow_datamodel(app.db)
    for type_name in ("A", "B", "C", "D"):
        add_experiment_type(
            app.db, type_name, [Column("reading", ColumnType.REAL)]
        )
    for sample_type in ("SA", "SB", "SC"):
        add_sample_type(app.db, sample_type, [])
    declare_experiment_io(app.db, "A", "SA", "output")
    declare_experiment_io(app.db, "B", "SA", "input")
    declare_experiment_io(app.db, "B", "SB", "output")
    declare_experiment_io(app.db, "C", "SB", "input")
    declare_experiment_io(app.db, "C", "SC", "output")
    declare_experiment_io(app.db, "D", "SC", "input")
    declare_experiment_io(app.db, "A", "SC", "input")  # stock input for A
    engine = WorkflowBean(app.db)
    return WorkflowLab(app=app, engine=engine)
