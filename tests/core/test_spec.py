"""The specification model: tasks, transitions, patterns, agents."""

from __future__ import annotations

import pytest

from repro.core.spec import AgentSpec, TaskDef, TransitionDef, WorkflowPattern
from repro.errors import SpecificationError


class TestTaskDef:
    def test_experiment_type_task(self):
        task = TaskDef("pcr", experiment_type="Pcr")
        assert not task.is_subworkflow
        assert task.default_instances == 1

    def test_subworkflow_task(self):
        task = TaskDef("prod", subworkflow="protein_production")
        assert task.is_subworkflow

    def test_exactly_one_binding_required(self):
        with pytest.raises(SpecificationError):
            TaskDef("both", experiment_type="X", subworkflow="Y")
        with pytest.raises(SpecificationError):
            TaskDef("neither")

    def test_default_instances_positive(self):
        with pytest.raises(SpecificationError):
            TaskDef("t", experiment_type="X", default_instances=0)

    def test_subworkflow_single_instance_only(self):
        with pytest.raises(SpecificationError):
            TaskDef("t", subworkflow="S", default_instances=2)

    def test_empty_name_rejected(self):
        with pytest.raises(SpecificationError):
            TaskDef("", experiment_type="X")


class TestTransitionDef:
    def test_control_transition(self):
        transition = TransitionDef("a", "b")
        assert not transition.is_data
        assert transition.parsed_condition is None

    def test_data_transition(self):
        transition = TransitionDef("a", "b", sample_type="Product")
        assert transition.is_data

    def test_condition_parsed_at_definition(self):
        transition = TransitionDef("a", "b", condition="output.x > 1")
        assert transition.parsed_condition is not None

    def test_bad_condition_rejected_at_definition(self):
        from repro.errors import ConditionError

        with pytest.raises(ConditionError):
            TransitionDef("a", "b", condition="output.x >")

    def test_self_transition_rejected(self):
        """§4.2: repetition is multiple instances, not self-loops."""
        with pytest.raises(SpecificationError, match="self-transition"):
            TransitionDef("a", "a")


class TestAgentSpec:
    def test_default_queue_derived_from_name(self):
        spec = AgentSpec("robo", "robot")
        assert spec.queue == "agent.robo"

    def test_explicit_queue_kept(self):
        spec = AgentSpec("robo", "robot", queue="custom.q")
        assert spec.queue == "custom.q"

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecificationError):
            AgentSpec("x", "android")


class TestWorkflowPattern:
    @pytest.fixture
    def pattern(self):
        p = WorkflowPattern("test")
        for name in ("a", "b", "c"):
            p.add_task(TaskDef(name, experiment_type=name.upper()))
        p.add_transition(TransitionDef("a", "b"))
        p.add_transition(TransitionDef("a", "c"))
        p.add_transition(TransitionDef("b", "c"))
        p.add_transition(TransitionDef("a", "b", sample_type="S"))
        return p

    def test_duplicate_task_rejected(self, pattern):
        with pytest.raises(SpecificationError):
            pattern.add_task(TaskDef("a", experiment_type="A"))

    def test_transition_to_unknown_task_rejected(self, pattern):
        with pytest.raises(SpecificationError):
            pattern.add_transition(TransitionDef("a", "ghost"))

    def test_incoming_outgoing(self, pattern):
        assert len(pattern.incoming("c")) == 2
        assert len(pattern.outgoing("a")) == 3

    def test_control_sources_distinct(self, pattern):
        assert pattern.control_sources("b") == ["a"]
        assert pattern.control_sources("c") == ["a", "b"]

    def test_initial_and_final(self, pattern):
        assert pattern.initial_tasks() == ["a"]
        assert pattern.final_tasks() == ["c"]

    def test_data_transitions_between(self, pattern):
        assert len(pattern.data_transitions_between("a", "b")) == 1
        assert pattern.data_transitions_between("b", "c") == []

    def test_task_lookup(self, pattern):
        assert pattern.task("a").experiment_type == "A"
        with pytest.raises(SpecificationError):
            pattern.task("ghost")
