"""PatternStore: spec caching, write-through invalidation, audited bypass."""

from __future__ import annotations

from repro.core import PatternBuilder
from repro.minidb import EQ


def chain(lab, name="chain", instances=1):
    return lab.define(
        PatternBuilder(name)
        .task("a", experiment_type="A", default_instances=instances)
        .task("b", experiment_type="B")
        .flow("a", "b")
    )


class TestSpecCacheEffect:
    def test_second_start_skips_pattern_table_reads(self, wf_lab):
        chain(wf_lab)
        start = wf_lab.db.stats.snapshot()
        wf_lab.engine.start_workflow("chain")  # populates the cache
        mid = wf_lab.db.stats.snapshot()
        wf_lab.engine.start_workflow("chain")
        cold = mid.delta(start)
        warm = wf_lab.db.stats.snapshot().delta(mid)
        # The spec lookups come from the cache on the warm start; only
        # the per-insert foreign-key pk checks still touch the tables.
        assert warm.per_table_reads.get("WorkflowPattern", 0) < (
            cold.per_table_reads.get("WorkflowPattern", 0)
        )
        assert warm.per_table_reads.get("WFPTask", 0) < (
            cold.per_table_reads.get("WFPTask", 0)
        )
        assert warm.full_scans == 0

    def test_cache_counters_move(self, wf_lab):
        chain(wf_lab)
        wf_lab.engine.start_workflow("chain")
        misses_after_first = wf_lab.engine.specs.misses
        assert misses_after_first > 0
        wf_lab.engine.start_workflow("chain")
        assert wf_lab.engine.specs.misses == misses_after_first
        assert wf_lab.engine.specs.hits > 0

    def test_bypass_path_reads_the_database_every_time(self, wf_lab):
        chain(wf_lab)
        wf_lab.engine.specs.enabled = False
        wf_lab.engine.start_workflow("chain")
        before = wf_lab.db.stats.snapshot()
        wf_lab.engine.start_workflow("chain")
        delta = wf_lab.db.stats.snapshot().delta(before)
        assert delta.per_table_reads.get("WorkflowPattern", 0) > 0
        assert delta.per_table_reads.get("WFPTask", 0) > 0
        assert wf_lab.engine.specs.hits == 0


class TestInvalidation:
    def test_mutated_pattern_visible_to_next_start(self, wf_lab):
        """The acceptance criterion: edit a spec row, next start sees it."""
        chain(wf_lab, instances=1)
        first = wf_lab.engine.start_workflow("chain")
        assert len(wf_lab.instances_of(first["workflow_id"], "a")) == 1

        # Mutate the stored specification directly — a pattern edit.
        pattern_row = wf_lab.db.select_one(
            "WorkflowPattern", EQ("name", "chain")
        )
        task_a = wf_lab.db.select_one(
            "WFPTask",
            EQ("pattern_id", pattern_row["pattern_id"]) & EQ("name", "a"),
        )
        wf_lab.db.update(
            "WFPTask",
            EQ("wfp_task_id", task_a["wfp_task_id"]),
            {"default_instances": 3},
        )

        second = wf_lab.engine.start_workflow("chain")
        assert len(wf_lab.instances_of(second["workflow_id"], "a")) == 3

    def test_new_pattern_version_not_masked_by_negative_lookup(self, wf_lab):
        # A failed lookup must not cache "absent" …
        try:
            wf_lab.engine.start_workflow("late")
        except Exception:
            pass
        # … so defining the pattern afterwards just works.
        chain(wf_lab, name="late")
        workflow = wf_lab.engine.start_workflow("late")
        assert workflow["status"] == "running"

    def test_explicit_invalidate_forces_reread(self, wf_lab):
        chain(wf_lab)
        wf_lab.engine.start_workflow("chain")
        wf_lab.engine.specs.invalidate()
        before = wf_lab.db.stats.snapshot()
        wf_lab.engine.start_workflow("chain")
        delta = wf_lab.db.stats.snapshot().delta(before)
        assert delta.per_table_reads.get("WorkflowPattern", 0) > 0
