"""The transition condition language: parsing and evaluation."""

from __future__ import annotations

import pytest

from repro.core.conditions import Condition
from repro.errors import ConditionError

CONTEXT = {
    "output": {"colonies": 25, "concentration": 0.8, "label": "good"},
    "experiment": {"status": "ok", "cycles": 30},
    "task": {"completed_instances": 2, "aborted_instances": 1},
    "flag": True,
}


def true(source: str) -> bool:
    return Condition(source).evaluate(CONTEXT)


class TestComparisons:
    def test_numeric(self):
        assert true("output.colonies >= 20")
        assert true("output.colonies > 24")
        assert not true("output.colonies < 20")
        assert true("output.colonies == 25")
        assert true("output.colonies != 24")

    def test_float_int_mix(self):
        assert true("output.concentration >= 0.8")
        assert true("output.concentration < 1")

    def test_string_equality(self):
        assert true("experiment.status == 'ok'")
        assert not true("experiment.status == 'bad'")

    def test_string_ordering(self):
        assert true("output.label < 'zzz'")

    def test_double_quoted_strings(self):
        assert true('experiment.status == "ok"')

    def test_literal_booleans_and_null(self):
        assert true("flag == true")
        assert not true("flag == false")
        assert not true("output.label == null")

    def test_bare_boolean_lookup(self):
        assert true("flag")

    def test_escaped_quote_in_string(self):
        condition = Condition(r"output.label == 'go\'od'")
        assert not condition.evaluate(CONTEXT)


class TestBooleanOperators:
    def test_and(self):
        assert true("output.colonies > 20 and experiment.status == 'ok'")
        assert not true("output.colonies > 20 and experiment.status == 'bad'")

    def test_or(self):
        assert true("output.colonies > 99 or experiment.cycles == 30")

    def test_not(self):
        assert true("not (output.colonies < 20)")
        assert not true("not flag")

    def test_precedence_and_binds_tighter_than_or(self):
        # false and false or true  ==  (false and false) or true
        assert true("flag == false and flag == false or flag")

    def test_parentheses_override(self):
        assert not true("flag == false and (flag == false or flag)")

    def test_chained_not(self):
        assert true("not not flag")


class TestErrors:
    def test_unknown_name_raises(self):
        with pytest.raises(ConditionError, match="unknown name"):
            true("ghost.column > 1")

    def test_type_confusion_raises(self):
        with pytest.raises(ConditionError):
            true("output.label > 5")

    def test_null_ordering_raises(self):
        with pytest.raises(ConditionError):
            Condition("x > 5").evaluate({"x": None})

    def test_non_boolean_result_raises(self):
        with pytest.raises(ConditionError):
            true("output.colonies")

    def test_non_boolean_and_operand_raises(self):
        with pytest.raises(ConditionError):
            true("output.colonies and flag")

    def test_empty_condition_rejected(self):
        with pytest.raises(ConditionError):
            Condition("   ")

    def test_syntax_errors_rejected(self):
        for bad in ["a >", "( a == 1", "a == 1 )", "a === 1", "1 2", "and"]:
            with pytest.raises(ConditionError):
                Condition(bad)

    def test_unexpected_character_rejected(self):
        with pytest.raises(ConditionError):
            Condition("a @ b")

    def test_boolean_number_ordering_rejected(self):
        with pytest.raises(ConditionError):
            Condition("flag > 0").evaluate(CONTEXT)


class TestIntrospection:
    def test_names_collection(self):
        condition = Condition(
            "output.colonies > 1 and not (experiment.status == 'x' or flag)"
        )
        assert condition.names() == {
            "output.colonies",
            "experiment.status",
            "flag",
        }

    def test_unparse_reparses_equivalent(self):
        sources = [
            "output.colonies >= 20",
            "a == 1 and b == 2 or not c",
            "not (x.y.z < 0.5)",
            "s == 'hel\\'lo'",
            "t == null or u == true",
        ]
        for source in sources:
            condition = Condition(source)
            reparsed = Condition(condition.unparse())
            assert reparsed == condition

    def test_equality_and_hash(self):
        assert Condition("a == 1") == Condition("a==1")
        assert hash(Condition("a == 1")) == hash(Condition("a==1"))
        assert Condition("a == 1") != Condition("a == 2")
