"""§4.2: multiple task instances — the paper's model extension."""

from __future__ import annotations

import pytest

from repro.core import PatternBuilder
from repro.errors import InstanceError


def multi(lab, defaults=3):
    return lab.define(
        PatternBuilder("multi")
        .task("work", experiment_type="A", default_instances=defaults)
        .task("next", experiment_type="B")
        .flow("work", "next")
        .data("work", "next", sample_type="SA")
    )


class TestTaskLevelSemantics:
    def test_task_active_while_any_instance_undecided(self, wf_lab):
        multi(wf_lab)
        workflow = wf_lab.engine.start_workflow("multi")
        workflow_id = workflow["workflow_id"]
        instances = wf_lab.instances_of(workflow_id, "work")
        wf_lab.engine.complete_instance(instances[0].experiment_id, success=True)
        wf_lab.engine.complete_instance(instances[1].experiment_id, success=False)
        assert wf_lab.state_of(workflow_id, "work") == "active"

    def test_task_completes_with_at_least_one_success(self, wf_lab):
        multi(wf_lab)
        workflow = wf_lab.engine.start_workflow("multi")
        workflow_id = workflow["workflow_id"]
        instances = wf_lab.instances_of(workflow_id, "work")
        wf_lab.engine.complete_instance(instances[0].experiment_id, success=False)
        wf_lab.engine.complete_instance(instances[1].experiment_id, success=False)
        wf_lab.engine.complete_instance(instances[2].experiment_id, success=True)
        assert wf_lab.state_of(workflow_id, "work") == "completed"

    def test_task_aborts_only_when_all_instances_abort(self, wf_lab):
        multi(wf_lab)
        workflow = wf_lab.engine.start_workflow("multi")
        workflow_id = workflow["workflow_id"]
        for instance in wf_lab.instances_of(workflow_id, "work"):
            wf_lab.engine.complete_instance(
                instance.experiment_id, success=False
            )
        assert wf_lab.state_of(workflow_id, "work") == "aborted"
        assert wf_lab.state_of(workflow_id, "next") == "unreachable"


class TestEarlyEligibility:
    def test_destination_eligible_at_default_count_before_task_finishes(
        self, wf_lab
    ):
        """'begin any tasks without undue delay': once the default number
        of source instances completed, the destination may start even
        though further instances are still running."""
        multi(wf_lab, defaults=2)
        workflow = wf_lab.engine.start_workflow("multi")
        workflow_id = workflow["workflow_id"]
        # Spawn a third instance, then complete only the default two.
        wf_lab.engine.spawn_instance(workflow_id, "work")
        instances = wf_lab.instances_of(workflow_id, "work")
        assert len(instances) == 3
        wf_lab.engine.complete_instance(instances[0].experiment_id, success=True)
        wf_lab.engine.complete_instance(instances[1].experiment_id, success=True)
        assert wf_lab.state_of(workflow_id, "work") == "active"  # one open
        assert wf_lab.state_of(workflow_id, "next") == "eligible"

    def test_failed_instances_do_not_count_toward_default(self, wf_lab):
        """While the source is still active, only *successful* instances
        count toward its default number for early destination start."""
        multi(wf_lab, defaults=2)
        workflow = wf_lab.engine.start_workflow("multi")
        workflow_id = workflow["workflow_id"]
        wf_lab.engine.spawn_instance(workflow_id, "work")  # keep task open
        instances = wf_lab.instances_of(workflow_id, "work")
        wf_lab.engine.complete_instance(instances[0].experiment_id, success=False)
        wf_lab.engine.complete_instance(instances[1].experiment_id, success=True)
        assert wf_lab.state_of(workflow_id, "work") == "active"
        assert wf_lab.state_of(workflow_id, "next") == "created"

    def test_source_completion_with_few_successes_still_unlocks(self, wf_lab):
        """Once every instance is decided the task completes (>=1 success)
        and the destination becomes eligible even below the default count
        — completion dominates the default-count gate."""
        multi(wf_lab, defaults=2)
        workflow = wf_lab.engine.start_workflow("multi")
        workflow_id = workflow["workflow_id"]
        instances = wf_lab.instances_of(workflow_id, "work")
        wf_lab.engine.complete_instance(instances[0].experiment_id, success=False)
        wf_lab.engine.complete_instance(instances[1].experiment_id, success=True)
        assert wf_lab.state_of(workflow_id, "work") == "completed"
        assert wf_lab.state_of(workflow_id, "next") == "eligible"


class TestUserSpawnedInstances:
    def test_spawn_while_active(self, wf_lab):
        multi(wf_lab)
        workflow = wf_lab.engine.start_workflow("multi")
        workflow_id = workflow["workflow_id"]
        spawned = wf_lab.engine.spawn_instance(workflow_id, "work")
        assert spawned["wf_state"] == "delegated"
        assert len(wf_lab.instances_of(workflow_id, "work")) == 4

    def test_spawn_on_inactive_task_rejected(self, wf_lab):
        multi(wf_lab)
        workflow = wf_lab.engine.start_workflow("multi")
        with pytest.raises(InstanceError, match="active"):
            wf_lab.engine.spawn_instance(workflow["workflow_id"], "next")

    def test_spawned_instance_keeps_task_open(self, wf_lab):
        """A retry spawned after all defaults failed keeps the task alive
        until it is decided — the failure-retry workflow of §4.2."""
        multi(wf_lab, defaults=1)
        workflow = wf_lab.engine.start_workflow("multi")
        workflow_id = workflow["workflow_id"]
        first = wf_lab.instances_of(workflow_id, "work")[0]
        retry = wf_lab.engine.spawn_instance(workflow_id, "work")
        wf_lab.engine.complete_instance(first.experiment_id, success=False)
        assert wf_lab.state_of(workflow_id, "work") == "active"
        wf_lab.engine.complete_instance(retry["experiment_id"], success=True)
        assert wf_lab.state_of(workflow_id, "work") == "completed"


class TestOutputForwarding:
    def test_only_successful_outputs_forwarded(self, wf_lab):
        """'forwarding outputs from all successfully completed source
        instances to the destination task'."""
        multi(wf_lab, defaults=3)
        workflow = wf_lab.engine.start_workflow("multi")
        workflow_id = workflow["workflow_id"]
        instances = wf_lab.instances_of(workflow_id, "work")
        wf_lab.engine.complete_instance(
            instances[0].experiment_id,
            success=True,
            outputs=[{"sample_type": "SA", "name": "good-1", "quality": 0.9}],
        )
        wf_lab.engine.complete_instance(
            instances[1].experiment_id,
            success=False,
            outputs=[{"sample_type": "SA", "name": "bad", "quality": 0.1}],
        )
        wf_lab.engine.complete_instance(
            instances[2].experiment_id,
            success=True,
            outputs=[{"sample_type": "SA", "name": "good-2", "quality": 0.8}],
        )
        available = wf_lab.engine.collect_available_inputs(workflow_id, "next")
        names = {sample["name"] for sample in available}
        assert names == {"good-1", "good-2"}

    def test_chosen_inputs_recorded(self, wf_lab):
        multi(wf_lab, defaults=1)
        workflow = wf_lab.engine.start_workflow("multi")
        workflow_id = workflow["workflow_id"]
        source = wf_lab.instances_of(workflow_id, "work")[0]
        wf_lab.engine.complete_instance(
            source.experiment_id,
            success=True,
            outputs=[{"sample_type": "SA", "name": "o", "quality": 0.9}],
        )
        wf_lab.approve_pending()
        sample_id = wf_lab.db.select("Sample")[0]["sample_id"]
        destination = wf_lab.instances_of(workflow_id, "next")[0]
        wf_lab.engine.complete_instance(
            destination.experiment_id,
            success=True,
            chosen_input_ids=[sample_id],
        )
        links = wf_lab.db.select("ExperimentIO")
        input_links = [
            link
            for link in links
            if link["experiment_id"] == destination.experiment_id
        ]
        assert [link["sample_id"] for link in input_links] == [sample_id]

    def test_wrong_direction_input_rejected(self, wf_lab):
        multi(wf_lab, defaults=1)
        workflow = wf_lab.engine.start_workflow("multi")
        workflow_id = workflow["workflow_id"]
        source = wf_lab.instances_of(workflow_id, "work")[0]
        # SB is not an input of A.
        sample = wf_lab.db.insert("Sample", {"type_name": "SB"})
        with pytest.raises(InstanceError, match="input"):
            wf_lab.engine.complete_instance(
                source.experiment_id,
                success=True,
                chosen_input_ids=[sample["sample_id"]],
            )

    def test_stock_samples_offered_for_uncovered_input_types(self, wf_lab):
        """'tasks can have input objects not being produced by source
        tasks' — stock samples of required input types are offered."""
        wf_lab.define(
            PatternBuilder("stocked").task("solo", experiment_type="A")
        )
        stock = wf_lab.db.insert(
            "Sample", {"type_name": "SC", "name": "stock-sc", "quality": 1.0}
        )
        workflow = wf_lab.engine.start_workflow("stocked")
        wf_lab.approve_pending()
        available = wf_lab.engine.collect_available_inputs(
            workflow["workflow_id"], "solo"
        )
        assert [sample["sample_id"] for sample in available] == [
            stock["sample_id"]
        ]
