"""Pattern builder and static validation rules."""

from __future__ import annotations

import pytest

from repro.core import PatternBuilder
from repro.core.validation import validate_pattern
from repro.errors import SpecificationError
from repro.weblims.schema_setup import (
    add_experiment_type,
    add_sample_type,
    declare_experiment_io,
)


def simple_builder(name="p"):
    return (
        PatternBuilder(name)
        .task("first", experiment_type="A")
        .task("last", experiment_type="B")
        .flow("first", "last")
    )


class TestBuilder:
    def test_build_produces_valid_pattern(self):
        pattern = simple_builder().build()
        assert set(pattern.tasks) == {"first", "last"}

    def test_final_task_authorization_enforced_automatically(self):
        """§4.2: the final task requires authorization."""
        pattern = simple_builder().build()
        assert pattern.task("last").requires_authorization
        assert not pattern.task("first").requires_authorization

    def test_fluent_chaining_returns_builder(self):
        builder = PatternBuilder("x")
        assert builder.task("t", experiment_type="T") is builder
        assert builder.flow is not None


class TestStructuralValidation:
    def test_empty_pattern_rejected(self):
        with pytest.raises(SpecificationError, match="no tasks"):
            PatternBuilder("empty").build()

    def test_unreachable_task_rejected(self):
        builder = (
            PatternBuilder("p")
            .task("a", experiment_type="A")
            .task("b", experiment_type="B")
            .task("island1", experiment_type="C")
            .task("island2", experiment_type="D")
            .flow("a", "b")
            # island1 <-> island2 form a disconnected component where
            # each has incoming edges, hence neither is "initial".
            .flow("island1", "island2", condition="x == 1")
            .flow("island2", "island1", condition="x == 2")
        )
        with pytest.raises(SpecificationError, match="not.*reachable|reachable"):
            builder.build()

    def test_all_tasks_with_incoming_rejected(self):
        builder = (
            PatternBuilder("cycle")
            .task("a", experiment_type="A")
            .task("b", experiment_type="B")
            .flow("a", "b", condition="x == 1")
            .flow("b", "a", condition="x == 2")
        )
        with pytest.raises(SpecificationError, match="no initial task"):
            builder.build()

    def test_unconditional_cycle_rejected(self):
        builder = (
            PatternBuilder("p")
            .task("start", experiment_type="S")
            .task("a", experiment_type="A")
            .task("b", experiment_type="B")
            .task("end", experiment_type="E")
            .flow("start", "a")
            .flow("a", "b")
            .flow("b", "a")
            .flow("b", "end")
        )
        with pytest.raises(SpecificationError, match="unconditional cycle"):
            builder.build()

    def test_conditional_cycle_allowed(self):
        """Iterative loops are modeled with conditions (§4.1)."""
        pattern = (
            PatternBuilder("loop")
            .task("start", experiment_type="S")
            .task("a", experiment_type="A")
            .task("b", experiment_type="B")
            .task("end", experiment_type="E")
            .flow("start", "a")
            .flow("a", "b")
            .flow("b", "a", condition="output.quality < 0.5")
            .flow("b", "end", condition="output.quality >= 0.5")
            .build()
        )
        assert pattern is not None

    def test_hand_built_pattern_without_final_auth_rejected(self):
        from repro.core.spec import TaskDef, WorkflowPattern

        pattern = WorkflowPattern("manual")
        pattern.add_task(TaskDef("only", experiment_type="A"))
        with pytest.raises(SpecificationError, match="authorization"):
            validate_pattern(pattern)


class TestDatabaseBackedValidation:
    @pytest.fixture
    def typed_app(self, expdb):
        add_experiment_type(expdb.db, "A", [])
        add_experiment_type(expdb.db, "B", [])
        add_sample_type(expdb.db, "S", [])
        declare_experiment_io(expdb.db, "A", "S", "output")
        declare_experiment_io(expdb.db, "B", "S", "input")
        return expdb

    def test_registered_types_accepted(self, typed_app):
        pattern = (
            PatternBuilder("p")
            .task("a", experiment_type="A")
            .task("b", experiment_type="B")
            .flow("a", "b")
            .data("a", "b", sample_type="S")
            .build(db=typed_app.db)
        )
        assert pattern is not None

    def test_unregistered_experiment_type_rejected(self, typed_app):
        builder = (
            PatternBuilder("p")
            .task("a", experiment_type="Ghost")
            .task("b", experiment_type="B")
            .flow("a", "b")
        )
        with pytest.raises(SpecificationError, match="unregistered"):
            builder.build(db=typed_app.db)

    def test_data_transition_without_output_declaration_rejected(
        self, typed_app
    ):
        add_sample_type(typed_app.db, "Undeclared", [])
        builder = (
            PatternBuilder("p")
            .task("a", experiment_type="A")
            .task("b", experiment_type="B")
            .flow("a", "b")
            .data("a", "b", sample_type="Undeclared")
        )
        with pytest.raises(SpecificationError, match="ExperimentTypeIO"):
            builder.build(db=typed_app.db)

    def test_data_transition_without_input_declaration_rejected(
        self, typed_app
    ):
        add_experiment_type(typed_app.db, "C", [])
        declare_experiment_io(typed_app.db, "C", "S", "output")
        builder = (
            PatternBuilder("p")
            .task("c", experiment_type="C")
            .task("a", experiment_type="A")  # A does not *input* S
            .flow("c", "a")
            .data("c", "a", sample_type="S")
        )
        with pytest.raises(SpecificationError, match="input"):
            builder.build(db=typed_app.db)


class TestSubworkflowValidation:
    def make_child(self):
        return (
            PatternBuilder("child")
            .task("inner", experiment_type="X")
            .build()
        )

    def test_known_subworkflow_accepted(self):
        child = self.make_child()
        pattern = (
            PatternBuilder("parent")
            .task("sub", subworkflow="child")
            .build(registry={"child": child})
        )
        assert pattern.task("sub").is_subworkflow

    def test_unknown_subworkflow_rejected(self):
        with pytest.raises(SpecificationError, match="unknown sub-workflow"):
            PatternBuilder("parent").task("sub", subworkflow="ghost").build(
                registry={}
            )

    def test_subworkflow_reference_cycle_rejected(self):
        from repro.core.spec import TaskDef, WorkflowPattern

        a = WorkflowPattern("a")
        a.add_task(TaskDef("to_b", subworkflow="b", requires_authorization=True))
        b = WorkflowPattern("b")
        b.add_task(TaskDef("to_a", subworkflow="a", requires_authorization=True))
        with pytest.raises(SpecificationError, match="cycle"):
            validate_pattern(a, registry={"a": a, "b": b})

    def test_self_reference_rejected(self):
        from repro.core.spec import TaskDef, WorkflowPattern

        a = WorkflowPattern("a")
        a.add_task(TaskDef("to_a", subworkflow="a", requires_authorization=True))
        with pytest.raises(SpecificationError, match="cycle"):
            validate_pattern(a, registry={"a": a})
