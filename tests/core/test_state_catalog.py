"""``transition_catalog()`` must stay exhaustive against the machines.

The catalog is what documentation and the audit verifier consume; the
``StateMachine`` tables are what the engine executes.  These tests pin
them together in both directions, so adding a transition to one without
the other fails loudly.
"""

from __future__ import annotations

import pytest

from repro.core.states import (
    basic_machine,
    instance_machine,
    task_machine,
    transition_catalog,
)

MACHINES = {
    "basic-model": basic_machine,
    "task-model": task_machine,
    "task-instance-model": instance_machine,
}


def machine_triples(factory):
    machine = factory()
    return {
        (state.value, event.value, machine.table[(state, event)].value)
        for (state, event) in machine.table
    }


def test_catalog_covers_exactly_the_machines():
    catalog = transition_catalog()
    assert set(catalog) == set(MACHINES)
    for name, factory in MACHINES.items():
        assert set(catalog[name]) == machine_triples(factory), name


def test_catalog_has_no_duplicate_triples():
    for name, triples in transition_catalog().items():
        assert len(triples) == len(set(triples)), name


@pytest.mark.parametrize("name", sorted(MACHINES))
def test_every_catalog_transition_is_applicable(name):
    """Each catalogued triple replays on a live machine."""
    factory = MACHINES[name]
    for state, event, target in transition_catalog()[name]:
        machine = factory()
        machine.state = state  # test drives the table directly
        assert machine.can_apply(event), (state, event)
        assert machine.apply(event) == target


@pytest.mark.parametrize("name", sorted(MACHINES))
def test_legal_events_match_catalog(name):
    """``legal_events`` in each reachable state equals the catalog's
    outgoing-event set for that state."""
    catalog = transition_catalog()[name]
    states = {state for state, _, _ in catalog} | {
        target for _, _, target in catalog
    }
    factory = MACHINES[name]
    for state in states:
        machine = factory()
        machine.state = state
        expected = {event for s, event, _ in catalog if s == state}
        assert set(machine.legal_events()) == expected, state
