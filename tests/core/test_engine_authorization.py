"""Authorization gates: requests, decisions, denial semantics."""

from __future__ import annotations

import pytest

from repro.core import PatternBuilder
from repro.core.persistence import authorize_agent, register_agent
from repro.core.spec import AgentSpec
from repro.errors import AuthorizationError


def gated(lab):
    return lab.define(
        PatternBuilder("gated")
        .task("first", experiment_type="A", requires_authorization=True)
        .task("last", experiment_type="B")
        .flow("first", "last")
    )


class TestRequests:
    def test_gated_task_parks_eligible(self, wf_lab):
        gated(wf_lab)
        workflow = wf_lab.engine.start_workflow("gated")
        assert wf_lab.state_of(workflow["workflow_id"], "first") == "eligible"

    def test_request_created_once(self, wf_lab):
        gated(wf_lab)
        workflow = wf_lab.engine.start_workflow("gated")
        # Repeated checks must not duplicate the pending request.
        wf_lab.engine.check_workflow(workflow["workflow_id"])
        wf_lab.engine.check_workflow(workflow["workflow_id"])
        assert len(wf_lab.engine.pending_authorizations()) == 1

    def test_final_task_request_kind_is_final(self, wf_lab):
        gated(wf_lab)
        workflow = wf_lab.engine.start_workflow("gated")
        workflow_id = workflow["workflow_id"]
        requests = wf_lab.engine.pending_authorizations(workflow_id)
        assert requests[0]["kind"] == "start"
        wf_lab.engine.respond_authorization(requests[0]["auth_id"], True)
        wf_lab.complete_all(workflow_id, "first")
        final_requests = wf_lab.engine.pending_authorizations(workflow_id)
        assert final_requests[0]["kind"] == "final"

    def test_authorizer_prefers_human_agent_for_type(self, wf_lab):
        register_agent(wf_lab.db, AgentSpec("bot", "robot"))
        authorize_agent(wf_lab.db, "bot", "A")
        register_agent(
            wf_lab.db, AgentSpec("alice", "human", contact="alice@lab")
        )
        authorize_agent(wf_lab.db, "alice", "A")
        gated(wf_lab)
        wf_lab.engine.start_workflow("gated")
        request = wf_lab.engine.pending_authorizations()[0]
        agent = wf_lab.db.get("Agent", request["agent_id"])
        assert agent["name"] == "alice"

    def test_request_without_any_agent_waits_in_db(self, wf_lab):
        gated(wf_lab)
        wf_lab.engine.start_workflow("gated")
        request = wf_lab.engine.pending_authorizations()[0]
        assert request["agent_id"] is None  # decided via the web UI later


class TestDecisions:
    def test_grant_activates(self, wf_lab):
        gated(wf_lab)
        workflow = wf_lab.engine.start_workflow("gated")
        request = wf_lab.engine.pending_authorizations()[0]
        wf_lab.engine.respond_authorization(request["auth_id"], True, "pi")
        assert wf_lab.state_of(workflow["workflow_id"], "first") == "active"
        stored = wf_lab.db.get("WFAuthorization", request["auth_id"])
        assert stored["status"] == "granted"
        assert stored["decided_by"] == "pi"

    def test_denial_aborts_task_and_cascade(self, wf_lab):
        gated(wf_lab)
        workflow = wf_lab.engine.start_workflow("gated")
        workflow_id = workflow["workflow_id"]
        request = wf_lab.engine.pending_authorizations()[0]
        wf_lab.engine.respond_authorization(request["auth_id"], False, "pi")
        assert wf_lab.state_of(workflow_id, "first") == "aborted"
        assert wf_lab.state_of(workflow_id, "last") == "unreachable"
        assert wf_lab.engine.workflow_view(workflow_id).status == "aborted"

    def test_double_decision_rejected(self, wf_lab):
        gated(wf_lab)
        wf_lab.engine.start_workflow("gated")
        request = wf_lab.engine.pending_authorizations()[0]
        wf_lab.engine.respond_authorization(request["auth_id"], True)
        with pytest.raises(AuthorizationError, match="already"):
            wf_lab.engine.respond_authorization(request["auth_id"], False)

    def test_unknown_request_rejected(self, wf_lab):
        with pytest.raises(AuthorizationError):
            wf_lab.engine.respond_authorization(12345, True)

    def test_events_emitted(self, wf_lab):
        gated(wf_lab)
        wf_lab.engine.start_workflow("gated")
        assert wf_lab.engine.events.of_kind("authorization.requested")
        request = wf_lab.engine.pending_authorizations()[0]
        wf_lab.engine.respond_authorization(request["auth_id"], True, "pi")
        decided = wf_lab.engine.events.of_kind("authorization.decided")
        assert decided[-1]["approved"] is True


class TestTerminationControl:
    def test_final_task_gates_workflow_termination(self, wf_lab):
        """§4.2: 'the final task of a workflow now requires authorization
        to be performed' — even without an explicit flag."""
        wf_lab.define(
            PatternBuilder("auto_gate")
            .task("only", experiment_type="A")
        )
        workflow = wf_lab.engine.start_workflow("auto_gate")
        workflow_id = workflow["workflow_id"]
        assert wf_lab.state_of(workflow_id, "only") == "eligible"
        assert wf_lab.engine.workflow_view(workflow_id).status == "running"
        wf_lab.approve_pending()
        wf_lab.complete_all(workflow_id, "only")
        assert wf_lab.engine.workflow_view(workflow_id).status == "completed"
