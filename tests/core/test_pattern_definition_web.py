"""Defining workflow patterns through the web interface."""

from __future__ import annotations

import json

import pytest

from repro.core import install_workflow_support
from repro.core.persistence import load_pattern, pattern_from_dict, pattern_to_dict
from repro.minidb.schema import Column
from repro.minidb.types import ColumnType
from repro.weblims import build_expdb
from repro.weblims.schema_setup import (
    add_experiment_type,
    add_sample_type,
    declare_experiment_io,
)


@pytest.fixture
def wired():
    app = build_expdb()
    engine = install_workflow_support(app)
    add_experiment_type(app.db, "A", [Column("reading", ColumnType.REAL)])
    add_experiment_type(app.db, "B", [])
    add_sample_type(app.db, "SA", [])
    declare_experiment_io(app.db, "A", "SA", "output")
    declare_experiment_io(app.db, "B", "SA", "input")
    return app, engine


PATTERN_JSON = {
    "name": "web_defined",
    "description": "defined through the browser",
    "tasks": [
        {"name": "first", "experiment_type": "A", "default_instances": 2},
        {"name": "second", "experiment_type": "B"},
    ],
    "transitions": [
        {"source": "first", "target": "second"},
        {"source": "first", "target": "second", "sample_type": "SA"},
    ],
}


class TestDefine:
    def test_define_and_run(self, wired):
        app, engine = wired
        response = app.post(
            "/workflow",
            action="define",
            pattern_json=json.dumps(PATTERN_JSON),
        )
        assert response.status == 200
        assert response.attributes["pattern_id"]
        # Final-task authorization applied automatically.
        stored = load_pattern(app.db, "web_defined")
        assert stored.task("second").requires_authorization
        assert stored.task("first").default_instances == 2
        # The freshly defined pattern is immediately runnable.
        workflow = engine.start_workflow("web_defined")
        view = engine.workflow_view(workflow["workflow_id"])
        assert view.tasks["first"].state == "active"

    def test_define_via_filter_mode_b(self, wired):
        """Also reachable through /user with workflow_action (mode b)."""
        app, __ = wired
        response = app.post(
            "/user",
            workflow_action="define",
            pattern_json=json.dumps(PATTERN_JSON),
        )
        assert response.status == 200

    def test_bad_json_is_400(self, wired):
        app, __ = wired
        response = app.post(
            "/workflow", action="define", pattern_json="{broken"
        )
        assert response.status == 400

    def test_invalid_pattern_is_409(self, wired):
        app, __ = wired
        bad = dict(PATTERN_JSON, name="bad", tasks=[
            {"name": "only", "experiment_type": "Unregistered"},
        ], transitions=[])
        response = app.post(
            "/workflow", action="define", pattern_json=json.dumps(bad)
        )
        assert response.status == 409
        assert "Unregistered" in response.body

    def test_duplicate_name_is_409(self, wired):
        app, __ = wired
        app.post(
            "/workflow", action="define",
            pattern_json=json.dumps(PATTERN_JSON),
        )
        response = app.post(
            "/workflow", action="define",
            pattern_json=json.dumps(PATTERN_JSON),
        )
        assert response.status == 409

    def test_event_emitted(self, wired):
        app, engine = wired
        app.post(
            "/workflow", action="define",
            pattern_json=json.dumps(PATTERN_JSON),
        )
        defined = engine.events.of_kind("pattern.defined")
        assert defined and defined[-1]["pattern"] == "web_defined"


class TestPatternsExport:
    def test_list_patterns(self, wired):
        app, __ = wired
        app.post(
            "/workflow", action="define",
            pattern_json=json.dumps(PATTERN_JSON),
        )
        response = app.get("/workflow", action="patterns")
        assert response.status == 200
        assert [p["name"] for p in response.attributes["patterns"]] == [
            "web_defined"
        ]

    def test_export_roundtrip(self, wired):
        """define → export → re-import under a new name → identical."""
        app, __ = wired
        app.post(
            "/workflow", action="define",
            pattern_json=json.dumps(PATTERN_JSON),
        )
        response = app.get("/workflow", action="patterns", name="web_defined")
        exported = json.loads(response.body)
        assert exported["name"] == "web_defined"
        exported["name"] = "copy"
        second = app.post(
            "/workflow", action="define", pattern_json=json.dumps(exported)
        )
        assert second.status == 200
        assert pattern_to_dict(load_pattern(app.db, "copy"))["tasks"] == (
            pattern_to_dict(load_pattern(app.db, "web_defined"))["tasks"]
        )


class TestDictRoundtrip:
    def test_to_dict_from_dict_identity(self):
        pattern = pattern_from_dict(PATTERN_JSON)
        rebuilt = pattern_from_dict(pattern_to_dict(pattern))
        assert pattern_to_dict(rebuilt) == pattern_to_dict(pattern)

    def test_from_dict_requires_name(self):
        from repro.errors import SpecificationError

        with pytest.raises(SpecificationError):
            pattern_from_dict({"tasks": []})
