"""The workflow monitoring (events) page."""

from __future__ import annotations

import pytest

from repro.core import PatternBuilder, install_workflow_support
from repro.core.persistence import save_pattern
from repro.weblims import build_expdb
from repro.weblims.schema_setup import add_experiment_type


@pytest.fixture
def monitored():
    app = build_expdb()
    engine = install_workflow_support(app)
    add_experiment_type(app.db, "A", [])
    add_experiment_type(app.db, "B", [])
    pattern = (
        PatternBuilder("mon")
        .task("a", experiment_type="A")
        .task("b", experiment_type="B")
        .flow("a", "b")
        .build(db=app.db)
    )
    save_pattern(app.db, pattern)
    return app, engine


class TestEventsPage:
    def test_full_stream(self, monitored):
        app, engine = monitored
        engine.start_workflow("mon")
        response = app.get("/workflow", action="events")
        assert response.status == 200
        kinds = {event.kind for event in response.attributes["events"]}
        assert "workflow.started" in kinds
        assert "task.state" in kinds
        assert "workflow.started" in response.body

    def test_filter_by_kind(self, monitored):
        app, engine = monitored
        engine.start_workflow("mon")
        response = app.get("/workflow", action="events", kind="task.state")
        assert response.attributes["events"]
        assert all(
            event.kind == "task.state"
            for event in response.attributes["events"]
        )

    def test_filter_by_workflow(self, monitored):
        app, engine = monitored
        first = engine.start_workflow("mon")
        second = engine.start_workflow("mon")
        response = app.get(
            "/workflow",
            action="events",
            workflow_id=str(second["workflow_id"]),
            kind="workflow.started",
        )
        events = response.attributes["events"]
        assert len(events) == 1
        assert events[0]["workflow_id"] == second["workflow_id"]
        del first

    def test_incremental_polling_with_since(self, monitored):
        app, engine = monitored
        engine.start_workflow("mon")
        first = app.get("/workflow", action="events")
        marker = first.attributes["last_sequence"]
        # Nothing new yet:
        empty = app.get("/workflow", action="events", since=str(marker))
        assert empty.attributes["events"] == []
        assert empty.attributes["last_sequence"] == marker
        # New activity shows up after the marker only.
        engine.start_workflow("mon")
        fresh = app.get("/workflow", action="events", since=str(marker))
        assert fresh.attributes["events"]
        assert all(
            event.sequence > marker for event in fresh.attributes["events"]
        )
