"""F4: the execution-model state machines, transition-exact."""

from __future__ import annotations

import pytest

from repro.core.states import (
    BASIC_MODEL,
    TASK_INSTANCE_MODEL,
    TASK_MODEL,
    Event,
    InstanceState,
    TaskState,
    basic_machine,
    instance_machine,
    task_machine,
)
from repro.errors import IllegalTransitionError

ALL_EVENTS = list(Event)


def reachable_states(table, initial):
    reached = {initial}
    frontier = [initial]
    while frontier:
        state = frontier.pop()
        for (source, __), target in table.items():
            if source == state and target not in reached:
                reached.add(target)
                frontier.append(target)
    return reached


class TestBasicModelExactTable:
    """The basic model of Fig. 4, state by state."""

    EXPECTED = {
        TaskState.CREATED: {
            Event.BECOME_UNREACHABLE: TaskState.UNREACHABLE,
            Event.BECOME_ELIGIBLE: TaskState.ELIGIBLE,
        },
        TaskState.ELIGIBLE: {
            Event.DENY: TaskState.ABORTED,
            Event.DELEGATE: TaskState.DELEGATED,
        },
        TaskState.DELEGATED: {
            Event.ABORT: TaskState.ABORTED,
            Event.START: TaskState.ACTIVE,
        },
        TaskState.ACTIVE: {
            Event.ABORT: TaskState.ABORTED,
            Event.COMPLETE: TaskState.COMPLETED,
        },
        TaskState.UNREACHABLE: {},
        TaskState.ABORTED: {},
        TaskState.COMPLETED: {},
    }

    @pytest.mark.parametrize("state", list(TaskState))
    def test_exact_legal_events_per_state(self, state):
        expected = self.EXPECTED[state]
        actual = {
            event: target
            for (source, event), target in BASIC_MODEL.items()
            if source == state
        }
        assert actual == expected

    def test_every_state_reachable(self):
        assert reachable_states(BASIC_MODEL, TaskState.CREATED) == set(TaskState)

    def test_terminal_states_absorbing(self):
        for terminal in (TaskState.ABORTED, TaskState.COMPLETED, TaskState.UNREACHABLE):
            for event in ALL_EVENTS:
                assert (terminal, event) not in BASIC_MODEL


class TestTaskModel:
    """The extended task model: no delegated state, restart edges."""

    def test_no_delegated_state(self):
        states = {source for source, __ in TASK_MODEL} | set(TASK_MODEL.values())
        assert TaskState.DELEGATED not in states

    def test_eligible_goes_directly_to_active(self):
        assert TASK_MODEL[(TaskState.ELIGIBLE, Event.ACTIVATE)] is TaskState.ACTIVE

    @pytest.mark.parametrize(
        "state",
        [TaskState.ABORTED, TaskState.COMPLETED, TaskState.UNREACHABLE],
    )
    def test_restart_from_terminal_states(self, state):
        assert TASK_MODEL[(state, Event.RESTART)] is TaskState.CREATED

    def test_restart_is_only_exit_from_terminal(self):
        for state in (TaskState.ABORTED, TaskState.COMPLETED, TaskState.UNREACHABLE):
            exits = [e for (s, e) in TASK_MODEL if s == state]
            assert exits == [Event.RESTART]

    def test_authorization_denial_aborts(self):
        assert TASK_MODEL[(TaskState.ELIGIBLE, Event.DENY)] is TaskState.ABORTED


class TestTaskInstanceModel:
    """No unreachable/eligible — already determined at task level."""

    def test_excluded_states(self):
        states = {s for s, __ in TASK_INSTANCE_MODEL} | set(
            TASK_INSTANCE_MODEL.values()
        )
        assert "unreachable" not in {str(getattr(s, "value", s)) for s in states}
        assert "eligible" not in {str(getattr(s, "value", s)) for s in states}

    def test_full_lifecycle(self):
        machine = instance_machine()
        assert machine.apply(Event.DELEGATE) is InstanceState.DELEGATED
        assert machine.apply(Event.START) is InstanceState.ACTIVE
        assert machine.apply(Event.COMPLETE) is InstanceState.COMPLETED

    def test_abort_possible_from_every_live_state(self):
        for state in (
            InstanceState.CREATED,
            InstanceState.DELEGATED,
            InstanceState.ACTIVE,
        ):
            machine = instance_machine(state)
            assert machine.apply(Event.ABORT) is InstanceState.ABORTED

    def test_terminal_states_absorbing(self):
        for terminal in (InstanceState.COMPLETED, InstanceState.ABORTED):
            for event in ALL_EVENTS:
                assert (terminal, event) not in TASK_INSTANCE_MODEL


class TestStateMachineMechanics:
    def test_illegal_transition_raises_with_context(self):
        machine = basic_machine()
        with pytest.raises(IllegalTransitionError) as excinfo:
            machine.apply(Event.COMPLETE)
        assert excinfo.value.machine == "basic-model"

    def test_state_unchanged_after_illegal_event(self):
        machine = basic_machine()
        with pytest.raises(IllegalTransitionError):
            machine.apply(Event.START)
        assert machine.state is TaskState.CREATED

    def test_history_records_transitions(self):
        machine = task_machine()
        machine.apply(Event.BECOME_ELIGIBLE)
        machine.apply(Event.ACTIVATE)
        assert len(machine.history) == 2

    def test_can_apply_and_legal_events(self):
        machine = task_machine()
        assert machine.can_apply(Event.BECOME_ELIGIBLE)
        assert not machine.can_apply(Event.COMPLETE)
        assert set(machine.legal_events()) == {
            Event.BECOME_ELIGIBLE,
            Event.BECOME_UNREACHABLE,
        }

    def test_machine_accepts_string_states(self):
        """DB rows store plain strings; machines must accept them."""
        machine = task_machine("eligible")
        assert machine.apply(Event.ACTIVATE) is TaskState.ACTIVE


class TestExhaustiveEnumeration:
    """Every (state, event) pair either transitions or raises — and the
    partition matches the model exactly, for all three machines."""

    @pytest.mark.parametrize(
        "table,states,factory",
        [
            (BASIC_MODEL, list(TaskState), basic_machine),
            (TASK_MODEL, list(TaskState), task_machine),
            (TASK_INSTANCE_MODEL, list(InstanceState), instance_machine),
        ],
        ids=["basic", "task", "instance"],
    )
    def test_state_event_partition(self, table, states, factory):
        from repro.core.states import StateMachine

        for state in states:
            for event in ALL_EVENTS:
                machine = StateMachine(table, state, "test")
                if (state, event) in table:
                    assert machine.apply(event) == table[(state, event)]
                else:
                    with pytest.raises(IllegalTransitionError):
                        machine.apply(event)
