"""The Fig. 5 workflow data model and the non-intrusiveness claim."""

from __future__ import annotations

import pytest

from repro.core.datamodel import (
    EXPERIMENT_EXTENSION_COLUMNS,
    WORKFLOW_TABLES,
    install_workflow_datamodel,
)
from repro.weblims.schema_setup import CORE_TABLES


@pytest.fixture
def wf_db(expdb):
    modified = install_workflow_datamodel(expdb.db)
    return expdb.db, modified


class TestNonIntrusiveness:
    def test_only_experiment_table_modified(self, expdb):
        """The paper's headline integration claim, verified literally:
        installing the workflow data model modifies exactly one
        pre-existing table — Experiment."""
        schemas_before = {
            name: list(expdb.db.schema(name).column_names())
            for name in expdb.db.tables()
        }
        modified = install_workflow_datamodel(expdb.db)
        assert modified == ["Experiment"]
        for name, columns_before in schemas_before.items():
            columns_after = expdb.db.schema(name).column_names()
            if name == "Experiment":
                assert columns_after != columns_before
            else:
                assert columns_after == columns_before, name

    def test_experiment_gains_exactly_the_declared_columns(self, wf_db):
        db, __ = wf_db
        columns = set(db.schema("Experiment").column_names())
        for extension in EXPERIMENT_EXTENSION_COLUMNS:
            assert extension in columns

    def test_existing_experiments_unaffected_by_extension(self, expdb):
        from repro.weblims.schema_setup import add_experiment_type

        add_experiment_type(expdb.db, "Pre", [])
        row = expdb.bean.insert("Pre", {"notes": "before workflow support"})
        install_workflow_datamodel(expdb.db)
        after = expdb.db.get("Experiment", row["experiment_id"])
        assert after["notes"] == "before workflow support"
        assert after["workflow_id"] is None
        assert after["wf_current"] is True  # backfilled default


class TestWorkflowTables:
    def test_all_workflow_tables_created(self, wf_db):
        db, __ = wf_db
        for table in WORKFLOW_TABLES:
            assert db.has_table(table), table

    def test_no_name_collision_with_core(self):
        assert not (set(WORKFLOW_TABLES) & set(CORE_TABLES))

    def test_wfptask_references(self, wf_db):
        db, __ = wf_db
        targets = {f.ref_table for f in db.schema("WFPTask").foreign_keys}
        assert targets == {"WorkflowPattern", "ExperimentType"}

    def test_wfptransition_references_tasks(self, wf_db):
        db, __ = wf_db
        targets = {
            f.ref_table for f in db.schema("WFPTransition").foreign_keys
        }
        assert "WFPTask" in targets
        assert "SampleType" in targets

    def test_exptype2agent_links(self, wf_db):
        db, __ = wf_db
        targets = {
            f.ref_table for f in db.schema("ExpType2Agent").foreign_keys
        }
        assert targets == {"ExperimentType", "Agent"}

    def test_legaltransition_references_types(self, wf_db):
        db, __ = wf_db
        targets = {
            f.ref_table for f in db.schema("LegalTransition").foreign_keys
        }
        assert targets == {"ExperimentType"}
