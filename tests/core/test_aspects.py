"""Aspect-oriented interception (§7 future work, implemented)."""

from __future__ import annotations

import pytest

from repro.core import PatternBuilder
from repro.core.aspects import (
    Advice,
    AdviceVeto,
    AspectWeaver,
    install_aspect_workflow_support,
)


class Target:
    """A plain object to weave."""

    def __init__(self) -> None:
        self.calls = []

    def work(self, x: int) -> int:
        self.calls.append(x)
        return x * 2

    def fail(self) -> None:
        raise ValueError("boom")

    def other(self) -> str:
        return "other"


class TestWeaver:
    def test_before_and_after_run_around_call(self):
        target = Target()
        seen = []
        weaver = AspectWeaver()
        weaver.weave(
            target,
            "work",
            Advice(
                before=lambda jp: seen.append(("before", jp.method, jp.args)),
                after_returning=lambda jp, r: seen.append(("after", r)),
            ),
        )
        assert target.work(3) == 6
        assert seen == [("before", "work", (3,)), ("after", 6)]
        assert target.calls == [3]  # the original ran exactly once

    def test_before_can_veto(self):
        target = Target()
        weaver = AspectWeaver()

        def veto(jp):
            raise AdviceVeto("not allowed")

        weaver.weave(target, "work", Advice(before=veto))
        with pytest.raises(AdviceVeto):
            target.work(1)
        assert target.calls == []  # never reached the original

    def test_after_raising_observes_exceptions(self):
        target = Target()
        seen = []
        weaver = AspectWeaver()
        weaver.weave(
            target,
            "fail",
            Advice(after_raising=lambda jp, e: seen.append(type(e).__name__)),
        )
        with pytest.raises(ValueError):
            target.fail()
        assert seen == ["ValueError"]

    def test_pattern_selects_methods(self):
        target = Target()
        weaver = AspectWeaver()
        woven = weaver.weave(target, "w*", Advice())
        assert woven == 1  # only work(); fail/other untouched
        assert target.other() == "other"
        assert ("other", "call") not in weaver.trace

    def test_unweave_restores_original(self):
        target = Target()
        weaver = AspectWeaver()
        weaver.weave(target, "work", Advice(before=lambda jp: None))
        assert weaver.unweave_all() == 1
        target.work(5)
        assert weaver.trace == []  # no interception any more
        assert target.calls == [5]  # original behaviour restored

    def test_trace_records_lifecycle(self):
        target = Target()
        weaver = AspectWeaver()
        weaver.weave(target, "*", Advice())
        target.work(1)
        with pytest.raises(ValueError):
            target.fail()
        assert ("work", "return") in weaver.trace
        assert ("fail", "raise") in weaver.trace

    def test_star_pattern_skips_non_method_callables(self):
        target = Target()
        # Public callables that are NOT methods: a stored lambda, a
        # callable object, a nested class, a plain data attribute.
        target.hook = lambda: "lambda"
        target.runner = Target  # a class is callable too
        target.payload = {"k": "v"}
        weaver = AspectWeaver()
        woven = weaver.weave(target, "*", Advice())
        assert woven == 3  # work, fail, other — nothing else
        assert target.hook() == "lambda"
        assert ("hook", "call") not in weaver.trace
        assert target.work(2) == 4
        assert ("work", "call") in weaver.trace

    def test_trace_is_bounded(self):
        target = Target()
        weaver = AspectWeaver(trace_capacity=4)
        weaver.weave(target, "work", Advice())
        for n in range(5):
            target.work(n)
        # 5 calls -> 10 entries, capped at the 4 most recent.
        assert len(weaver.trace) == 4
        assert weaver.trace_dropped == 6
        assert weaver.trace[-2:] == [("work", "call"), ("work", "return")]

    def test_trace_capacity_zero_disables_tracing(self):
        target = Target()
        weaver = AspectWeaver(trace_capacity=0)
        weaver.weave(target, "work", Advice())
        target.work(1)
        assert weaver.trace == []
        assert weaver.trace_dropped == 0


class TestAspectWorkflowSupport:
    """The Exp-WF aspect: workflow support for non-web clients."""

    @pytest.fixture
    def woven_lab(self, wf_lab):
        wf_lab.define(
            PatternBuilder("flow")
            .task("a", experiment_type="A")
            .task("b", experiment_type="B")
            .flow("a", "b")
        )
        weaver = install_aspect_workflow_support(wf_lab.app.bean, wf_lab.engine)
        return wf_lab, weaver

    def test_direct_bean_write_to_engine_columns_vetoed(self, woven_lab):
        lab, __ = woven_lab
        lab.engine.start_workflow("flow")
        with pytest.raises(AdviceVeto, match="denied"):
            lab.app.bean.update(
                "Experiment",
                {"type_name": "A"},
                {"wf_state": "completed"},
            )
        denied = lab.engine.events.of_kind("request.denied")
        assert denied and denied[-1]["via"] == "aspect"

    def test_direct_delete_of_workflow_experiment_vetoed(self, woven_lab):
        lab, __ = woven_lab
        workflow = lab.engine.start_workflow("flow")
        experiment_id = lab.instances_of(
            workflow["workflow_id"], "a"
        )[0].experiment_id
        with pytest.raises(AdviceVeto):
            lab.app.bean.delete("A", {"experiment_id": experiment_id})
        assert lab.db.get("Experiment", experiment_id) is not None

    def test_harmless_direct_writes_pass_and_postprocess(self, woven_lab):
        lab, __ = woven_lab
        lab.engine.start_workflow("flow")
        checks_before = lab.engine.check_count
        row = lab.app.bean.insert("A", {"reading": 0.1})
        assert row["experiment_id"]
        # Postprocessing re-checked the running workflow (mode c analog).
        assert lab.engine.check_count > checks_before

    def test_unweave_detaches_workflow_support(self, woven_lab):
        lab, weaver = woven_lab
        lab.engine.start_workflow("flow")
        weaver.unweave_all()
        # The same dangerous write now reaches the bean unchecked —
        # Exp-WF is fully detached, the bean was never modified.
        affected = lab.app.bean.update(
            "Experiment", {"type_name": "A"}, {"notes": "direct"}
        )
        assert affected >= 1

    def test_aspect_and_filter_give_same_verdicts(self, woven_lab):
        """The two integration paths (HTTP filter, method aspect) apply
        identical validation — the paper's point that aspects are
        'similar to filters'."""
        lab, __ = woven_lab
        lab.engine.start_workflow("flow")
        allowed, reason = lab.engine.validate_user_action(
            "Experiment", "update", {"wf_state": "x"}
        )
        assert not allowed
        with pytest.raises(AdviceVeto, match=reason.split(" ")[0]):
            lab.app.bean.update(
                "Experiment", {"type_name": "A"}, {"wf_state": "x"}
            )
