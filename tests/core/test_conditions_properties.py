"""Property-based tests for the condition language."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conditions import Condition
from repro.errors import ConditionError

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True).filter(
    lambda s: s not in {"and", "or", "not", "true", "false", "null"}
)

literals = st.one_of(
    st.integers(min_value=0, max_value=10**6).map(str),
    st.floats(min_value=0, max_value=100, allow_nan=False).map(
        lambda f: f"{f:.3f}"
    ),
    st.just("true"),
    st.just("false"),
    st.just("null"),
    st.text(
        alphabet="abcdefg XYZ_", max_size=8
    ).map(lambda s: "'" + s + "'"),
)

comparison_ops = st.sampled_from(["==", "!=", "<", "<=", ">", ">="])


arithmetic_ops = st.sampled_from(["+", "-", "*", "/"])


@st.composite
def numeric_terms(draw, depth=2):
    """Generate arithmetic operand strings (numbers, names, arithmetic)."""
    if depth == 0:
        return draw(
            st.one_of(
                identifiers,
                st.integers(min_value=0, max_value=999).map(str),
                st.floats(min_value=0, max_value=9, allow_nan=False).map(
                    lambda f: f"{f:.2f}"
                ),
            )
        )
    kind = draw(st.sampled_from(["leaf", "binary", "neg", "paren"]))
    if kind == "leaf":
        return draw(numeric_terms(depth=0))
    if kind == "neg":
        return "-" + draw(numeric_terms(depth=depth - 1))
    if kind == "paren":
        return "(" + draw(numeric_terms(depth=depth - 1)) + ")"
    left = draw(numeric_terms(depth=depth - 1))
    right = draw(numeric_terms(depth=depth - 1))
    return f"{left} {draw(arithmetic_ops)} {right}"


@st.composite
def expressions(draw, depth=3):
    """Generate syntactically valid condition strings."""
    if depth == 0:
        use_arithmetic = draw(st.booleans())
        if use_arithmetic:
            left = draw(numeric_terms())
            right = draw(numeric_terms())
        else:
            left = draw(st.one_of(identifiers, literals))
            right = draw(literals)
        op = draw(comparison_ops)
        return f"{left} {op} {right}"
    kind = draw(st.sampled_from(["cmp", "and", "or", "not", "paren"]))
    if kind == "cmp":
        return draw(expressions(depth=0))
    if kind == "not":
        return "not " + draw(expressions(depth=depth - 1))
    if kind == "paren":
        return "(" + draw(expressions(depth=depth - 1)) + ")"
    left = draw(expressions(depth=depth - 1))
    right = draw(expressions(depth=depth - 1))
    return f"{left} {kind} {right}"


@given(source=expressions())
@settings(max_examples=150, deadline=None)
def test_generated_expressions_always_parse(source):
    Condition(source)


@given(source=expressions())
@settings(max_examples=150, deadline=None)
def test_unparse_fixpoint(source):
    """parse → unparse → parse yields an equivalent AST, and a second
    unparse yields the identical string (canonical form is a fixpoint)."""
    condition = Condition(source)
    canonical = condition.unparse()
    reparsed = Condition(canonical)
    assert reparsed == condition
    assert reparsed.unparse() == canonical


@given(
    source=expressions(),
    context_value=st.one_of(
        st.integers(min_value=-100, max_value=100),
        st.booleans(),
        st.text(max_size=5),
        st.none(),
    ),
)
@settings(max_examples=150, deadline=None)
def test_evaluation_is_total(source, context_value):
    """Evaluation either returns a bool or raises ConditionError —
    never any other exception type."""
    condition = Condition(source)
    context = {name.split(".")[0]: context_value for name in condition.names()}
    try:
        result = condition.evaluate(context)
    except ConditionError:
        return
    assert isinstance(result, bool)


@given(source=expressions())
@settings(max_examples=100, deadline=None)
def test_names_are_parseable_identifiers(source):
    condition = Condition(source)
    for name in condition.names():
        for part in name.split("."):
            assert part.isidentifier()
