"""Conditional routing: branching, dead paths, rejoins, loops."""

from __future__ import annotations


def branching(lab):
    """source → (high | low) → sink: the Fig. 1 branch-and-rejoin shape."""
    from repro.core import PatternBuilder

    return lab.define(
        PatternBuilder("branch")
        .task("source", experiment_type="A")
        .task("high", experiment_type="B")
        .task("low", experiment_type="C")
        .task("sink", experiment_type="D")
        .flow("source", "high", condition="experiment.reading >= 0.5")
        .flow("source", "low", condition="experiment.reading < 0.5")
        .flow("high", "sink")
        .flow("low", "sink")
    )


class TestBranching:
    def run_source(self, wf_lab, reading):
        workflow = wf_lab.engine.start_workflow("branch")
        workflow_id = workflow["workflow_id"]
        wf_lab.complete_all(
            workflow_id, "source", result_values={"reading": reading}
        )
        return workflow_id

    def test_high_branch_taken(self, wf_lab):
        branching(wf_lab)
        workflow_id = self.run_source(wf_lab, 0.9)
        assert wf_lab.state_of(workflow_id, "high") == "active"
        assert wf_lab.state_of(workflow_id, "low") == "unreachable"

    def test_low_branch_taken(self, wf_lab):
        branching(wf_lab)
        workflow_id = self.run_source(wf_lab, 0.1)
        assert wf_lab.state_of(workflow_id, "high") == "unreachable"
        assert wf_lab.state_of(workflow_id, "low") == "active"

    def test_branches_rejoin_through_dead_path(self, wf_lab):
        """The not-taken branch must not block the join (Fig. 1)."""
        branching(wf_lab)
        workflow_id = self.run_source(wf_lab, 0.9)
        wf_lab.complete_all(workflow_id, "high")
        assert wf_lab.state_of(workflow_id, "sink") == "eligible"
        wf_lab.approve_pending()
        wf_lab.complete_all(workflow_id, "sink")
        assert wf_lab.engine.workflow_view(workflow_id).status == "completed"

    def test_all_paths_dead_makes_task_unreachable(self, wf_lab):
        from repro.core import PatternBuilder

        wf_lab.define(
            PatternBuilder("deadend")
            .task("source", experiment_type="A")
            .task("gated", experiment_type="B")
            .task("fallback", experiment_type="C")
            .flow("source", "gated", condition="experiment.reading > 2")
            .flow("source", "fallback")
        )
        workflow = wf_lab.engine.start_workflow("deadend")
        workflow_id = workflow["workflow_id"]
        wf_lab.complete_all(
            workflow_id, "source", result_values={"reading": 1.0}
        )
        assert wf_lab.state_of(workflow_id, "gated") == "unreachable"
        # fallback is a final task, so it parks behind authorization.
        assert wf_lab.state_of(workflow_id, "fallback") == "eligible"


class TestConditionContexts:
    def test_output_attributes_visible(self, wf_lab):
        from repro.core import PatternBuilder

        wf_lab.define(
            PatternBuilder("quality_gate")
            .task("producer", experiment_type="A")
            .task("consumer", experiment_type="B")
            .flow("producer", "consumer", condition="output.quality >= 0.8")
        )
        workflow = wf_lab.engine.start_workflow("quality_gate")
        workflow_id = workflow["workflow_id"]
        wf_lab.complete_all(
            workflow_id,
            "producer",
            outputs=[{"sample_type": "SA", "quality": 0.95}],
        )
        assert wf_lab.state_of(workflow_id, "consumer") == "eligible"

    def test_task_counters_visible(self, wf_lab):
        from repro.core import PatternBuilder

        wf_lab.define(
            PatternBuilder("counted")
            .task("many", experiment_type="A", default_instances=2)
            .task("next", experiment_type="B")
            .flow("many", "next", condition="task.completed_instances >= 2")
        )
        workflow = wf_lab.engine.start_workflow("counted")
        workflow_id = workflow["workflow_id"]
        wf_lab.complete_all(workflow_id, "many")
        assert wf_lab.state_of(workflow_id, "next") == "eligible"

    def test_erroring_condition_is_false_and_recorded(self, wf_lab):
        """Errors never pass silently into routing: the condition counts
        as unsatisfied and a condition.error event is emitted."""
        from repro.core import PatternBuilder

        wf_lab.define(
            PatternBuilder("erroring")
            .task("source", experiment_type="A")
            .task("guarded", experiment_type="B")
            .task("safe", experiment_type="C")
            .flow("source", "guarded", condition="output.missing_column > 1")
            .flow("source", "safe")
        )
        workflow = wf_lab.engine.start_workflow("erroring")
        workflow_id = workflow["workflow_id"]
        wf_lab.complete_all(workflow_id, "source")
        assert wf_lab.state_of(workflow_id, "guarded") == "unreachable"
        errors = wf_lab.engine.events.of_kind("condition.error")
        assert errors
        assert "output.missing_column" in errors[0]["condition"]


class TestIterativeLoop:
    def test_conditional_loop_until_quality(self, wf_lab):
        """An iterative loop modeled with conditions (§4.1) combined with
        restart-based repetition."""
        from repro.core import PatternBuilder

        wf_lab.define(
            PatternBuilder("looped")
            .task("start", experiment_type="A")
            .task("improve", experiment_type="B")
            .task("check", experiment_type="C")
            .task("done", experiment_type="D")
            .flow("start", "improve")
            .flow("improve", "check")
            .flow("check", "improve", condition="experiment.reading < 0.5")
            .flow("check", "done", condition="experiment.reading >= 0.5")
        )
        workflow = wf_lab.engine.start_workflow("looped")
        workflow_id = workflow["workflow_id"]
        wf_lab.complete_all(workflow_id, "start")
        wf_lab.complete_all(workflow_id, "improve")
        # First check fails the quality bar: loop back is signalled by
        # 'improve' becoming re-runnable via restart.
        wf_lab.complete_all(
            workflow_id, "check", result_values={"reading": 0.2}
        )
        assert wf_lab.state_of(workflow_id, "done") == "unreachable"
        # The lab restarts the improve→check leg (backtracking).
        wf_lab.engine.restart_task(workflow_id, "improve")
        wf_lab.complete_all(workflow_id, "improve")
        wf_lab.complete_all(
            workflow_id, "check", result_values={"reading": 0.8}
        )
        assert wf_lab.state_of(workflow_id, "done") == "eligible"
