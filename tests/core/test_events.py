"""The engine event log."""

from __future__ import annotations

from repro.core.events import EventLog


class TestEventLog:
    def test_emit_assigns_sequence(self):
        log = EventLog()
        first = log.emit("a", x=1)
        second = log.emit("b", y=2)
        assert first.sequence == 1
        assert second.sequence == 2

    def test_payload_access(self):
        log = EventLog()
        event = log.emit("kind", value=42)
        assert event["value"] == 42
        assert event.get("missing") is None
        assert event.get("missing", "d") == "d"

    def test_of_kind_filters_in_order(self):
        log = EventLog()
        log.emit("a", n=1)
        log.emit("b", n=2)
        log.emit("a", n=3)
        assert [e["n"] for e in log.of_kind("a")] == [1, 3]

    def test_since_excludes_boundary(self):
        log = EventLog()
        log.emit("a")
        marker = log.last_sequence
        log.emit("b")
        log.emit("c")
        assert [e.kind for e in log.since(marker)] == ["b", "c"]

    def test_last_sequence_on_empty(self):
        assert EventLog().last_sequence == 0

    def test_subscribers_notified(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        log.emit("x")
        log.emit("y")
        assert [e.kind for e in seen] == ["x", "y"]

    def test_unsubscribe(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        log.unsubscribe(seen.append)
        log.emit("x")
        assert seen == []
        log.unsubscribe(seen.append)  # idempotent

    def test_clear_keeps_subscribers_and_sequence(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        log.emit("a")
        log.clear()
        assert log.events == []
        event = log.emit("b")
        assert event.sequence == 2  # sequence is never reused
        assert [e.kind for e in seen] == ["a", "b"]
