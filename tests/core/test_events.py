"""The engine event log."""

from __future__ import annotations

from repro.core.events import EventLog


class TestEventLog:
    def test_emit_assigns_sequence(self):
        log = EventLog()
        first = log.emit("a", x=1)
        second = log.emit("b", y=2)
        assert first.sequence == 1
        assert second.sequence == 2

    def test_payload_access(self):
        log = EventLog()
        event = log.emit("kind", value=42)
        assert event["value"] == 42
        assert event.get("missing") is None
        assert event.get("missing", "d") == "d"

    def test_of_kind_filters_in_order(self):
        log = EventLog()
        log.emit("a", n=1)
        log.emit("b", n=2)
        log.emit("a", n=3)
        assert [e["n"] for e in log.of_kind("a")] == [1, 3]

    def test_since_excludes_boundary(self):
        log = EventLog()
        log.emit("a")
        marker = log.last_sequence
        log.emit("b")
        log.emit("c")
        assert [e.kind for e in log.since(marker)] == ["b", "c"]

    def test_last_sequence_on_empty(self):
        assert EventLog().last_sequence == 0

    def test_subscribers_notified(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        log.emit("x")
        log.emit("y")
        assert [e.kind for e in seen] == ["x", "y"]

    def test_unsubscribe(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        log.unsubscribe(seen.append)
        log.emit("x")
        assert seen == []
        log.unsubscribe(seen.append)  # idempotent

    def test_clear_keeps_subscribers_and_sequence(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        log.emit("a")
        log.clear()
        assert log.events == []
        event = log.emit("b")
        assert event.sequence == 2  # sequence is never reused
        assert [e.kind for e in seen] == ["a", "b"]

    def test_last_sequence_survives_clear(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        log.clear()
        # The contract: last_sequence reports the last *emitted* event,
        # so a since() cursor taken before clear() stays valid.
        assert log.last_sequence == 2
        log.emit("c")
        assert log.last_sequence == 3

    def test_since_and_of_kind_after_clear(self):
        log = EventLog()
        log.emit("a")
        marker = log.last_sequence
        log.emit("b")
        log.clear()
        log.emit("a", n=1)
        assert [e.kind for e in log.since(marker)] == ["a"]
        assert [e["n"] for e in log.of_kind("a")] == [1]

    def test_reset_rewinds_sequence(self):
        log = EventLog(capacity=2)
        for __ in range(3):
            log.emit("a")
        log.reset()
        assert log.events == []
        assert log.dropped == 0
        assert log.last_sequence == 0
        assert log.emit("b").sequence == 1


class TestEventLogCapacity:
    def test_unbounded_by_default(self):
        log = EventLog()
        for __ in range(1000):
            log.emit("a")
        assert len(log.events) == 1000
        assert log.dropped == 0

    def test_ring_buffer_evicts_oldest(self):
        log = EventLog(capacity=3)
        for n in range(1, 6):
            log.emit("a", n=n)
        assert [e["n"] for e in log.events] == [3, 4, 5]
        assert log.dropped == 2
        # Sequence numbers are global, not per-buffer.
        assert [e.sequence for e in log.events] == [3, 4, 5]
        assert log.last_sequence == 5

    def test_subscribers_still_see_evicted_events(self):
        log = EventLog(capacity=1)
        seen = []
        log.subscribe(seen.append)
        log.emit("a")
        log.emit("b")
        assert [e.kind for e in seen] == ["a", "b"]


class TestSubscriberEdgeCases:
    def test_unsubscribe_during_dispatch(self):
        log = EventLog()
        seen = []

        def once(event):
            seen.append(event.kind)
            log.unsubscribe(once)

        log.subscribe(once)
        log.subscribe(lambda e: seen.append("tail:" + e.kind))
        log.emit("x")
        log.emit("y")
        # `once` saw only the first event; the other subscriber saw both.
        assert seen == ["x", "tail:x", "tail:y"]

    def test_subscriber_raising_skips_the_rest_but_keeps_the_event(self):
        log = EventLog()
        seen = []

        def broken(event):
            raise RuntimeError("subscriber bug")

        log.subscribe(broken)
        log.subscribe(lambda e: seen.append(e.kind))
        try:
            log.emit("x")
        except RuntimeError:
            pass
        else:  # pragma: no cover - documents the contract
            raise AssertionError("subscriber exceptions propagate")
        # The event was recorded before dispatch; later subscribers were
        # skipped (documented contract: observers must catch their own).
        assert [e.kind for e in log.events] == ["x"]
        assert seen == []
