"""WorkflowBean basics: instantiation, eligibility, completion."""

from __future__ import annotations

import pytest

from repro.core import PatternBuilder
from repro.errors import InstanceError, SpecificationError


def chain(lab, name="chain", instances=1):
    return lab.define(
        PatternBuilder(name)
        .task("a", experiment_type="A", default_instances=instances)
        .task("b", experiment_type="B")
        .flow("a", "b")
    )


class TestInstantiation:
    def test_start_creates_rows_and_activates_initial(self, wf_lab):
        chain(wf_lab)
        workflow = wf_lab.engine.start_workflow("chain")
        assert workflow["status"] == "running"
        assert wf_lab.state_of(workflow["workflow_id"], "a") == "active"
        assert wf_lab.state_of(workflow["workflow_id"], "b") == "created"

    def test_default_instances_spawned(self, wf_lab):
        chain(wf_lab, instances=3)
        workflow = wf_lab.engine.start_workflow("chain")
        instances = wf_lab.instances_of(workflow["workflow_id"], "a")
        assert len(instances) == 3
        assert all(i.state == "delegated" for i in instances)

    def test_instance_rows_live_in_experiment_table(self, wf_lab):
        chain(wf_lab)
        workflow = wf_lab.engine.start_workflow("chain")
        experiments = wf_lab.db.select("Experiment")
        assert len(experiments) == 1
        assert experiments[0]["workflow_id"] == workflow["workflow_id"]
        assert experiments[0]["type_name"] == "A"
        # The child type table row is created alongside.
        assert wf_lab.db.count("A") == 1

    def test_unknown_pattern_rejected(self, wf_lab):
        with pytest.raises(SpecificationError):
            wf_lab.engine.start_workflow("ghost")

    def test_multiple_independent_instances(self, wf_lab):
        chain(wf_lab)
        first = wf_lab.engine.start_workflow("chain")
        second = wf_lab.engine.start_workflow("chain")
        wf_lab.complete_all(first["workflow_id"], "a")
        assert wf_lab.state_of(first["workflow_id"], "a") == "completed"
        assert wf_lab.state_of(second["workflow_id"], "a") == "active"

    def test_project_binding(self, wf_lab):
        project = wf_lab.db.insert("Project", {"name": "crystals"})
        chain(wf_lab)
        workflow = wf_lab.engine.start_workflow(
            "chain", project_id=project["project_id"]
        )
        experiment = wf_lab.db.select("Experiment")[0]
        assert experiment["project_id"] == project["project_id"]
        assert workflow["project_id"] == project["project_id"]


class TestProgression:
    def test_completion_unlocks_destination(self, wf_lab):
        chain(wf_lab)
        workflow = wf_lab.engine.start_workflow("chain")
        wf_lab.complete_all(workflow["workflow_id"], "a")
        # b is final => requires authorization => parked eligible.
        assert wf_lab.state_of(workflow["workflow_id"], "b") == "eligible"
        wf_lab.approve_pending()
        assert wf_lab.state_of(workflow["workflow_id"], "b") == "active"

    def test_workflow_completes_when_final_task_does(self, wf_lab):
        chain(wf_lab)
        workflow = wf_lab.engine.start_workflow("chain")
        workflow_id = workflow["workflow_id"]
        wf_lab.complete_all(workflow_id, "a")
        wf_lab.approve_pending()
        wf_lab.complete_all(workflow_id, "b")
        assert wf_lab.engine.workflow_view(workflow_id).status == "completed"

    def test_failed_instance_aborts_single_instance_task(self, wf_lab):
        chain(wf_lab)
        workflow = wf_lab.engine.start_workflow("chain")
        workflow_id = workflow["workflow_id"]
        wf_lab.complete_all(workflow_id, "a", success=False)
        assert wf_lab.state_of(workflow_id, "a") == "aborted"
        # Downstream becomes unreachable; workflow aborts.
        assert wf_lab.state_of(workflow_id, "b") == "unreachable"
        assert wf_lab.engine.workflow_view(workflow_id).status == "aborted"

    def test_join_waits_for_all_sources(self, wf_lab):
        wf_lab.define(
            PatternBuilder("join")
            .task("left", experiment_type="A")
            .task("right", experiment_type="B")
            .task("sink", experiment_type="C")
            .flow("left", "sink")
            .flow("right", "sink")
        )
        workflow = wf_lab.engine.start_workflow("join")
        workflow_id = workflow["workflow_id"]
        wf_lab.complete_all(workflow_id, "left")
        assert wf_lab.state_of(workflow_id, "sink") == "created"
        wf_lab.complete_all(workflow_id, "right")
        assert wf_lab.state_of(workflow_id, "sink") == "eligible"

    def test_results_recorded_in_type_table(self, wf_lab):
        chain(wf_lab)
        workflow = wf_lab.engine.start_workflow("chain")
        instance = wf_lab.instances_of(workflow["workflow_id"], "a")[0]
        wf_lab.engine.complete_instance(
            instance.experiment_id,
            success=True,
            result_values={"reading": 0.42, "notes": "fine"},
        )
        child = wf_lab.db.get("A", instance.experiment_id)
        assert child["reading"] == 0.42
        parent = wf_lab.db.get("Experiment", instance.experiment_id)
        assert parent["notes"] == "fine"
        assert parent["status"] == "done"

    def test_outputs_create_samples_and_io_links(self, wf_lab):
        chain(wf_lab)
        workflow = wf_lab.engine.start_workflow("chain")
        instance = wf_lab.instances_of(workflow["workflow_id"], "a")[0]
        wf_lab.engine.complete_instance(
            instance.experiment_id,
            success=True,
            outputs=[{"sample_type": "SA", "name": "out-1", "quality": 0.9}],
        )
        samples = wf_lab.db.select("Sample")
        assert len(samples) == 1
        assert samples[0]["type_name"] == "SA"
        links = wf_lab.db.select("ExperimentIO")
        assert len(links) == 1
        assert links[0]["experiment_id"] == instance.experiment_id

    def test_undeclared_output_type_rejected(self, wf_lab):
        chain(wf_lab)
        workflow = wf_lab.engine.start_workflow("chain")
        instance = wf_lab.instances_of(workflow["workflow_id"], "a")[0]
        with pytest.raises(InstanceError, match="does not declare"):
            wf_lab.engine.complete_instance(
                instance.experiment_id,
                success=True,
                outputs=[{"sample_type": "SB"}],  # A outputs SA, not SB
            )

    def test_workflow_column_in_results_rejected(self, wf_lab):
        chain(wf_lab)
        workflow = wf_lab.engine.start_workflow("chain")
        instance = wf_lab.instances_of(workflow["workflow_id"], "a")[0]
        with pytest.raises(InstanceError, match="workflow column"):
            wf_lab.engine.complete_instance(
                instance.experiment_id,
                success=True,
                result_values={"wf_state": "completed"},
            )


class TestInstanceLifecycleGuards:
    def test_started_then_completed(self, wf_lab):
        chain(wf_lab)
        workflow = wf_lab.engine.start_workflow("chain")
        instance = wf_lab.instances_of(workflow["workflow_id"], "a")[0]
        wf_lab.engine.instance_started(instance.experiment_id)
        assert (
            wf_lab.instances_of(workflow["workflow_id"], "a")[0].state
            == "active"
        )
        wf_lab.engine.complete_instance(instance.experiment_id, success=True)

    def test_stale_start_is_ignored(self, wf_lab):
        chain(wf_lab)
        workflow = wf_lab.engine.start_workflow("chain")
        instance = wf_lab.instances_of(workflow["workflow_id"], "a")[0]
        wf_lab.engine.complete_instance(instance.experiment_id, success=True)
        wf_lab.engine.instance_started(instance.experiment_id)  # no raise
        stale = wf_lab.engine.events.of_kind("message.stale")
        assert stale and stale[-1]["experiment_id"] == instance.experiment_id

    def test_stale_result_is_ignored(self, wf_lab):
        chain(wf_lab)
        workflow = wf_lab.engine.start_workflow("chain")
        instance = wf_lab.instances_of(workflow["workflow_id"], "a")[0]
        wf_lab.engine.complete_instance(instance.experiment_id, success=True)
        wf_lab.engine.complete_instance(instance.experiment_id, success=False)
        # First decision stands.
        assert (
            wf_lab.instances_of(workflow["workflow_id"], "a")[0].state
            == "completed"
        )

    def test_non_workflow_experiment_rejected(self, wf_lab):
        standalone = wf_lab.app.bean.insert("A", {})
        with pytest.raises(InstanceError):
            wf_lab.engine.complete_instance(
                standalone["experiment_id"], success=True
            )

    def test_abort_instance(self, wf_lab):
        chain(wf_lab, instances=2)
        workflow = wf_lab.engine.start_workflow("chain")
        instances = wf_lab.instances_of(workflow["workflow_id"], "a")
        wf_lab.engine.abort_instance(instances[0].experiment_id)
        refreshed = wf_lab.instances_of(workflow["workflow_id"], "a")
        assert refreshed[0].state == "aborted"
        assert refreshed[0].success is False
        # Task remains active while the second instance is undecided.
        assert wf_lab.state_of(workflow["workflow_id"], "a") == "active"
