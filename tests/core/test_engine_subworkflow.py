"""Nested workflows: the protein-production pattern of Fig. 1."""

from __future__ import annotations

from repro.core import PatternBuilder


def nested(lab):
    child = lab.define(
        PatternBuilder("child")
        .task("inner1", experiment_type="B")
        .task("inner2", experiment_type="C")
        .flow("inner1", "inner2")
        .data("inner1", "inner2", sample_type="SB")
    )
    parent = (
        PatternBuilder("parent")
        .task("before", experiment_type="A")
        .task("nested", subworkflow="child")
        .task("after", experiment_type="D")
        .flow("before", "nested")
        .flow("nested", "after")
        .data("before", "nested", sample_type="SA")
        .data("nested", "after", sample_type="SC")
        .build(db=lab.db, registry={"child": child})
    )
    from repro.core.persistence import save_pattern

    save_pattern(lab.db, parent)
    return parent


def drive_child(lab, child_id):
    lab.complete_all(child_id, "inner1")
    lab.approve_pending(child_id)
    lab.complete_all(
        child_id,
        "inner2",
        outputs=[{"sample_type": "SC", "name": "child-product"}],
    )


class TestChildLifecycle:
    def test_child_started_when_task_activates(self, wf_lab):
        nested(wf_lab)
        workflow = wf_lab.engine.start_workflow("parent")
        workflow_id = workflow["workflow_id"]
        wf_lab.complete_all(workflow_id, "before")
        view = wf_lab.engine.workflow_view(workflow_id)
        child_id = view.tasks["nested"].child_workflow_id
        assert child_id is not None
        child = wf_lab.engine.workflow_view(child_id)
        assert child.parent_workflow_id == workflow_id
        assert child.status == "running"
        assert child.tasks["inner1"].state == "active"

    def test_subworkflow_task_has_no_instances(self, wf_lab):
        nested(wf_lab)
        workflow = wf_lab.engine.start_workflow("parent")
        workflow_id = workflow["workflow_id"]
        wf_lab.complete_all(workflow_id, "before")
        assert wf_lab.instances_of(workflow_id, "nested") == []

    def test_child_completion_completes_parent_task(self, wf_lab):
        nested(wf_lab)
        workflow = wf_lab.engine.start_workflow("parent")
        workflow_id = workflow["workflow_id"]
        wf_lab.complete_all(workflow_id, "before")
        child_id = wf_lab.engine.workflow_view(workflow_id).tasks[
            "nested"
        ].child_workflow_id
        drive_child(wf_lab, child_id)
        assert wf_lab.engine.workflow_view(child_id).status == "completed"
        assert wf_lab.state_of(workflow_id, "nested") == "completed"
        # The downstream parent task is now reachable.
        assert wf_lab.state_of(workflow_id, "after") in ("eligible", "active")

    def test_child_abort_aborts_parent_task(self, wf_lab):
        nested(wf_lab)
        workflow = wf_lab.engine.start_workflow("parent")
        workflow_id = workflow["workflow_id"]
        wf_lab.complete_all(workflow_id, "before")
        child_id = wf_lab.engine.workflow_view(workflow_id).tasks[
            "nested"
        ].child_workflow_id
        wf_lab.complete_all(child_id, "inner1", success=False)
        assert wf_lab.engine.workflow_view(child_id).status == "aborted"
        assert wf_lab.state_of(workflow_id, "nested") == "aborted"
        assert wf_lab.state_of(workflow_id, "after") == "unreachable"

    def test_full_nested_run_to_completion(self, wf_lab):
        nested(wf_lab)
        workflow = wf_lab.engine.start_workflow("parent")
        workflow_id = workflow["workflow_id"]
        wf_lab.complete_all(workflow_id, "before")
        child_id = wf_lab.engine.workflow_view(workflow_id).tasks[
            "nested"
        ].child_workflow_id
        drive_child(wf_lab, child_id)
        wf_lab.approve_pending(workflow_id)
        wf_lab.complete_all(workflow_id, "after")
        assert wf_lab.engine.workflow_view(workflow_id).status == "completed"


class TestDataFlowAcrossBoundary:
    def test_parent_inputs_reach_child_initial_task(self, wf_lab):
        """Data flowing into the sub-workflow task is offered to the
        child's initial tasks."""
        nested(wf_lab)
        workflow = wf_lab.engine.start_workflow("parent")
        workflow_id = workflow["workflow_id"]
        wf_lab.complete_all(
            workflow_id,
            "before",
            outputs=[{"sample_type": "SA", "name": "from-parent"}],
        )
        child_id = wf_lab.engine.workflow_view(workflow_id).tasks[
            "nested"
        ].child_workflow_id
        available = wf_lab.engine.collect_available_inputs(child_id, "inner1")
        assert {s["name"] for s in available} >= {"from-parent"}

    def test_child_final_outputs_forwarded_to_parent_destination(self, wf_lab):
        nested(wf_lab)
        workflow = wf_lab.engine.start_workflow("parent")
        workflow_id = workflow["workflow_id"]
        wf_lab.complete_all(workflow_id, "before")
        child_id = wf_lab.engine.workflow_view(workflow_id).tasks[
            "nested"
        ].child_workflow_id
        drive_child(wf_lab, child_id)
        available = wf_lab.engine.collect_available_inputs(workflow_id, "after")
        assert {s["name"] for s in available} == {"child-product"}

    def test_restart_cancels_a_still_running_child(self, wf_lab):
        """Restarting the sub-workflow task while its child is mid-run
        must cancel the child — a superseded activation must not keep
        consuming agents."""
        nested(wf_lab)
        workflow = wf_lab.engine.start_workflow("parent")
        workflow_id = workflow["workflow_id"]
        wf_lab.complete_all(workflow_id, "before")
        running_child = wf_lab.engine.workflow_view(workflow_id).tasks[
            "nested"
        ].child_workflow_id
        assert wf_lab.engine.workflow_view(running_child).status == "running"
        wf_lab.engine.restart_task(workflow_id, "nested", cascade=False)
        assert wf_lab.engine.workflow_view(running_child).status == "aborted"
        # A fresh child is spawned for the new activation (the restarted
        # task re-evaluates to eligible and starts it immediately since
        # 'nested' itself needs no authorization here... unless final).
        new_child = wf_lab.engine.workflow_view(workflow_id).tasks[
            "nested"
        ].child_workflow_id
        assert new_child != running_child

    def test_restart_of_subworkflow_task_detaches_child(self, wf_lab):
        nested(wf_lab)
        workflow = wf_lab.engine.start_workflow("parent")
        workflow_id = workflow["workflow_id"]
        wf_lab.complete_all(workflow_id, "before")
        first_child = wf_lab.engine.workflow_view(workflow_id).tasks[
            "nested"
        ].child_workflow_id
        drive_child(wf_lab, first_child)
        wf_lab.engine.restart_task(workflow_id, "nested")
        second_child = wf_lab.engine.workflow_view(workflow_id).tasks[
            "nested"
        ].child_workflow_id
        assert second_child is not None
        assert second_child != first_child
