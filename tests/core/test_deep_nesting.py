"""Sub-workflows nested three levels deep."""

from __future__ import annotations

import pytest

from repro.core import PatternBuilder
from repro.core.persistence import save_pattern


@pytest.fixture
def three_levels(wf_lab):
    level3 = wf_lab.define(
        PatternBuilder("level3").task("leaf", experiment_type="C")
    )
    level2 = (
        PatternBuilder("level2")
        .task("mid", experiment_type="B")
        .task("inner", subworkflow="level3")
        .flow("mid", "inner")
        .build(db=wf_lab.db, registry={"level3": level3})
    )
    save_pattern(wf_lab.db, level2)
    level1 = (
        PatternBuilder("level1")
        .task("top", experiment_type="A")
        .task("nested", subworkflow="level2")
        .flow("top", "nested")
        .build(db=wf_lab.db, registry={"level2": level2, "level3": level3})
    )
    save_pattern(wf_lab.db, level1)
    return wf_lab


def child_of(lab, workflow_id, task_name):
    return lab.engine.workflow_view(workflow_id).tasks[
        task_name
    ].child_workflow_id


class TestThreeLevelNesting:
    def drive(self, lab):
        root = lab.engine.start_workflow("level1")
        root_id = root["workflow_id"]
        lab.complete_all(root_id, "top")
        lab.approve_pending(root_id)  # start level2
        mid_id = child_of(lab, root_id, "nested")
        lab.complete_all(mid_id, "mid")
        lab.approve_pending(mid_id)  # start level3
        leaf_id = child_of(lab, mid_id, "inner")
        lab.approve_pending(leaf_id)  # leaf is final in level3
        lab.complete_all(leaf_id, "leaf")
        return root_id, mid_id, leaf_id

    def test_completion_bubbles_up_through_every_level(self, three_levels):
        lab = three_levels
        root_id, mid_id, leaf_id = self.drive(lab)
        assert lab.engine.workflow_view(leaf_id).status == "completed"
        assert lab.engine.workflow_view(mid_id).status == "completed"
        assert lab.engine.workflow_view(root_id).status == "completed"

    def test_parent_chain_recorded(self, three_levels):
        lab = three_levels
        root_id, mid_id, leaf_id = self.drive(lab)
        leaf = lab.engine.workflow_view(leaf_id)
        mid = lab.engine.workflow_view(mid_id)
        assert leaf.parent_workflow_id == mid_id
        assert mid.parent_workflow_id == root_id

    def test_leaf_abort_cascades_to_the_root(self, three_levels):
        lab = three_levels
        root = lab.engine.start_workflow("level1")
        root_id = root["workflow_id"]
        lab.complete_all(root_id, "top")
        lab.approve_pending(root_id)
        mid_id = child_of(lab, root_id, "nested")
        lab.complete_all(mid_id, "mid")
        lab.approve_pending(mid_id)
        leaf_id = child_of(lab, mid_id, "inner")
        lab.approve_pending(leaf_id)
        lab.complete_all(leaf_id, "leaf", success=False)
        assert lab.engine.workflow_view(leaf_id).status == "aborted"
        assert lab.engine.workflow_view(mid_id).status == "aborted"
        assert lab.engine.workflow_view(root_id).status == "aborted"

    def test_cancel_at_root_reaches_the_leaf(self, three_levels):
        lab = three_levels
        root = lab.engine.start_workflow("level1")
        root_id = root["workflow_id"]
        lab.complete_all(root_id, "top")
        lab.approve_pending(root_id)
        mid_id = child_of(lab, root_id, "nested")
        lab.complete_all(mid_id, "mid")
        lab.approve_pending(mid_id)
        leaf_id = child_of(lab, mid_id, "inner")
        lab.approve_pending(leaf_id)
        lab.engine.cancel_workflow(root_id, by="pi")
        assert lab.engine.workflow_view(root_id).status == "aborted"
        assert lab.engine.workflow_view(mid_id).status == "aborted"
        assert lab.engine.workflow_view(leaf_id).status == "aborted"
