"""WorkflowServlet odds and ends: inputs, list filters, error paths."""

from __future__ import annotations

import json

import pytest

from repro.core import PatternBuilder, install_workflow_support
from repro.core.persistence import save_pattern
from repro.minidb.schema import Column
from repro.minidb.types import ColumnType
from repro.weblims import build_expdb
from repro.weblims.schema_setup import (
    add_experiment_type,
    add_sample_type,
    declare_experiment_io,
)


@pytest.fixture
def wired():
    app = build_expdb()
    engine = install_workflow_support(app)
    add_experiment_type(app.db, "A", [Column("reading", ColumnType.REAL)])
    add_experiment_type(app.db, "B", [])
    add_sample_type(app.db, "SA", [])
    declare_experiment_io(app.db, "A", "SA", "output")
    declare_experiment_io(app.db, "B", "SA", "input")
    pattern = (
        PatternBuilder("misc")
        .task("a", experiment_type="A")
        .task("b", experiment_type="B")
        .flow("a", "b")
        .data("a", "b", sample_type="SA")
        .build(db=app.db)
    )
    save_pattern(app.db, pattern)
    return app, engine


class TestInputsAction:
    def test_candidate_inputs_page(self, wired):
        app, engine = wired
        workflow = engine.start_workflow("misc")
        workflow_id = workflow["workflow_id"]
        experiment_id = engine.workflow_view(workflow_id).tasks["a"].instances[
            0
        ].experiment_id
        outputs = json.dumps(
            [{"sample_type": "SA", "name": "candidate", "quality": 0.7}]
        )
        app.post(
            "/workflow",
            action="complete_instance",
            experiment_id=str(experiment_id),
            success="true",
            outputs=outputs,
        )
        response = app.get(
            "/workflow",
            action="inputs",
            workflow_id=str(workflow_id),
            task="b",
        )
        assert response.status == 200
        names = {sample["name"] for sample in response.attributes["inputs"]}
        assert names == {"candidate"}
        assert "1 candidate input(s)" in response.body


class TestListFilters:
    def test_list_by_status(self, wired):
        app, engine = wired
        engine.start_workflow("misc")
        running = app.get("/workflow", action="list", status="running")
        assert len(running.attributes["workflows"]) == 1
        completed = app.get("/workflow", action="list", status="completed")
        assert completed.attributes["workflows"] == []


class TestErrorPaths:
    def test_status_of_unknown_workflow_is_409(self, wired):
        app, __ = wired
        response = app.get("/workflow", action="status", workflow_id="999")
        assert response.status == 409

    def test_missing_required_param_is_400(self, wired):
        app, __ = wired
        response = app.get("/workflow", action="status")
        assert response.status == 400

    def test_missing_action_is_400(self, wired):
        app, __ = wired
        response = app.get("/workflow")
        assert response.status == 400

    def test_restart_unknown_task_is_409(self, wired):
        app, engine = wired
        workflow = engine.start_workflow("misc")
        response = app.post(
            "/workflow",
            action="restart",
            workflow_id=str(workflow["workflow_id"]),
            task="ghost",
        )
        assert response.status == 409

    def test_cancel_unknown_workflow_is_409(self, wired):
        app, __ = wired
        response = app.post(
            "/workflow", action="cancel", workflow_id="424242"
        )
        assert response.status == 409

    def test_authorize_malformed_id_is_400(self, wired):
        app, __ = wired
        response = app.post(
            "/workflow", action="authorize", auth_id="not-a-number",
            approve="true",
        )
        assert response.status == 400
        assert "must be an integer" in response.body

    def test_events_malformed_since_is_400(self, wired):
        app, __ = wired
        response = app.get("/workflow", action="events", since="later")
        assert response.status == 400
