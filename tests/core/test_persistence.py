"""Pattern and agent persistence (Fig. 5 tables in use)."""

from __future__ import annotations

import pytest

from repro.core import PatternBuilder
from repro.core.datamodel import install_workflow_datamodel
from repro.core.persistence import (
    agents_for_type,
    authorize_agent,
    load_pattern,
    pattern_registry,
    register_agent,
    save_pattern,
)
from repro.core.spec import AgentSpec
from repro.errors import SpecificationError, UnknownAgentError
from repro.weblims.schema_setup import (
    add_experiment_type,
    add_sample_type,
    declare_experiment_io,
)


@pytest.fixture
def wf_app(expdb):
    install_workflow_datamodel(expdb.db)
    add_experiment_type(expdb.db, "A", [])
    add_experiment_type(expdb.db, "B", [])
    add_sample_type(expdb.db, "S", [])
    declare_experiment_io(expdb.db, "A", "S", "output")
    declare_experiment_io(expdb.db, "B", "S", "input")
    return expdb


def build_pattern(db, name="p"):
    return (
        PatternBuilder(name, description="demo")
        .task("a", experiment_type="A", default_instances=3)
        .task("b", experiment_type="B")
        .flow("a", "b", condition="output.quality >= 0.5")
        .data("a", "b", sample_type="S")
        .build(db=db)
    )


class TestPatternRoundtrip:
    def test_save_and_load_identical_structure(self, wf_app):
        pattern = build_pattern(wf_app.db)
        save_pattern(wf_app.db, pattern)
        loaded = load_pattern(wf_app.db, "p")
        assert set(loaded.tasks) == set(pattern.tasks)
        assert loaded.task("a").default_instances == 3
        assert loaded.task("b").requires_authorization  # final task
        assert len(loaded.transitions) == 2
        conditions = {t.condition for t in loaded.transitions}
        assert "output.quality >= 0.5" in conditions
        data = [t for t in loaded.transitions if t.is_data]
        assert data[0].sample_type == "S"

    def test_duplicate_name_rejected(self, wf_app):
        save_pattern(wf_app.db, build_pattern(wf_app.db))
        with pytest.raises(SpecificationError, match="already stored"):
            save_pattern(wf_app.db, build_pattern(wf_app.db))

    def test_save_failure_is_atomic(self, wf_app):
        """A pattern referencing an unsaved sub-workflow leaves nothing."""
        parent = (
            PatternBuilder("parent")
            .task("sub", subworkflow="missing_child")
            .build()
        )
        with pytest.raises(SpecificationError):
            save_pattern(wf_app.db, parent)
        assert wf_app.db.count("WorkflowPattern") == 0
        assert wf_app.db.count("WFPTask") == 0

    def test_load_unknown_pattern_rejected(self, wf_app):
        with pytest.raises(SpecificationError):
            load_pattern(wf_app.db, "ghost")

    def test_subworkflow_roundtrip(self, wf_app):
        child = (
            PatternBuilder("child").task("inner", experiment_type="A").build()
        )
        save_pattern(wf_app.db, child)
        parent = (
            PatternBuilder("parent")
            .task("start", experiment_type="A")
            .task("sub", subworkflow="child")
            .flow("start", "sub")
            .build(registry={"child": child})
        )
        save_pattern(wf_app.db, parent)
        loaded = load_pattern(wf_app.db, "parent")
        assert loaded.task("sub").subworkflow == "child"

    def test_registry_loads_everything(self, wf_app):
        save_pattern(wf_app.db, build_pattern(wf_app.db, "one"))
        child = (
            PatternBuilder("two").task("x", experiment_type="A").build()
        )
        save_pattern(wf_app.db, child)
        registry = pattern_registry(wf_app.db)
        assert set(registry) == {"one", "two"}


class TestLegalTransitions:
    def test_derived_from_control_flow(self, wf_app):
        save_pattern(wf_app.db, build_pattern(wf_app.db))
        rows = wf_app.db.select("LegalTransition")
        assert [(r["source_type"], r["target_type"]) for r in rows] == [
            ("A", "B")
        ]

    def test_not_duplicated_across_patterns(self, wf_app):
        save_pattern(wf_app.db, build_pattern(wf_app.db, "one"))
        save_pattern(wf_app.db, build_pattern(wf_app.db, "two"))
        assert wf_app.db.count("LegalTransition") == 1


class TestAgents:
    def test_register_and_lookup(self, wf_app):
        register_agent(wf_app.db, AgentSpec("robo", "robot", contact="bay-3"))
        authorize_agent(wf_app.db, "robo", "A")
        agents = agents_for_type(wf_app.db, "A")
        assert [a["name"] for a in agents] == ["robo"]
        assert agents[0]["queue"] == "agent.robo"

    def test_duplicate_agent_rejected(self, wf_app):
        register_agent(wf_app.db, AgentSpec("robo", "robot"))
        with pytest.raises(SpecificationError):
            register_agent(wf_app.db, AgentSpec("robo", "robot"))

    def test_authorize_unknown_agent_rejected(self, wf_app):
        with pytest.raises(UnknownAgentError):
            authorize_agent(wf_app.db, "ghost", "A")

    def test_multiple_agents_ordered_stably(self, wf_app):
        for name in ("first", "second"):
            register_agent(wf_app.db, AgentSpec(name, "robot"))
            authorize_agent(wf_app.db, name, "A")
        assert [a["name"] for a in agents_for_type(wf_app.db, "A")] == [
            "first",
            "second",
        ]

    def test_no_agents_for_unmapped_type(self, wf_app):
        assert agents_for_type(wf_app.db, "B") == []
