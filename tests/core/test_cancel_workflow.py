"""Cancelling a whole workflow."""

from __future__ import annotations

import pytest

from repro.core import PatternBuilder
from repro.errors import InstanceError


@pytest.fixture
def running(wf_lab):
    wf_lab.define(
        PatternBuilder("cancellable")
        .task("a", experiment_type="A", default_instances=2)
        .task("b", experiment_type="B")
        .flow("a", "b")
    )
    workflow = wf_lab.engine.start_workflow("cancellable")
    return wf_lab, workflow["workflow_id"]


class TestCancel:
    def test_cancel_aborts_everything(self, running):
        lab, workflow_id = running
        lab.engine.cancel_workflow(workflow_id, by="pi")
        view = lab.engine.workflow_view(workflow_id)
        assert view.status == "aborted"
        assert view.tasks["a"].state == "aborted"
        assert all(i.state == "aborted" for i in view.tasks["a"].instances)
        assert view.tasks["b"].state in ("created", "unreachable")
        events = lab.engine.events.of_kind("workflow.cancelled")
        assert events[-1]["by"] == "pi"

    def test_cancel_clears_pending_authorizations(self, running):
        lab, workflow_id = running
        lab.complete_all(workflow_id, "a")
        assert lab.engine.pending_authorizations(workflow_id)
        lab.engine.cancel_workflow(workflow_id)
        assert lab.engine.pending_authorizations(workflow_id) == []

    def test_eligible_gated_task_denied_on_cancel(self, running):
        lab, workflow_id = running
        lab.complete_all(workflow_id, "a")
        assert lab.state_of(workflow_id, "b") == "eligible"
        lab.engine.cancel_workflow(workflow_id)
        assert lab.state_of(workflow_id, "b") == "aborted"

    def test_double_cancel_rejected(self, running):
        lab, workflow_id = running
        lab.engine.cancel_workflow(workflow_id)
        with pytest.raises(InstanceError, match="already"):
            lab.engine.cancel_workflow(workflow_id)

    def test_unknown_workflow_rejected(self, running):
        lab, __ = running
        with pytest.raises(InstanceError):
            lab.engine.cancel_workflow(9999)

    def test_restart_reopens_cancelled_workflow(self, running):
        lab, workflow_id = running
        lab.engine.cancel_workflow(workflow_id)
        lab.engine.restart_task(workflow_id, "a")
        view = lab.engine.workflow_view(workflow_id)
        assert view.status == "running"
        assert view.tasks["a"].state == "active"

    def test_cancel_over_the_web(self, running):
        lab, workflow_id = running
        # Wire the servlet path for this lab's engine.
        from repro.core.filter import (
            WORKFLOW_TEMPLATES,
            WorkflowServlet,
        )

        servlet = WorkflowServlet(lab.engine)
        for name, source in WORKFLOW_TEMPLATES.items():
            if name not in lab.app.templates.names():
                lab.app.templates.register(name, source)
        lab.app.container.descriptor.add_servlet(servlet, "/workflow")
        response = lab.app.post(
            "/workflow",
            action="cancel",
            workflow_id=str(workflow_id),
            by="web-user",
        )
        assert response.status == 200
        assert lab.engine.workflow_view(workflow_id).status == "aborted"


class TestCancelWithSubworkflow:
    def test_cancel_cascades_into_child(self, wf_lab):
        from repro.core.persistence import save_pattern

        child = wf_lab.define(
            PatternBuilder("child").task("inner", experiment_type="B")
        )
        parent = (
            PatternBuilder("parent")
            .task("before", experiment_type="A")
            .task("nested", subworkflow="child")
            .flow("before", "nested")
            .build(db=wf_lab.db, registry={"child": child})
        )
        save_pattern(wf_lab.db, parent)
        workflow = wf_lab.engine.start_workflow("parent")
        workflow_id = workflow["workflow_id"]
        wf_lab.complete_all(workflow_id, "before")
        wf_lab.approve_pending()  # start the nested task / child workflow
        child_id = wf_lab.engine.workflow_view(workflow_id).tasks[
            "nested"
        ].child_workflow_id
        assert child_id is not None
        wf_lab.engine.cancel_workflow(workflow_id)
        assert wf_lab.engine.workflow_view(child_id).status == "aborted"
