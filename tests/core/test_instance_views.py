"""Read-only runtime views (core.instance)."""

from __future__ import annotations

import pytest

from repro.core import PatternBuilder
from repro.core.instance import load_workflow_view
from repro.errors import InstanceError


@pytest.fixture
def running(wf_lab):
    wf_lab.define(
        PatternBuilder("viewed")
        .task("a", experiment_type="A", default_instances=2)
        .task("b", experiment_type="B")
        .flow("a", "b")
    )
    workflow = wf_lab.engine.start_workflow("viewed")
    return wf_lab, workflow["workflow_id"]


class TestWorkflowView:
    def test_snapshot_fields(self, running):
        lab, workflow_id = running
        view = load_workflow_view(lab.db, workflow_id)
        assert view.workflow_id == workflow_id
        assert view.pattern_name == "viewed"
        assert view.status == "running"
        assert set(view.tasks) == {"a", "b"}
        assert view.task("a").experiment_type == "A"

    def test_instance_counts(self, running):
        lab, workflow_id = running
        instances = load_workflow_view(lab.db, workflow_id).task("a").instances
        assert len(instances) == 2
        lab.engine.complete_instance(instances[0].experiment_id, success=True)
        lab.engine.complete_instance(instances[1].experiment_id, success=False)
        task = load_workflow_view(lab.db, workflow_id).task("a")
        assert task.completed_instances == 1
        assert task.aborted_instances == 1
        assert task.undecided_instances == 0

    def test_instance_view_decided_flag(self, running):
        lab, workflow_id = running
        instance = load_workflow_view(lab.db, workflow_id).task("a").instances[0]
        assert not instance.decided
        lab.engine.complete_instance(instance.experiment_id, success=True)
        refreshed = load_workflow_view(lab.db, workflow_id).task("a").instances[0]
        assert refreshed.decided
        assert refreshed.success is True

    def test_unknown_workflow_rejected(self, running):
        lab, __ = running
        with pytest.raises(InstanceError):
            load_workflow_view(lab.db, 9999)

    def test_view_is_a_snapshot_not_live(self, running):
        lab, workflow_id = running
        view = load_workflow_view(lab.db, workflow_id)
        lab.complete_all(workflow_id, "a")
        # The old snapshot is unchanged; a fresh one reflects reality.
        assert view.task("a").state == "active"
        assert load_workflow_view(lab.db, workflow_id).task("a").state == (
            "completed"
        )

    def test_default_and_authorization_metadata(self, running):
        lab, workflow_id = running
        view = load_workflow_view(lab.db, workflow_id)
        assert view.task("a").default_instances == 2
        assert view.task("b").requires_authorization  # final task
