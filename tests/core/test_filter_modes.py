"""F7: the WorkflowFilter's three request-handling modes.

(a) preprocess-then-forward-or-deny, (b) full processing bypassing the
original destination, (c) postprocessing of the response — plus the
pass-through path for non-workflow-related requests.
"""

from __future__ import annotations

import json

import pytest

from repro.core import PatternBuilder, install_workflow_support
from repro.core.persistence import save_pattern
from repro.minidb.schema import Column
from repro.minidb.types import ColumnType
from repro.weblims import build_expdb
from repro.weblims.schema_setup import (
    add_experiment_type,
    add_sample_type,
    declare_experiment_io,
)


@pytest.fixture
def wired():
    """Exp-DB with Exp-WF installed via the deployment descriptor."""
    app = build_expdb()
    engine = install_workflow_support(app)
    add_experiment_type(app.db, "A", [Column("reading", ColumnType.REAL)])
    add_experiment_type(app.db, "B", [])
    add_sample_type(app.db, "SA", [])
    declare_experiment_io(app.db, "A", "SA", "output")
    declare_experiment_io(app.db, "B", "SA", "input")
    pattern = (
        PatternBuilder("flow")
        .task("a", experiment_type="A")
        .task("b", experiment_type="B")
        .flow("a", "b")
        .data("a", "b", sample_type="SA")
        .build(db=app.db)
    )
    save_pattern(app.db, pattern)
    filter_ = app.container.context["workflow_filter"]
    return app, engine, filter_


class TestInstallation:
    def test_descriptor_only_integration(self, wired):
        """Exp-WF appears in the descriptor; Exp-DB components untouched."""
        app, __, ___ = wired
        descriptor = app.container.descriptor
        assert "WorkflowServlet" in descriptor.servlet_names()
        assert "WorkflowFilter" in descriptor.filter_names()
        # The original servlet registration is unchanged.
        assert "UserRequestServlet" in descriptor.servlet_names()

    def test_workflow_servlet_reachable_directly(self, wired):
        app, __, ___ = wired
        response = app.post("/workflow", action="list")
        assert response.status == 200
        assert response.attributes["workflows"] == []


class TestPassThrough:
    def test_reads_not_intercepted(self, wired):
        app, __, filter_ = wired
        app.get("/user", action="read", table="A")
        assert filter_.stats.passed_through == 1
        assert filter_.stats.preprocessed == 0

    def test_list_and_form_not_intercepted(self, wired):
        app, __, filter_ = wired
        app.get("/user", action="list")
        app.get("/user", action="form", table="A")
        assert filter_.stats.passed_through == 2

    def test_insert_into_plain_table_not_intercepted(self, wired):
        app, __, filter_ = wired
        app.post("/user", action="insert", table="Project", v_name="p")
        assert filter_.stats.passed_through == 1


class TestModeAPreprocess:
    def test_relevant_insert_is_preprocessed_and_forwarded(self, wired):
        app, __, filter_ = wired
        response = app.post(
            "/user", action="insert", table="A", v_reading="0.5"
        )
        assert response.status == 200
        assert filter_.stats.preprocessed == 1
        assert filter_.stats.denied == 0
        assert app.db.count("A") == 1

    def test_direct_write_to_engine_columns_denied(self, wired):
        app, engine, filter_ = wired
        workflow = engine.start_workflow("flow")
        response = app.post(
            "/user",
            action="update",
            table="Experiment",
            c_type_name="A",
            v_wf_state="completed",
        )
        assert response.status == 403
        assert "workflow engine" in response.body
        assert filter_.stats.denied == 1
        # The instance is untouched.
        view = engine.workflow_view(workflow["workflow_id"])
        assert view.tasks["a"].instances[0].state == "delegated"

    def test_delete_of_running_workflow_experiment_denied(self, wired):
        app, engine, filter_ = wired
        workflow = engine.start_workflow("flow")
        experiment_id = engine.workflow_view(workflow["workflow_id"]).tasks[
            "a"
        ].instances[0].experiment_id
        response = app.post(
            "/user",
            action="delete",
            table="Experiment",
            c_experiment_id=str(experiment_id),
        )
        assert response.status == 403
        assert app.db.get("Experiment", experiment_id) is not None

    def test_delete_of_non_workflow_experiment_allowed(self, wired):
        app, __, ___ = wired
        app.post("/user", action="insert", table="A", v_reading="1.0")
        response = app.post(
            "/user", action="delete", table="A", c_reading="1.0"
        )
        assert response.status == 200
        assert app.db.count("A") == 0

    def test_denied_request_emits_event(self, wired):
        app, engine, __ = wired
        engine.start_workflow("flow")
        app.post(
            "/user",
            action="update",
            table="Experiment",
            c_type_name="A",
            v_workflow_id="7",
        )
        denied = engine.events.of_kind("request.denied")
        assert denied and denied[-1]["table"] == "Experiment"


class TestModeBProcess:
    def test_workflow_action_bypasses_user_servlet(self, wired):
        app, engine, filter_ = wired
        before = app.container.stats.servlet_invocations
        response = app.post(
            "/user", workflow_action="start", pattern="flow"
        )
        assert response.status == 200
        assert filter_.stats.processed == 1
        # The UserRequestServlet never ran: the filter handled it whole.
        assert app.container.stats.servlet_invocations == before
        assert engine.list_workflows()

    def test_workflow_status_via_mode_b(self, wired):
        app, engine, __ = wired
        workflow = engine.start_workflow("flow")
        response = app.get(
            "/user",
            workflow_action="status",
            workflow_id=str(workflow["workflow_id"]),
        )
        assert response.status == 200
        assert "Workflow" in response.body

    def test_complete_instance_via_web(self, wired):
        app, engine, __ = wired
        workflow = engine.start_workflow("flow")
        workflow_id = workflow["workflow_id"]
        experiment_id = engine.workflow_view(workflow_id).tasks["a"].instances[
            0
        ].experiment_id
        outputs = json.dumps([{"sample_type": "SA", "name": "web-out"}])
        response = app.post(
            "/user",
            workflow_action="complete_instance",
            experiment_id=str(experiment_id),
            success="true",
            outputs=outputs,
            r_reading="0.7",
        )
        assert response.status == 200
        view = engine.workflow_view(workflow_id)
        assert view.tasks["a"].state == "completed"
        assert app.db.get("A", experiment_id)["reading"] == 0.7

    def test_bad_workflow_action_is_400(self, wired):
        app, __, ___ = wired
        response = app.post("/user", workflow_action="explode")
        assert response.status == 400

    def test_workflow_error_is_409(self, wired):
        app, engine, __ = wired
        workflow = engine.start_workflow("flow")
        response = app.post(
            "/user",
            workflow_action="spawn",
            workflow_id=str(workflow["workflow_id"]),
            task="b",  # not active yet
        )
        assert response.status == 409


class TestModeCPostprocess:
    def test_successful_change_triggers_recheck_and_notice(self, wired):
        """A user entering experiment data makes the workflow progress,
        and the response carries the workflow manager's notices."""
        app, engine, filter_ = wired
        workflow = engine.start_workflow("flow")
        workflow_id = workflow["workflow_id"]
        experiment_id = engine.workflow_view(workflow_id).tasks["a"].instances[
            0
        ].experiment_id
        # Complete the instance through the engine, then touch a relevant
        # table through the web: postprocessing must re-check workflows.
        engine.complete_instance(experiment_id, success=True)
        response = app.post(
            "/user",
            action="insert",
            table="Sample",
            v_type_name="SA",
            v_name="stock",
        )
        assert response.status == 200
        assert filter_.stats.postprocessed >= 1
        assert "workflow_events" in response.attributes

    def test_failed_request_not_postprocessed(self, wired):
        """Only successful user actions need postprocessing."""
        app, __, filter_ = wired
        response = app.post(
            "/user", action="insert", table="A", v_reading="not-a-number"
        )
        assert response.status == 400
        assert filter_.stats.postprocessed == 0

    def test_notices_appended_to_body(self, wired):
        app, engine, __ = wired
        workflow = engine.start_workflow("flow")
        workflow_id = workflow["workflow_id"]
        experiment_id = engine.workflow_view(workflow_id).tasks["a"].instances[
            0
        ].experiment_id
        outputs = json.dumps([{"sample_type": "SA", "name": "o"}])
        response = app.post(
            "/user",
            workflow_action="complete_instance",
            experiment_id=str(experiment_id),
            success="true",
            outputs=outputs,
        )
        # Mode (b) responses come from the WorkflowServlet itself; now a
        # mode (c) request shows appended notices when state changed.
        app.post("/user", action="insert", table="A", v_reading="0.1")
        assert response.status == 200
