"""Arithmetic in transition conditions (language extension)."""

from __future__ import annotations

import pytest

from repro.core.conditions import Condition
from repro.errors import ConditionError

CONTEXT = {
    "output": {"yield_mg": 12.0, "volume": 4.0, "count": 7},
    "experiment": {"input_mg": 20.0},
}


def true(source: str) -> bool:
    return Condition(source).evaluate(CONTEXT)


class TestArithmetic:
    def test_division_in_condition(self):
        assert true("output.yield_mg / experiment.input_mg >= 0.5")
        assert not true("output.yield_mg / experiment.input_mg >= 0.7")

    def test_addition_and_subtraction(self):
        assert true("output.yield_mg + output.volume == 16.0")
        assert true("output.yield_mg - output.volume > 7")

    def test_multiplication(self):
        assert true("output.volume * 3 == 12")

    def test_precedence_mul_over_add(self):
        assert true("2 + 3 * 4 == 14")
        assert true("(2 + 3) * 4 == 20")

    def test_left_associativity(self):
        assert true("10 - 3 - 2 == 5")
        assert true("12 / 3 / 2 == 2")

    def test_unary_minus(self):
        assert true("-output.volume == -4")
        assert true("0 - -3 == 3")
        assert true("-2 * -2 == 4")

    def test_arithmetic_on_both_sides(self):
        assert true("output.yield_mg / 2 > output.volume + 1")

    def test_integer_literal_arithmetic(self):
        assert true("output.count * 2 + 1 == 15")


class TestArithmeticErrors:
    def test_division_by_zero_raises(self):
        with pytest.raises(ConditionError, match="division by zero"):
            true("output.yield_mg / 0 > 1")

    def test_division_by_zero_variable_raises(self):
        with pytest.raises(ConditionError, match="division by zero"):
            Condition("a / b > 1").evaluate({"a": 1, "b": 0})

    def test_arithmetic_on_strings_raises(self):
        with pytest.raises(ConditionError, match="needs numbers"):
            Condition("a + b == 'ab'").evaluate({"a": "a", "b": "b"})

    def test_arithmetic_on_booleans_raises(self):
        with pytest.raises(ConditionError, match="needs numbers"):
            Condition("a + 1 == 2").evaluate({"a": True})

    def test_arithmetic_on_null_raises(self):
        with pytest.raises(ConditionError):
            Condition("a * 2 > 1").evaluate({"a": None})

    def test_dangling_operator_rejected(self):
        for bad in ["a +", "* a", "a + * b", "a -"]:
            with pytest.raises(ConditionError):
                Condition(bad)

    def test_bare_arithmetic_is_not_boolean(self):
        with pytest.raises(ConditionError, match="expected boolean"):
            true("output.count + 1")


class TestUnparseWithArithmetic:
    @pytest.mark.parametrize(
        "source",
        [
            "a / b >= 0.5",
            "2 + 3 * 4 == 14",
            "-x < 0",
            "(a + b) * (c - d) != 0",
            "a - -b == 3",
        ],
    )
    def test_unparse_fixpoint(self, source):
        condition = Condition(source)
        canonical = condition.unparse()
        reparsed = Condition(canonical)
        assert reparsed == condition
        assert reparsed.unparse() == canonical

    def test_names_include_arithmetic_operands(self):
        condition = Condition("a.x / b.y + -c.z > 1")
        assert condition.names() == {"a.x", "b.y", "c.z"}


class TestEngineUsesArithmeticConditions:
    def test_yield_ratio_branch(self, wf_lab):
        from repro.core import PatternBuilder

        wf_lab.define(
            PatternBuilder("ratio")
            .task("produce", experiment_type="A")
            .task("good", experiment_type="B")
            .task("bad", experiment_type="C")
            .flow("produce", "good",
                  condition="output.quality * 2 >= 1.5")
            .flow("produce", "bad",
                  condition="output.quality * 2 < 1.5")
        )
        workflow = wf_lab.engine.start_workflow("ratio")
        workflow_id = workflow["workflow_id"]
        wf_lab.complete_all(
            workflow_id,
            "produce",
            outputs=[{"sample_type": "SA", "quality": 0.9}],
        )
        assert wf_lab.state_of(workflow_id, "good") == "eligible"
        assert wf_lab.state_of(workflow_id, "bad") == "unreachable"
