"""LegalTransition queries: the experiment-type ordering facts."""

from __future__ import annotations

import pytest

from repro.core import PatternBuilder
from repro.core.datamodel import install_workflow_datamodel
from repro.core.persistence import (
    legal_sources,
    legal_targets,
    save_pattern,
)
from repro.weblims.schema_setup import add_experiment_type


@pytest.fixture
def typed(expdb):
    install_workflow_datamodel(expdb.db)
    for name in ("A", "B", "C"):
        add_experiment_type(expdb.db, name, [])
    return expdb


class TestLegalTransitionQueries:
    def test_targets_derived_from_pattern(self, typed):
        pattern = (
            PatternBuilder("p")
            .task("a", experiment_type="A")
            .task("b", experiment_type="B")
            .task("c", experiment_type="C")
            .flow("a", "b")
            .flow("b", "c")
            .build(db=typed.db)
        )
        save_pattern(typed.db, pattern)
        assert legal_targets(typed.db, "A") == ["B"]
        assert legal_targets(typed.db, "B") == ["C"]
        assert legal_targets(typed.db, "C") == []

    def test_sources_are_the_inverse(self, typed):
        pattern = (
            PatternBuilder("p")
            .task("a", experiment_type="A")
            .task("b", experiment_type="B")
            .flow("a", "b")
            .build(db=typed.db)
        )
        save_pattern(typed.db, pattern)
        assert legal_sources(typed.db, "B") == ["A"]
        assert legal_sources(typed.db, "A") == []

    def test_multiple_patterns_merge_without_duplicates(self, typed):
        for name in ("one", "two"):
            pattern = (
                PatternBuilder(name)
                .task("a", experiment_type="A")
                .task("b", experiment_type="B")
                .flow("a", "b")
                .build(db=typed.db)
            )
            save_pattern(typed.db, pattern)
        assert legal_targets(typed.db, "A") == ["B"]

    def test_branching_records_both_targets(self, typed):
        pattern = (
            PatternBuilder("branch")
            .task("a", experiment_type="A")
            .task("b", experiment_type="B")
            .task("c", experiment_type="C")
            .flow("a", "b", condition="x == 1")
            .flow("a", "c", condition="x == 2")
            .build(db=typed.db)
        )
        save_pattern(typed.db, pattern)
        assert set(legal_targets(typed.db, "A")) == {"B", "C"}
