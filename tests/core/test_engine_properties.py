"""Property-based tests over the workflow engine.

Random chain workflows driven by random outcome tapes must preserve the
§4.2 invariants regardless of interleaving:

* task states and transitions always come from the Fig. 4 task model;
* a task is completed iff all current instances are decided and at
  least one completed; aborted iff all aborted;
* a finished workflow has every final task decided;
* terminal instance states are never overwritten.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PatternBuilder, WorkflowBean
from repro.core.datamodel import install_workflow_datamodel
from repro.core.persistence import save_pattern
from repro.core.states import TASK_MODEL, TaskState
from repro.minidb.schema import Column
from repro.minidb.types import ColumnType
from repro.weblims import build_expdb
from repro.weblims.schema_setup import (
    add_experiment_type,
    add_sample_type,
    declare_experiment_io,
)

MAX_STAGES = 4


def build_lab(length: int, instances: list[int]) -> tuple:
    app = build_expdb()
    install_workflow_datamodel(app.db)
    for index in range(length):
        add_experiment_type(
            app.db, f"T{index}", [Column("v", ColumnType.REAL)]
        )
        add_sample_type(app.db, f"M{index}", [])
        declare_experiment_io(app.db, f"T{index}", f"M{index}", "output")
        if index:
            declare_experiment_io(app.db, f"T{index}", f"M{index - 1}", "input")
    builder = PatternBuilder("prop")
    for index in range(length):
        builder.task(
            f"t{index}",
            experiment_type=f"T{index}",
            default_instances=instances[index],
        )
    for index in range(length - 1):
        builder.flow(f"t{index}", f"t{index + 1}")
        builder.data(f"t{index}", f"t{index + 1}", sample_type=f"M{index}")
    pattern = builder.build(db=app.db)
    save_pattern(app.db, pattern)
    engine = WorkflowBean(app.db)
    return app, engine


@st.composite
def scenario(draw):
    length = draw(st.integers(min_value=1, max_value=MAX_STAGES))
    instances = [
        draw(st.integers(min_value=1, max_value=3)) for __ in range(length)
    ]
    outcome_tape = draw(
        st.lists(st.booleans(), min_size=sum(instances), max_size=25)
    )
    approve_tape = draw(st.lists(st.booleans(), min_size=5, max_size=10))
    return length, instances, outcome_tape, approve_tape


def undecided_instances(engine, workflow_id):
    result = []
    view = engine.workflow_view(workflow_id)
    for task in view.tasks.values():
        for instance in task.instances:
            if not instance.decided:
                result.append(instance.experiment_id)
    return result


@given(data=scenario())
@settings(max_examples=40, deadline=None)
def test_chain_execution_invariants(data):
    length, instances, outcome_tape, approve_tape = data
    app, engine = build_lab(length, instances)
    workflow = engine.start_workflow("prop")
    workflow_id = workflow["workflow_id"]

    outcomes = iter(outcome_tape)
    approvals = iter(approve_tape)
    for __ in range(60):  # bounded driver loop
        pending = engine.pending_authorizations(workflow_id)
        if pending:
            approve = next(approvals, True)
            engine.respond_authorization(pending[0]["auth_id"], approve)
            continue
        open_instances = undecided_instances(engine, workflow_id)
        if not open_instances:
            break
        success = next(outcomes, True)
        task_type = app.db.get("Experiment", open_instances[0])["type_name"]
        outputs = (
            [{"sample_type": f"M{task_type[1:]}", "quality": 0.5}]
            if success
            else []
        )
        engine.complete_instance(
            open_instances[0], success=success, outputs=outputs
        )

    view = engine.workflow_view(workflow_id)
    valid_states = {state.value for state in TaskState} - {"delegated"}
    for task in view.tasks.values():
        # I1: states always from the task model.
        assert task.state in valid_states
        decided = [i for i in task.instances if i.decided]
        completed = [i for i in task.instances if i.state == "completed"]
        # I2/I3: completion/abort semantics.
        if task.state == "completed":
            assert completed
            assert len(decided) == len(task.instances)
        if task.state == "aborted" and task.instances:
            assert not completed
            assert len(decided) == len(task.instances)
        if task.state == "active":
            assert any(not i.decided for i in task.instances)

    # I4: a finished workflow has its final task decided.
    if view.status != "running":
        final = view.tasks[f"t{length - 1}"]
        assert final.state in ("completed", "aborted", "unreachable")

    # I5: every recorded task transition is legal in the task model.
    for event in engine.events.of_kind("task.state"):
        legal_targets = {
            str(target.value)
            for (source, event_name), target in TASK_MODEL.items()
            if str(event_name.value) == event["event"]
        }
        assert event["state"] in legal_targets


@given(
    successes=st.lists(st.booleans(), min_size=2, max_size=6),
)
@settings(max_examples=30, deadline=None)
def test_single_task_outcome_matches_instance_votes(successes):
    """For one task with n instances, the task outcome is exactly
    'completed iff any instance succeeded'."""
    app, engine = build_lab(1, [len(successes)])
    workflow = engine.start_workflow("prop")
    workflow_id = workflow["workflow_id"]
    for request in engine.pending_authorizations(workflow_id):
        engine.respond_authorization(request["auth_id"], True)
    view = engine.workflow_view(workflow_id)
    for instance, success in zip(view.tasks["t0"].instances, successes):
        engine.complete_instance(instance.experiment_id, success=success)
    final = engine.workflow_view(workflow_id)
    expected = "completed" if any(successes) else "aborted"
    assert final.tasks["t0"].state == expected
    assert final.status == expected
