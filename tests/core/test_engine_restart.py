"""§4.2 backtracking: restart semantics and cascades."""

from __future__ import annotations

import pytest

from repro.core import PatternBuilder
from repro.errors import InstanceError


def pipeline(lab):
    return lab.define(
        PatternBuilder("pipe")
        .task("a", experiment_type="A")
        .task("b", experiment_type="B")
        .task("c", experiment_type="C")
        .flow("a", "b")
        .flow("b", "c")
    )


def run_to_completion(lab, workflow_id):
    for task in ("a", "b"):
        lab.complete_all(workflow_id, task)
    lab.approve_pending()
    lab.complete_all(workflow_id, "c")


class TestRestartBasics:
    def test_restart_completed_task_reruns_it(self, wf_lab):
        pipeline(wf_lab)
        workflow = wf_lab.engine.start_workflow("pipe")
        workflow_id = workflow["workflow_id"]
        run_to_completion(wf_lab, workflow_id)
        assert wf_lab.engine.workflow_view(workflow_id).status == "completed"

        wf_lab.engine.restart_task(workflow_id, "b")
        assert wf_lab.state_of(workflow_id, "b") == "active"  # re-spawned
        assert wf_lab.state_of(workflow_id, "c") == "created"  # cascaded
        assert wf_lab.state_of(workflow_id, "a") == "completed"  # upstream kept
        assert wf_lab.engine.workflow_view(workflow_id).status == "running"

    def test_restart_aborted_task(self, wf_lab):
        pipeline(wf_lab)
        workflow = wf_lab.engine.start_workflow("pipe")
        workflow_id = workflow["workflow_id"]
        wf_lab.complete_all(workflow_id, "a", success=False)
        assert wf_lab.state_of(workflow_id, "a") == "aborted"
        wf_lab.engine.restart_task(workflow_id, "a")
        assert wf_lab.state_of(workflow_id, "a") == "active"

    def test_restart_unreachable_task_reevaluates(self, wf_lab):
        pipeline(wf_lab)
        workflow = wf_lab.engine.start_workflow("pipe")
        workflow_id = workflow["workflow_id"]
        wf_lab.complete_all(workflow_id, "a", success=False)
        assert wf_lab.state_of(workflow_id, "b") == "unreachable"
        # Restarting b alone re-evaluates: a is still aborted, so b goes
        # straight back to unreachable.
        wf_lab.engine.restart_task(workflow_id, "b")
        assert wf_lab.state_of(workflow_id, "b") == "unreachable"

    def test_restart_cascade_can_be_disabled(self, wf_lab):
        pipeline(wf_lab)
        workflow = wf_lab.engine.start_workflow("pipe")
        workflow_id = workflow["workflow_id"]
        run_to_completion(wf_lab, workflow_id)
        wf_lab.engine.restart_task(workflow_id, "b", cascade=False)
        assert wf_lab.state_of(workflow_id, "b") == "active"
        assert wf_lab.state_of(workflow_id, "c") == "completed"  # untouched


class TestInstanceSupersession:
    def test_old_instances_kept_as_history(self, wf_lab):
        pipeline(wf_lab)
        workflow = wf_lab.engine.start_workflow("pipe")
        workflow_id = workflow["workflow_id"]
        wf_lab.complete_all(workflow_id, "a")
        old = wf_lab.db.select("Experiment")
        wf_lab.engine.restart_task(workflow_id, "a")
        # Old row still exists, no longer current; a fresh one is current.
        rows = wf_lab.db.select("Experiment", order_by="experiment_id")
        assert len(rows) == len(old) + 1
        assert rows[0]["wf_current"] is False
        assert rows[-1]["wf_current"] is True

    def test_current_instance_view_excludes_superseded(self, wf_lab):
        pipeline(wf_lab)
        workflow = wf_lab.engine.start_workflow("pipe")
        workflow_id = workflow["workflow_id"]
        wf_lab.complete_all(workflow_id, "a")
        wf_lab.engine.restart_task(workflow_id, "a")
        instances = wf_lab.instances_of(workflow_id, "a")
        assert len(instances) == 1
        assert instances[0].state == "delegated"

    def test_undecided_instances_aborted_on_restart(self, wf_lab):
        pipeline(wf_lab)
        workflow = wf_lab.engine.start_workflow("pipe")
        workflow_id = workflow["workflow_id"]
        running = wf_lab.instances_of(workflow_id, "a")[0]
        wf_lab.engine.restart_task(workflow_id, "a")
        old_row = wf_lab.db.get("Experiment", running.experiment_id)
        assert old_row["wf_state"] == "aborted"
        assert old_row["wf_current"] is False

    def test_superseded_instance_cannot_be_completed(self, wf_lab):
        pipeline(wf_lab)
        workflow = wf_lab.engine.start_workflow("pipe")
        workflow_id = workflow["workflow_id"]
        stale = wf_lab.instances_of(workflow_id, "a")[0]
        wf_lab.engine.restart_task(workflow_id, "a")
        # A late result for the superseded instance is a stale message,
        # recorded and ignored.
        wf_lab.engine.complete_instance(stale.experiment_id, success=True)
        assert wf_lab.engine.events.of_kind("message.stale")

    def test_outputs_of_superseded_instances_not_forwarded(self, wf_lab):
        wf_lab.define(
            PatternBuilder("fwd")
            .task("src", experiment_type="A")
            .task("dst", experiment_type="B")
            .flow("src", "dst")
            .data("src", "dst", sample_type="SA")
        )
        workflow = wf_lab.engine.start_workflow("fwd")
        workflow_id = workflow["workflow_id"]
        wf_lab.complete_all(
            workflow_id,
            "src",
            outputs=[{"sample_type": "SA", "name": "old-output"}],
        )
        wf_lab.engine.restart_task(workflow_id, "src")
        wf_lab.complete_all(
            workflow_id,
            "src",
            outputs=[{"sample_type": "SA", "name": "new-output"}],
        )
        available = wf_lab.engine.collect_available_inputs(workflow_id, "dst")
        assert {s["name"] for s in available} == {"new-output"}


class TestAuthorizationInteraction:
    def test_restart_cancels_stale_authorizations(self, wf_lab):
        pipeline(wf_lab)
        workflow = wf_lab.engine.start_workflow("pipe")
        workflow_id = workflow["workflow_id"]
        run_to_completion(wf_lab, workflow_id)
        wf_lab.engine.restart_task(workflow_id, "c", cascade=False)
        # c needs fresh approval: the old grant was cancelled.
        assert wf_lab.state_of(workflow_id, "c") == "eligible"
        pending = wf_lab.engine.pending_authorizations(workflow_id)
        assert len(pending) == 1
        wf_lab.engine.respond_authorization(pending[0]["auth_id"], True)
        assert wf_lab.state_of(workflow_id, "c") == "active"

    def test_restarting_finished_workflow_reopens_it(self, wf_lab):
        pipeline(wf_lab)
        workflow = wf_lab.engine.start_workflow("pipe")
        workflow_id = workflow["workflow_id"]
        run_to_completion(wf_lab, workflow_id)
        wf_lab.engine.restart_task(workflow_id, "c", cascade=False)
        assert wf_lab.engine.workflow_view(workflow_id).status == "running"
        wf_lab.approve_pending()
        wf_lab.complete_all(workflow_id, "c")
        assert wf_lab.engine.workflow_view(workflow_id).status == "completed"

    def test_restart_emits_event_with_cascade_list(self, wf_lab):
        pipeline(wf_lab)
        workflow = wf_lab.engine.start_workflow("pipe")
        workflow_id = workflow["workflow_id"]
        run_to_completion(wf_lab, workflow_id)
        wf_lab.engine.restart_task(workflow_id, "a")
        events = wf_lab.engine.events.of_kind("task.restarted")
        assert events[-1]["task"] == "a"
        assert set(events[-1]["cascade"]) == {"b", "c"}

    def test_restart_unknown_task_rejected(self, wf_lab):
        pipeline(wf_lab)
        workflow = wf_lab.engine.start_workflow("pipe")
        from repro.errors import SpecificationError

        with pytest.raises(SpecificationError):
            wf_lab.engine.restart_task(workflow["workflow_id"], "ghost")

    def test_restart_unknown_workflow_rejected(self, wf_lab):
        pipeline(wf_lab)
        with pytest.raises(InstanceError):
            wf_lab.engine.restart_task(999, "a")
