"""Plan caching and access-path regressions (get/select_one/update/delete)."""

from __future__ import annotations

import pytest

from repro.minidb import (
    AND,
    EQ,
    GT,
    IN,
    Column,
    ColumnType,
    Database,
    TableSchema,
)


def sample_schema() -> TableSchema:
    return TableSchema(
        name="Sample",
        columns=[
            Column("sample_id", ColumnType.INTEGER, nullable=False),
            Column("barcode", ColumnType.TEXT, nullable=False),
            Column("rack", ColumnType.TEXT),
            Column("volume", ColumnType.REAL),
        ],
        primary_key=("sample_id",),
        autoincrement="sample_id",
    )


@pytest.fixture
def db() -> Database:
    database = Database()
    database.create_table(sample_schema())
    for i in range(20):
        database.insert(
            "Sample",
            {"barcode": f"BC{i:03d}", "rack": f"R{i % 4}", "volume": 1.0 * i},
        )
    return database


class TestPlanCache:
    def test_repeated_shape_hits_cache(self, db):
        db.stats.reset()
        db.select("Sample", EQ("sample_id", 3))
        db.select("Sample", EQ("sample_id", 9))  # same shape, new value
        assert db.stats.plan_cache_misses == 1
        assert db.stats.plan_cache_hits == 1

    def test_distinct_shapes_get_distinct_entries(self, db):
        db.stats.reset()
        db.select("Sample", EQ("sample_id", 1))
        db.select("Sample", EQ("rack", "R1"))
        db.select("Sample", AND(EQ("rack", "R1"), GT("volume", 2.0)))
        assert db.stats.plan_cache_misses == 3
        assert db.stats.plan_cache_hits == 0

    def test_ddl_invalidates_cached_plan(self, db):
        # With no index on barcode the cached plan is a full scan …
        assert db.explain("Sample", EQ("barcode", "BC005"))["access"] == (
            "full_scan"
        )
        db.create_index("Sample", ["barcode"])
        # … and creating the index must drop that entry, not serve it.
        assert db.explain("Sample", EQ("barcode", "BC005"))["access"] == (
            "hash_index"
        )
        db.stats.reset()
        rows = db.select("Sample", EQ("barcode", "BC005"))
        assert [r["barcode"] for r in rows] == ["BC005"]
        assert db.stats.full_scans == 0
        assert db.stats.index_lookups == 1

    def test_disabled_cache_still_plans_correctly(self, db):
        db.plan_cache_enabled = False
        db.stats.reset()
        db.select("Sample", EQ("sample_id", 3))
        db.select("Sample", EQ("sample_id", 9))
        assert db.stats.plan_cache_hits == 0
        assert db.stats.plan_cache_misses == 0
        assert db.stats.index_lookups == 2
        assert db.stats.full_scans == 0


class TestPrimaryKeyPathRegression:
    """get()/select_one() on a primary key must never full-scan."""

    def test_get_uses_pk_lookup(self, db):
        db.stats.reset()
        row = db.get("Sample", 7)
        assert row is not None and row["sample_id"] == 7
        assert db.stats.full_scans == 0
        assert db.stats.index_lookups == 1

    def test_get_miss_still_avoids_scan(self, db):
        db.stats.reset()
        assert db.get("Sample", 999) is None
        assert db.stats.full_scans == 0

    def test_select_one_on_pk_uses_pk_lookup(self, db):
        assert db.explain("Sample", EQ("sample_id", 7))["access"] == (
            "pk_lookup"
        )
        db.stats.reset()
        row = db.select_one("Sample", EQ("sample_id", 7))
        assert row is not None and row["barcode"] == "BC006"
        assert db.stats.full_scans == 0
        assert db.stats.index_lookups == 1

    def test_in_on_pk_avoids_scan(self, db):
        db.stats.reset()
        rows = db.select("Sample", IN("sample_id", [2, 4, 6]))
        assert len(rows) == 3
        assert db.stats.full_scans == 0


class TestWriteSidePlanning:
    """update/delete go through the same planner as select."""

    def test_update_uses_index_when_available(self, db):
        db.create_index("Sample", ["rack"])
        assert db.explain("Sample", EQ("rack", "R2"))["access"] == (
            "hash_index"
        )
        db.stats.reset()
        changed = db.update("Sample", EQ("rack", "R2"), {"volume": 99.0})
        assert changed == 5
        assert db.stats.full_scans == 0
        assert db.stats.index_lookups == 1

    def test_update_on_pk_predicate_avoids_scan(self, db):
        db.stats.reset()
        assert db.update("Sample", EQ("sample_id", 3), {"rack": "RX"}) == 1
        assert db.stats.full_scans == 0
        assert db.get("Sample", 3)["rack"] == "RX"

    def test_delete_uses_index_when_available(self, db):
        db.create_index("Sample", ["barcode"])
        db.stats.reset()
        assert db.delete("Sample", EQ("barcode", "BC010")) == 1
        assert db.stats.full_scans == 0
        assert db.stats.index_lookups == 1

    def test_unindexed_write_predicate_counts_a_full_scan(self, db):
        db.stats.reset()
        db.update("Sample", EQ("rack", "R0"), {"volume": 0.0})
        assert db.stats.full_scans == 1
        db.delete("Sample", GT("volume", 1e9))
        assert db.stats.full_scans == 2
