"""Property test: LIKE agrees with a regex reference implementation."""

from __future__ import annotations

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minidb.predicates import LIKE

text_alphabet = st.text(alphabet="ab%c_ xyz", max_size=12)


def reference_like(text: str, pattern: str) -> bool:
    """Translate the %-pattern to an anchored regex (the oracle)."""
    parts = pattern.split("%")
    regex = ".*".join(re.escape(part) for part in parts)
    return re.fullmatch(regex, text, flags=re.DOTALL) is not None


@given(text=text_alphabet, pattern=text_alphabet)
@settings(max_examples=300, deadline=None)
def test_like_matches_regex_reference(text, pattern):
    ours = LIKE("column", pattern).matches({"column": text})
    oracle = reference_like(text, pattern)
    assert ours == oracle, (text, pattern)


@given(text=text_alphabet)
@settings(max_examples=100, deadline=None)
def test_percent_matches_everything(text):
    assert LIKE("column", "%").matches({"column": text})


@given(text=text_alphabet)
@settings(max_examples=100, deadline=None)
def test_exact_pattern_matches_only_itself(text):
    if "%" in text:
        return
    assert LIKE("column", text).matches({"column": text})
    assert not LIKE("column", text + "x").matches({"column": text})


@given(prefix=text_alphabet, suffix=text_alphabet)
@settings(max_examples=100, deadline=None)
def test_prefix_suffix_pattern(prefix, suffix):
    if "%" in prefix or "%" in suffix:
        return
    text = prefix + "MIDDLE" + suffix
    assert LIKE("column", prefix + "%" + suffix).matches({"column": text})
