"""Write-ahead log durability and crash recovery."""

from __future__ import annotations

import pytest

from repro.errors import RecoveryError
from repro.minidb import EQ, Column, ColumnType, Database, TableSchema


def person_schema() -> TableSchema:
    return TableSchema(
        name="Person",
        columns=[
            Column("person_id", ColumnType.INTEGER, nullable=False),
            Column("name", ColumnType.TEXT, nullable=False),
            Column("age", ColumnType.INTEGER),
        ],
        primary_key=("person_id",),
        autoincrement="person_id",
    )


@pytest.fixture
def wal_path(tmp_path):
    return tmp_path / "test.wal"


def tail_segment(wal_path):
    """The active (highest-numbered) segment file of a closed log."""
    segments = sorted(wal_path.parent.glob(wal_path.name + ".*.seg"))
    assert segments, f"no segment files next to {wal_path}"
    return segments[-1]


class TestRecovery:
    def test_committed_rows_survive_reopen(self, wal_path):
        db = Database(wal_path)
        db.create_table(person_schema())
        db.insert("Person", {"name": "ada", "age": 36})
        db.close()

        reopened = Database(wal_path)
        assert reopened.select("Person") == [
            {"person_id": 1, "name": "ada", "age": 36}
        ]

    def test_updates_and_deletes_replay(self, wal_path):
        db = Database(wal_path)
        db.create_table(person_schema())
        db.insert("Person", {"name": "a"})
        db.insert("Person", {"name": "b"})
        db.update("Person", EQ("name", "a"), {"age": 50})
        db.delete("Person", EQ("name", "b"))
        db.close()

        reopened = Database(wal_path)
        assert reopened.select("Person") == [
            {"person_id": 1, "name": "a", "age": 50}
        ]

    def test_rolled_back_transaction_not_replayed(self, wal_path):
        db = Database(wal_path)
        db.create_table(person_schema())
        db.insert("Person", {"name": "keep"})
        db.begin()
        db.insert("Person", {"name": "discard"})
        db.rollback()
        db.close()

        reopened = Database(wal_path)
        assert [row["name"] for row in reopened.select("Person")] == ["keep"]

    def test_autoincrement_continues_after_recovery(self, wal_path):
        db = Database(wal_path)
        db.create_table(person_schema())
        db.insert("Person", {"name": "a"})
        db.close()

        reopened = Database(wal_path)
        row = reopened.insert("Person", {"name": "b"})
        assert row["person_id"] == 2

    def test_indexes_rebuilt_on_recovery(self, wal_path):
        db = Database(wal_path)
        db.create_table(person_schema())
        db.create_index("Person", ["name"])
        db.insert("Person", {"name": "indexed"})
        db.close()

        reopened = Database(wal_path)
        before = reopened.stats.rows_scanned
        rows = reopened.select("Person", EQ("name", "indexed"))
        assert len(rows) == 1
        assert reopened.stats.rows_scanned - before <= 1

    def test_ddl_replay_includes_add_column(self, wal_path):
        db = Database(wal_path)
        db.create_table(person_schema())
        db.insert("Person", {"name": "pre"})
        db.add_column("Person", Column("notes", ColumnType.TEXT, default="x"))
        db.insert("Person", {"name": "post", "notes": "real"})
        db.close()

        reopened = Database(wal_path)
        rows = {row["name"]: row for row in reopened.select("Person")}
        assert rows["pre"]["notes"] == "x"
        assert rows["post"]["notes"] == "real"

    def test_drop_table_replays(self, wal_path):
        db = Database(wal_path)
        db.create_table(person_schema())
        db.drop_table("Person")
        db.close()
        reopened = Database(wal_path)
        assert not reopened.has_table("Person")

    def test_torn_final_record_discarded(self, wal_path):
        db = Database(wal_path)
        db.create_table(person_schema())
        db.insert("Person", {"name": "whole"})
        db.close()
        with open(tail_segment(wal_path), "a", encoding="utf-8") as handle:
            handle.write('deadbeef 9 {"type": "txn", "ops": [{"op": "ins')

        reopened = Database(wal_path)
        assert [row["name"] for row in reopened.select("Person")] == ["whole"]

    def test_corruption_in_the_middle_raises(self, wal_path):
        db = Database(wal_path)
        db.create_table(person_schema())
        db.insert("Person", {"name": "a"})
        db.close()
        segment = tail_segment(wal_path)
        lines = segment.read_text().splitlines()
        assert len(lines) >= 2
        lines.insert(1, "garbage{{{")
        segment.write_text("\n".join(lines) + "\n")

        with pytest.raises(RecoveryError) as excinfo:
            Database(wal_path)
        detail = excinfo.value.detail()
        assert detail["segment"] == 1
        assert detail["offset"] is not None

    def test_stats_reset_after_recovery(self, wal_path):
        db = Database(wal_path)
        db.create_table(person_schema())
        db.insert("Person", {"name": "a"})
        db.close()
        reopened = Database(wal_path)
        assert reopened.stats.reads == 0
        assert reopened.stats.writes == 0

    def test_fresh_database_without_wal_has_nothing(self, tmp_path):
        db = Database(tmp_path / "new.wal")
        assert db.tables() == []
