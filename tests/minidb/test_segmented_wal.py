"""Durability v2: segmented WAL, online checkpoints, corruption
handling.

Covers the segment/manifest machinery through the public ``Database``
and ``WriteAheadLog`` surfaces: rotation at thresholds, streaming O(1)
replay, the fsync-the-parent-directory rule for atomic swaps,
structured corruption diagnostics, opt-in salvage, v1 log adoption, and
crash-exactness at every checkpoint fault point.
"""

from __future__ import annotations

import json
import tracemalloc

import pytest

from repro.errors import FaultInjected, RecoveryError
from repro.minidb import EQ, Column, ColumnType, Database, TableSchema
from repro.minidb.engine import CheckpointPolicy
from repro.minidb.wal import WriteAheadLog
from repro.resilience import FaultPlan, ManualClock


def schema() -> TableSchema:
    return TableSchema(
        name="T",
        columns=[
            Column("id", ColumnType.INTEGER, nullable=False),
            Column("value", ColumnType.TEXT),
        ],
        primary_key=("id",),
        autoincrement="id",
    )


@pytest.fixture
def wal_path(tmp_path):
    return tmp_path / "seg.wal"


def rows_of(db: Database) -> list[dict]:
    return db.select("T", order_by="id")


def tail_segment(wal_path):
    segments = sorted(wal_path.parent.glob(wal_path.name + ".*.seg"))
    assert segments
    return segments[-1]


class TestRotation:
    def test_segments_rotate_at_record_threshold(self, wal_path):
        db = Database(wal_path, segment_max_records=5)
        db.create_table(schema())
        for i in range(23):
            db.insert("T", {"value": f"v{i}"})
        info = db.wal_info()
        assert info["segments"] >= 4
        assert info["rotations"] >= 3
        db.close()
        reopened = Database(wal_path, segment_max_records=5)
        assert len(rows_of(reopened)) == 23

    def test_manifest_lists_exactly_the_live_segments(self, wal_path):
        db = Database(wal_path, segment_max_records=4)
        db.create_table(schema())
        for i in range(10):
            db.insert("T", {"value": f"v{i}"})
        db.close()
        manifest = json.loads(
            (wal_path.parent / (wal_path.name + ".manifest"))
            .read_text()
            .split(" ", 2)[2]
        )
        on_disk = {
            int(p.name.rsplit(".", 2)[-2])
            for p in wal_path.parent.glob(wal_path.name + ".*.seg")
        }
        assert set(manifest["segments"]) == on_disk

    def test_crash_at_rotation_loses_nothing(self, wal_path):
        db = Database(wal_path, segment_max_records=3)
        db.create_table(schema())
        plan = FaultPlan(seed=11).rule("wal.rotate", "crash", times=1)
        db.attach_faults(plan)
        attempted = []
        with pytest.raises(FaultInjected):
            for i in range(20):
                attempted.append(f"v{i}")
                db.insert("T", {"value": f"v{i}"})
        assert plan.fired_points() == ["wal.rotate"]
        reopened = Database(wal_path)
        values = [row["value"] for row in rows_of(reopened)]
        # The crash hit *after* the threshold-crossing record was
        # written and flushed, so the in-flight insert may legally
        # survive — but nothing earlier may be lost and nothing beyond
        # the attempt may appear.
        assert values in (attempted, attempted[:-1])
        assert len(values) >= len(attempted) - 1

    def test_crash_at_manifest_swap_loses_nothing(self, wal_path):
        db = Database(wal_path, segment_max_records=3)
        db.create_table(schema())
        plan = FaultPlan(seed=12).rule("wal.manifest.swap", "crash", times=1)
        db.attach_faults(plan)
        attempted = []
        with pytest.raises(FaultInjected):
            for i in range(20):
                attempted.append(f"v{i}")
                db.insert("T", {"value": f"v{i}"})
        reopened = Database(wal_path)
        values = [row["value"] for row in rows_of(reopened)]
        assert values in (attempted, attempted[:-1])


class TestDirectoryFsync:
    def test_atomic_swaps_fsync_the_parent_directory(self, wal_path):
        """An ``os.replace`` is only durable once the parent directory
        entry is — every manifest/checkpoint swap must fsync it."""
        db = Database(wal_path, segment_max_records=4)
        db.create_table(schema())
        for i in range(10):
            db.insert("T", {"value": f"v{i}"})
        before = db.wal_info()["dir_fsyncs"]
        assert before > 0  # rotations already swapped the manifest
        db.checkpoint()
        after = db.wal_info()["dir_fsyncs"]
        # A checkpoint performs at least two directory fsyncs: one for
        # the checkpoint side file, one for the manifest swap.
        assert after >= before + 2


class TestStreamingReplay:
    def test_replay_memory_is_flat_in_log_size(self, tmp_path):
        """Replay streams frame-by-frame: peak replay memory stays far
        below the on-disk size of the log."""
        path = tmp_path / "big.wal"
        wal = WriteAheadLog(path)
        payload = "x" * 200
        record = {"type": "txn", "ops": [{"op": "insert", "v": payload}]}
        for __ in range(10_000):
            wal.seg.write_frame(dict(record))
        wal.close()

        wal = WriteAheadLog(path)
        assert wal.size_bytes() > 2_000_000
        tracemalloc.start()
        count = 0
        for __ in wal.replay():
            count += 1
        __, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        wal.close()
        assert count == 10_000
        assert peak < 512 * 1024  # well under the >2MB log


class TestCorruption:
    def test_bit_flip_reports_structured_checksum_diagnostic(self, wal_path):
        db = Database(wal_path)
        db.create_table(schema())
        db.insert("T", {"value": "aaaa"})
        db.insert("T", {"value": "bbbb"})
        db.close()
        segment = tail_segment(wal_path)
        lines = segment.read_text().splitlines()
        assert len(lines) >= 3
        lines[1] = lines[1].replace("aaaa", "aaba")  # flip mid-record
        segment.write_text("\n".join(lines) + "\n")

        with pytest.raises(RecoveryError) as excinfo:
            Database(wal_path)
        detail = excinfo.value.detail()
        assert detail["reason"] == "checksum"
        assert detail["segment"] == 1
        assert detail["offset"] is not None
        assert detail["expected_crc"] != detail["actual_crc"]
        assert detail["expected_crc"] is not None

    def test_salvage_mode_quarantines_and_keeps_the_prefix(self, wal_path):
        db = Database(wal_path)
        db.create_table(schema())
        db.insert("T", {"value": "keep"})
        db.insert("T", {"value": "casualty"})
        # A record *after* the corruption: the damage is mid-file, not
        # a torn tail, so only salvage mode may recover the prefix.
        db.insert("T", {"value": "also-lost"})
        db.close()
        segment = tail_segment(wal_path)
        lines = segment.read_text().splitlines()
        [victim] = [i for i, line in enumerate(lines) if "casualty" in line]
        lines[victim] = lines[victim].replace("casualty", "casualtY")
        segment.write_text("\n".join(lines) + "\n")

        salvaged = Database(wal_path, salvage=True)
        assert [row["value"] for row in rows_of(salvaged)] == ["keep"]
        report = salvaged.wal_info()["salvaged"]
        assert report is not None
        assert report["segment"] == 1
        quarantined = list(wal_path.parent.glob("*.quarantined"))
        assert quarantined
        salvaged.insert("T", {"value": "after"})
        salvaged.close()
        # The salvaged log is fully usable: reopen sees prefix + new.
        reopened = Database(wal_path)
        assert [row["value"] for row in rows_of(reopened)] == [
            "keep",
            "after",
        ]


class TestLegacyAdoption:
    def test_v1_single_file_log_adopted_on_open(self, wal_path):
        wal_path.write_text(
            json.dumps(
                {"type": "create_table", "schema": schema().describe()}
            )
            + "\n"
            + json.dumps(
                {
                    "type": "txn",
                    "ops": [
                        {
                            "op": "insert",
                            "table": "T",
                            "row": {"id": 1, "value": "old"},
                        }
                    ],
                }
            )
            + "\n"
        )
        db = Database(wal_path)
        assert [row["value"] for row in rows_of(db)] == ["old"]
        db.insert("T", {"value": "new"})
        db.close()
        assert not wal_path.exists()  # adopted into segments
        assert (wal_path.parent / (wal_path.name + ".manifest")).exists()
        reopened = Database(wal_path)
        assert [row["value"] for row in rows_of(reopened)] == ["old", "new"]

    def test_v1_torn_final_line_tolerated_during_adoption(self, wal_path):
        wal_path.write_text(
            json.dumps(
                {"type": "create_table", "schema": schema().describe()}
            )
            + "\n"
            + '{"type": "txn", "ops": [{"op": "ins'
        )
        db = Database(wal_path)
        assert db.tables() == ["T"]
        assert rows_of(db) == []


class TestCheckpointCrash:
    """Satellite 4: kills at every checkpoint fault point must recover
    to exactly the old or the new organisation of the same state."""

    def _loaded_db(self, wal_path) -> tuple[Database, list[dict]]:
        db = Database(wal_path, segment_max_records=6)
        db.create_table(schema())
        for i in range(20):
            db.insert("T", {"value": f"v{i}"})
        return db, rows_of(db)

    @pytest.mark.parametrize(
        "point", ["checkpoint.write", "checkpoint.swap", "wal.compact"]
    )
    def test_crash_point_preserves_state_exactly(self, wal_path, point):
        db, expected = self._loaded_db(wal_path)
        plan = FaultPlan(seed=13).rule(point, "crash", times=1)
        db.attach_faults(plan)
        with pytest.raises(FaultInjected):
            db.checkpoint()
        assert plan.fired_points() == [point]

        recovered = Database(wal_path)
        assert rows_of(recovered) == expected
        info = recovered.wal_info()
        if point == "checkpoint.write":
            # Died before the side file: strictly the old organisation.
            assert info["checkpoint"] is None
        elif point == "wal.compact":
            # Died after the manifest swap: strictly the new one — the
            # checkpoint is live and the obsolete segments were cleaned
            # up as strays on open.
            assert info["checkpoint"] is not None
        # checkpoint.swap: either side of the manifest swap is legal;
        # state equality above is the invariant.
        recovered.insert("T", {"value": "post-recovery"})
        assert len(rows_of(recovered)) == len(expected) + 1

    def test_interrupted_checkpoint_leaves_live_db_usable(self, wal_path):
        db, expected = self._loaded_db(wal_path)
        plan = FaultPlan(seed=14).rule("checkpoint.write", "crash", times=1)
        db.attach_faults(plan)
        with pytest.raises(FaultInjected):
            db.checkpoint()
        # The same process survives the failed checkpoint attempt: the
        # engine keeps appending, and a later checkpoint succeeds.
        db.attach_faults(None)
        db.insert("T", {"value": "onward"})
        assert db.checkpoint() > 0
        db.close()
        reopened = Database(wal_path)
        assert len(rows_of(reopened)) == len(expected) + 1


class TestCheckpointPolicy:
    def test_policy_checkpoints_by_record_count(self, wal_path):
        db = Database(
            wal_path,
            checkpoint_policy=CheckpointPolicy(every_records=10),
        )
        db.create_table(schema())
        for i in range(35):
            db.insert("T", {"value": f"v{i}"})
        assert db.checkpoints >= 2
        assert db.wal_info()["records_since_checkpoint"] < 15
        db.close()
        assert len(rows_of(Database(wal_path))) == 35

    def test_policy_checkpoints_by_interval(self, wal_path):
        clock = ManualClock()
        db = Database(
            wal_path,
            clock=clock,
            checkpoint_policy=CheckpointPolicy(
                interval_s=60.0, clock=clock
            ),
        )
        db.create_table(schema())
        db.insert("T", {"value": "a"})
        assert db.checkpoints == 0
        clock.advance(61.0)
        db.insert("T", {"value": "b"})
        assert db.checkpoints == 1

    def test_on_checkpoint_hook_sees_reason_and_counts(self, wal_path):
        seen = []
        db = Database(wal_path)
        db.on_checkpoint = seen.append
        db.create_table(schema())
        db.insert("T", {"value": "x"})
        db.checkpoint()
        [info] = seen
        assert info["reason"] == "manual"
        assert info["records"] > 0
        assert info["watermark"] >= 1


class TestRecoveryAccounting:
    def test_last_recovery_reports_checkpoint_and_tail_split(self, wal_path):
        db = Database(wal_path)
        db.create_table(schema())
        for i in range(8):
            db.insert("T", {"value": f"v{i}"})
        db.checkpoint()
        db.insert("T", {"value": "tail"})
        db.close()
        reopened = Database(wal_path)
        recovery = reopened.wal_info()["last_recovery"]
        assert recovery["checkpoint_records"] > 0
        assert recovery["tail_records"] == 1
        assert recovery["records"] == (
            recovery["checkpoint_records"] + recovery["tail_records"]
        )
        assert recovery["elapsed_ms"] >= 0
