"""Property-based tests for the relational engine (hypothesis)."""

from __future__ import annotations

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minidb import EQ, Column, ColumnType, Database, TableSchema

# Value strategies per column type (floats restricted to exact binary
# fractions so roundtrips compare equal through JSON).
values = {
    "num": st.integers(min_value=-(10**9), max_value=10**9) | st.none(),
    "score": st.floats(
        allow_nan=False, allow_infinity=False, width=32
    ).map(float)
    | st.none(),
    "label": st.text(alphabet=string.printable, max_size=30) | st.none(),
    "flag": st.booleans() | st.none(),
}

row_strategy = st.fixed_dictionaries(
    {
        "num": values["num"],
        "score": values["score"],
        "label": values["label"],
        "flag": values["flag"],
    }
)


def fresh_db(wal_path=None) -> Database:
    db = Database(wal_path)
    db.create_table(
        TableSchema(
            name="T",
            columns=[
                Column("id", ColumnType.INTEGER, nullable=False),
                Column("num", ColumnType.INTEGER),
                Column("score", ColumnType.REAL),
                Column("label", ColumnType.TEXT),
                Column("flag", ColumnType.BOOLEAN),
            ],
            primary_key=("id",),
            autoincrement="id",
        )
    )
    return db


@given(rows=st.lists(row_strategy, max_size=25))
@settings(max_examples=60, deadline=None)
def test_insert_select_roundtrip_identity(rows):
    """Everything inserted comes back exactly, in insertion order."""
    db = fresh_db()
    stored = [db.insert("T", row) for row in rows]
    fetched = db.select("T", order_by="id")
    assert fetched == stored


@given(rows=st.lists(row_strategy, min_size=1, max_size=15), data=st.data())
@settings(max_examples=60, deadline=None)
def test_pk_lookup_matches_scan(rows, data):
    """Index-served PK lookups agree with a predicate full scan."""
    db = fresh_db()
    for row in rows:
        db.insert("T", row)
    target = data.draw(st.integers(min_value=1, max_value=len(rows)))
    via_get = db.get("T", target)
    via_scan = [row for row in db.select("T") if row["id"] == target]
    assert via_scan == [via_get]


@given(
    rows=st.lists(row_strategy, min_size=1, max_size=12),
    mutation_rows=st.lists(row_strategy, min_size=1, max_size=6),
)
@settings(max_examples=50, deadline=None)
def test_rollback_restores_exact_state(rows, mutation_rows):
    """Any mix of mutations inside a rolled-back txn leaves no trace."""
    db = fresh_db()
    for row in rows:
        db.insert("T", row)
    before = db.select("T", order_by="id")
    db.begin()
    for row in mutation_rows:
        db.insert("T", row)
    db.update("T", None, {"label": "mutated"})
    db.delete("T", EQ("id", 1))
    db.rollback()
    assert db.select("T", order_by="id") == before


@given(rows=st.lists(row_strategy, max_size=15))
@settings(max_examples=40, deadline=None)
def test_wal_replay_reproduces_committed_state(rows):
    """Close-and-reopen over the WAL reproduces exactly the same table."""
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        wal = Path(tmp) / "prop.wal"
        db = fresh_db(wal)
        for row in rows:
            db.insert("T", row)
        db.update("T", EQ("num", 0), {"label": "zero"})
        expected = db.select("T", order_by="id")
        db.close()

        reopened = Database(wal)
        assert reopened.select("T", order_by="id") == expected
        reopened.close()


@given(
    rows=st.lists(row_strategy, min_size=1, max_size=15),
    needle=values["num"].filter(lambda v: v is not None),
)
@settings(max_examples=50, deadline=None)
def test_indexed_and_scanned_selects_agree(rows, needle):
    """A hash index never changes SELECT results, only the access path."""
    plain = fresh_db()
    indexed = fresh_db()
    indexed.create_index("T", ["num"])
    for row in rows:
        plain.insert("T", row)
        indexed.insert("T", row)
    predicate = EQ("num", needle)
    assert plain.select("T", predicate, order_by="id") == indexed.select(
        "T", predicate, order_by="id"
    )
