"""Table schema definitions and validation."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError, UnknownColumnError
from repro.minidb.schema import Column, ForeignKey, TableSchema, fk
from repro.minidb.types import ColumnType


def make_schema(**overrides):
    base = dict(
        name="T",
        columns=[
            Column("id", ColumnType.INTEGER, nullable=False),
            Column("value", ColumnType.TEXT),
        ],
        primary_key=("id",),
    )
    base.update(overrides)
    return TableSchema(**base)


class TestColumn:
    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("bad name", ColumnType.TEXT)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", ColumnType.TEXT)

    def test_callable_default_resolves(self):
        column = Column("c", ColumnType.INTEGER, default=lambda: 9)
        assert column.resolve_default() == 9

    def test_plain_default_resolves(self):
        assert Column("c", ColumnType.INTEGER, default=4).resolve_default() == 4


class TestTableSchema:
    def test_valid_schema_builds(self):
        schema = make_schema()
        assert schema.column_names() == ["id", "value"]

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            make_schema(
                columns=[
                    Column("id", ColumnType.INTEGER),
                    Column("id", ColumnType.TEXT),
                ]
            )

    def test_missing_primary_key_rejected(self):
        with pytest.raises(SchemaError):
            make_schema(primary_key=())

    def test_unknown_pk_column_rejected(self):
        with pytest.raises(UnknownColumnError):
            make_schema(primary_key=("nope",))

    def test_no_columns_rejected(self):
        with pytest.raises(SchemaError):
            make_schema(columns=[])

    def test_autoincrement_must_be_integer(self):
        with pytest.raises(SchemaError):
            make_schema(
                columns=[
                    Column("id", ColumnType.TEXT, nullable=False),
                ],
                autoincrement="id",
            )

    def test_autoincrement_must_exist(self):
        with pytest.raises(UnknownColumnError):
            make_schema(autoincrement="ghost")

    def test_column_lookup(self):
        schema = make_schema()
        assert schema.column("value").type is ColumnType.TEXT
        with pytest.raises(UnknownColumnError):
            schema.column("ghost")
        assert schema.has_column("id")
        assert not schema.has_column("ghost")

    def test_pk_tuple_extraction(self):
        schema = make_schema()
        assert schema.pk_tuple({"id": 3, "value": "x"}) == (3,)

    def test_validate_column_names(self):
        schema = make_schema()
        schema.validate_column_names(["id", "value"])
        with pytest.raises(UnknownColumnError):
            schema.validate_column_names(["ghost"])


class TestForeignKey:
    def test_length_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            ForeignKey(("a", "b"), "T", ("x",))

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            ForeignKey((), "T", ())

    def test_bad_action_rejected(self):
        with pytest.raises(SchemaError):
            ForeignKey(("a",), "T", ("x",), on_delete="nullify")

    def test_fk_helper_accepts_strings(self):
        foreign = fk("a", "T", "x", "cascade")
        assert foreign.columns == ("a",)
        assert foreign.ref_columns == ("x",)
        assert foreign.on_delete == "cascade"

    def test_fk_columns_must_exist_on_table(self):
        with pytest.raises(UnknownColumnError):
            make_schema(foreign_keys=[fk("ghost", "Other", "id")])


class TestDescribeRoundtrip:
    def test_describe_and_rebuild(self):
        schema = make_schema(
            foreign_keys=[fk("value", "Other", "key")],
            autoincrement="id",
            parent=None,
        )
        rebuilt = TableSchema.from_description(schema.describe())
        assert rebuilt.name == schema.name
        assert rebuilt.column_names() == schema.column_names()
        assert rebuilt.primary_key == schema.primary_key
        assert rebuilt.autoincrement == schema.autoincrement
        assert rebuilt.foreign_keys == schema.foreign_keys

    def test_callable_defaults_dropped_in_description(self):
        schema = make_schema(
            columns=[
                Column("id", ColumnType.INTEGER, nullable=False),
                Column("stamp", ColumnType.INTEGER, default=lambda: 1),
            ]
        )
        described = schema.describe()
        stamp = next(c for c in described["columns"] if c["name"] == "stamp")
        assert stamp["default"] is None
