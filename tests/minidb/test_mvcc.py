"""MVCC snapshot isolation: pinned reads, overlays, epochs, version GC.

The lock-free read path's contract: a pinned snapshot always reads the
committed state as of its pin — repeatable under concurrent commits,
never torn mid-transaction — while threads inside a transaction read
their own uncommitted writes overlaid on the snapshot.
"""

from __future__ import annotations

import threading

import pytest

from repro.minidb import EQ, GT, Column, ColumnType, Database, TableSchema


class TestSnapshotRepeatability:
    def test_snapshot_does_not_see_later_commits(self, people_db):
        people_db.insert("Person", {"name": "a", "age": 1})
        with people_db.snapshot() as snap:
            people_db.insert("Person", {"name": "b", "age": 2})
            people_db.update("Person", EQ("name", "a"), {"age": 99})
            people_db.delete("Person", EQ("name", "a"))
            assert snap.count("Person") == 1
            assert snap.select("Person")[0] == {
                "person_id": 1,
                "name": "a",
                "age": 1,
                "email": None,
                "active": True,
            }
            assert snap.get("Person", 1)["age"] == 1
            assert snap.select_one("Person", EQ("name", "b")) is None
        # Outside the snapshot the latest state is back.
        assert people_db.count("Person") == 1
        assert people_db.select_one("Person")["name"] == "b"

    def test_two_snapshots_pin_different_versions(self, people_db):
        people_db.insert("Person", {"name": "a"})
        with people_db.snapshot() as old:
            people_db.insert("Person", {"name": "b"})
            with people_db.snapshot() as new:
                assert old.count("Person") == 1
                assert new.count("Person") == 2
                assert new.version > old.version

    def test_snapshot_survives_delete_of_everything(self, people_db):
        for name in ("a", "b", "c"):
            people_db.insert("Person", {"name": name})
        with people_db.snapshot() as snap:
            people_db.delete("Person", None)
            assert people_db.count("Person") == 0
            assert snap.count("Person") == 3
            assert {row["name"] for row in snap.select("Person")} == {
                "a",
                "b",
                "c",
            }

    def test_snapshot_explain_matches_select(self, people_db):
        people_db.insert("Person", {"name": "a"})
        with people_db.snapshot() as snap:
            info = snap.explain("Person", EQ("person_id", 1))
            assert info["access"] == "pk_lookup"


class TestTransactionOverlay:
    def test_transaction_reads_its_own_writes(self, people_db):
        people_db.insert("Person", {"name": "a", "age": 1})
        with people_db.transaction():
            people_db.insert("Person", {"name": "b"})
            people_db.update("Person", EQ("name", "a"), {"age": 50})
            assert people_db.count("Person") == 2
            assert people_db.get("Person", 1)["age"] == 50
            people_db.delete("Person", EQ("name", "b"))
            assert people_db.count("Person") == 1
        assert people_db.get("Person", 1)["age"] == 50

    def test_other_threads_do_not_see_uncommitted_writes(self, people_db):
        people_db.insert("Person", {"name": "a", "age": 1})
        people_db.begin()
        people_db.update("Person", EQ("name", "a"), {"age": 99})
        seen: dict[str, int] = {}

        def outsider() -> None:
            seen["age"] = people_db.get("Person", 1)["age"]
            seen["count"] = people_db.count("Person")

        thread = threading.Thread(target=outsider)
        thread.start()
        thread.join()
        # The outsider never joined the transaction: it reads committed
        # state only.
        assert seen == {"age": 1, "count": 1}
        people_db.commit()
        assert people_db.get("Person", 1)["age"] == 99

    def test_rollback_discards_overlay_and_images(self, people_db):
        people_db.create_index("Person", ["name"])
        people_db.insert("Person", {"name": "a", "age": 1})
        people_db.begin()
        people_db.update("Person", EQ("name", "a"), {"name": "b"})
        people_db.update("Person", EQ("name", "b"), {"name": "a"})
        people_db.rollback()
        assert [r["name"] for r in people_db.select("Person")] == ["a"]
        assert len(people_db.select("Person", EQ("name", "a"))) == 1
        assert people_db.select("Person", EQ("name", "b")) == []

    def test_snapshot_handle_ignores_open_transaction(self, people_db):
        people_db.insert("Person", {"name": "a"})
        people_db.begin()
        people_db.insert("Person", {"name": "b"})
        with people_db.snapshot() as snap:
            # Explicit snapshots are committed-state views even for the
            # transaction's own thread.
            assert snap.count("Person") == 1
        people_db.rollback()


class TestVersionGC:
    def test_unpinned_updates_reclaim_immediately(self, people_db):
        people_db.insert("Person", {"name": "a", "age": 1})
        for age in range(2, 8):
            people_db.update("Person", EQ("name", "a"), {"age": age})
        info = people_db.mvcc_info()
        assert info["gc_pending"] == 0
        assert info["gc_reclaims"] == 6
        assert info["pinned_snapshots"] == 0
        # The chain is fully compacted: one committed image remains.
        entry = people_db._catalog.entry("Person")
        assert len(entry.heap.images(1)) == 1
        assert entry.heap.chain(1)[3] is None  # no older entry

    def test_pin_holds_gc_back_until_release(self, people_db):
        people_db.insert("Person", {"name": "a", "age": 1})
        with people_db.snapshot() as snap:
            people_db.update("Person", EQ("name", "a"), {"age": 2})
            people_db.update("Person", EQ("name", "a"), {"age": 3})
            assert people_db.mvcc_info()["gc_pending"] > 0
            assert snap.get("Person", 1)["age"] == 1
        # The next commit collects everything behind the released pin.
        people_db.update("Person", EQ("name", "a"), {"age": 4})
        info = people_db.mvcc_info()
        assert info["gc_pending"] == 0

    def test_stale_index_entries_are_invisible_then_reclaimed(self, people_db):
        people_db.create_index("Person", ["name"])
        people_db.insert("Person", {"name": "a"})
        with people_db.snapshot() as snap:
            people_db.update("Person", EQ("name", "a"), {"name": "b"})
            # GC is held back: the "a" index entry still exists but the
            # latest-state read re-checks visibility and finds nothing.
            assert people_db.select("Person", EQ("name", "a")) == []
            assert len(people_db.select("Person", EQ("name", "b"))) == 1
            assert snap.select("Person", EQ("name", "a"))[0]["name"] == "a"
        people_db.insert("Person", {"name": "c"})
        entry = people_db._catalog.entry("Person")
        index = entry.hash_indexes["Person__name"]
        assert index.lookup(("a",)) == set()
        assert index.lookup(("b",)) == {1}

    def test_duplicate_key_cycle_keeps_ordered_index_exact(self, people_db):
        people_db.create_ordered_index("Person", "age")
        people_db.insert("Person", {"name": "a", "age": 5})
        people_db.update("Person", EQ("name", "a"), {"age": 7})
        people_db.update("Person", EQ("name", "a"), {"age": 5})
        entry = people_db._catalog.entry("Person")
        ordered = entry.ordered_indexes["Person__age__ordered"]
        assert ordered._pairs == [(5, 1)]
        assert [r["age"] for r in people_db.select("Person", GT("age", 0))] == [
            5
        ]

    def test_mvcc_info_shape(self, people_db):
        people_db.insert("Person", {"name": "a"})
        with people_db.snapshot():
            info = people_db.mvcc_info()
        assert info["pinned_snapshots"] == 1
        assert info["snapshot_reads"] >= 1
        assert info["versions_published"] >= 1
        assert info["oldest_pin_version"] is not None
        assert info["oldest_pin_age_s"] >= 0.0
        assert people_db.mvcc_info()["pinned_snapshots"] == 0


class TestEpochsAndDDL:
    def test_create_index_is_invisible_to_pinned_snapshot(self, people_db):
        people_db.insert("Person", {"name": "a"})
        with people_db.snapshot() as snap:
            people_db.create_index("Person", ["name"])
            people_db.update("Person", EQ("name", "a"), {"name": "z"})
            # The pinned plan must not route through the new index (it
            # holds no entry for the image only this snapshot sees).
            assert snap.explain("Person", EQ("name", "a"))["access"] == (
                "full_scan"
            )
            assert snap.select("Person", EQ("name", "a"))[0]["name"] == "a"
        assert people_db.explain("Person", EQ("name", "z"))["access"] == (
            "hash_index"
        )

    def test_plan_cache_is_epoch_keyed(self, people_db):
        people_db.insert("Person", {"name": "a"})
        people_db.select("Person", EQ("name", "a"))  # prime: full scan
        people_db.create_index("Person", ["name"])
        # Post-DDL the same shape re-plans against the new epoch.
        assert people_db.explain("Person", EQ("name", "a"))["access"] == (
            "hash_index"
        )

    def test_add_column_preserves_pinned_schema(self, people_db):
        people_db.insert("Person", {"name": "a"})
        with people_db.snapshot() as snap:
            people_db.add_column(
                "Person",
                Column("lab", ColumnType.TEXT, default="main"),
            )
            assert "lab" not in snap.select("Person")[0]
            assert snap.count("Person") == 1
        assert people_db.select("Person")[0]["lab"] == "main"


class TestConcurrentReaders:
    def test_readers_always_see_whole_transactions(self, db):
        """Two-row invariant under concurrent transactional updates:
        readers pin snapshots and must never observe a half-applied
        transaction (the sum must stay constant)."""
        db.create_table(
            TableSchema(
                name="Account",
                columns=[
                    Column("account_id", ColumnType.INTEGER, nullable=False),
                    Column("balance", ColumnType.INTEGER, nullable=False),
                ],
                primary_key=("account_id",),
            )
        )
        db.insert("Account", {"account_id": 1, "balance": 500})
        db.insert("Account", {"account_id": 2, "balance": 500})
        stop = threading.Event()
        torn: list[tuple] = []

        def reader() -> None:
            while not stop.is_set():
                with db.snapshot() as snap:
                    rows = snap.select("Account")
                total = sum(row["balance"] for row in rows)
                if len(rows) != 2 or total != 1000:
                    torn.append((len(rows), total))
                    return

        readers = [threading.Thread(target=reader) for __ in range(4)]
        for thread in readers:
            thread.start()
        try:
            for i in range(300):
                amount = (i % 9) - 4
                with db.transaction():
                    a = db.get("Account", 1)["balance"]
                    b = db.get("Account", 2)["balance"]
                    db.update(
                        "Account",
                        EQ("account_id", 1),
                        {"balance": a - amount},
                    )
                    db.update(
                        "Account",
                        EQ("account_id", 2),
                        {"balance": b + amount},
                    )
        finally:
            stop.set()
            for thread in readers:
                thread.join()
        assert torn == []
        # GC is commit-driven: pins held during the run may have left a
        # backlog, which the next commit (no pins remaining) drains.
        db.update("Account", EQ("account_id", 1), {"balance": 500})
        db.update("Account", EQ("account_id", 2), {"balance": 500})
        assert db.mvcc_info()["gc_pending"] == 0

    def test_concurrent_point_reads_during_inserts(self, people_db):
        people_db.insert("Person", {"name": "seed", "age": 0})
        stop = threading.Event()
        failures: list[str] = []

        def reader() -> None:
            while not stop.is_set():
                row = people_db.get("Person", 1)
                if row is None or row["name"] != "seed":
                    failures.append(repr(row))
                    return

        readers = [threading.Thread(target=reader) for __ in range(3)]
        for thread in readers:
            thread.start()
        try:
            for i in range(200):
                people_db.insert("Person", {"name": f"w{i}"})
        finally:
            stop.set()
            for thread in readers:
                thread.join()
        assert failures == []
        assert people_db.count("Person") == 201


class TestStatsOnSnapshotPath:
    def test_snapshot_reads_count_like_direct_reads(self, people_db):
        people_db.insert("Person", {"name": "a"})
        base = people_db.stats.snapshot()
        people_db.select("Person", EQ("name", "a"))
        with people_db.snapshot() as snap:
            snap.select("Person", EQ("name", "a"))
        delta = people_db.stats.snapshot().delta(base)
        # Both paths record one read and one full scan (no index on
        # name) — the snapshot path is not exempt from accounting.
        assert delta.reads == 2
        assert delta.full_scans == 2
        assert delta.per_table_reads == {"Person": 2}

    def test_snapshot_path_hits_the_plan_cache(self, people_db):
        people_db.create_index("Person", ["name"])
        people_db.insert("Person", {"name": "a"})
        base = people_db.stats.snapshot()
        people_db.select("Person", EQ("name", "a"))
        with people_db.snapshot() as snap:
            snap.select("Person", EQ("name", "a"))
            snap.select("Person", EQ("name", "x"))
        delta = people_db.stats.snapshot().delta(base)
        assert delta.plan_cache_misses == 1
        assert delta.plan_cache_hits == 2

    def test_checkpoint_under_pin_preserves_both_views(self, tmp_path):
        db = Database(tmp_path / "pin.wal")
        db.create_table(
            TableSchema(
                name="T",
                columns=[
                    Column("id", ColumnType.INTEGER, nullable=False),
                    Column("value", ColumnType.TEXT),
                ],
                primary_key=("id",),
                autoincrement="id",
            )
        )
        for i in range(10):
            db.insert("T", {"value": f"v{i}"})
        with db.snapshot() as snap:
            db.update("T", EQ("id", 1), {"value": "post-pin"})
            # The checkpoint streams the *latest* committed version
            # while the older pin stays readable.
            db.checkpoint()
            assert snap.get("T", 1)["value"] == "v0"
            assert db.get("T", 1)["value"] == "post-pin"
        db.close()
        recovered = Database(tmp_path / "pin.wal")
        assert recovered.get("T", 1)["value"] == "post-pin"
        assert recovered.count("T") == 10
        recovered.close()


class TestSnapshotErrors:
    def test_snapshot_validates_unknown_columns(self, people_db):
        from repro.errors import SchemaError

        with people_db.snapshot() as snap:
            with pytest.raises(SchemaError):
                snap.select("Person", EQ("nope", 1))
