"""Database engine CRUD behaviour."""

from __future__ import annotations

import pytest

from repro.errors import ConstraintError, UnknownColumnError, UnknownTableError
from repro.minidb import EQ, GE, GT, LT, Column, ColumnType, TableSchema
from repro.minidb.predicates import AND, LIKE


class TestInsert:
    def test_insert_returns_stored_row(self, people_db):
        row = people_db.insert("Person", {"name": "ada", "age": 36})
        assert row["person_id"] == 1
        assert row["name"] == "ada"
        assert row["active"] is True  # default applied

    def test_autoincrement_assigns_sequential_ids(self, people_db):
        first = people_db.insert("Person", {"name": "a"})
        second = people_db.insert("Person", {"name": "b"})
        assert (first["person_id"], second["person_id"]) == (1, 2)

    def test_explicit_id_bumps_the_counter(self, people_db):
        people_db.insert("Person", {"person_id": 10, "name": "x"})
        row = people_db.insert("Person", {"name": "y"})
        assert row["person_id"] == 11

    def test_unknown_column_rejected(self, people_db):
        with pytest.raises(UnknownColumnError):
            people_db.insert("Person", {"name": "a", "ghost": 1})

    def test_unknown_table_rejected(self, people_db):
        with pytest.raises(UnknownTableError):
            people_db.insert("Ghost", {"x": 1})

    def test_string_values_coerced(self, people_db):
        row = people_db.insert("Person", {"name": "a", "age": "44"})
        assert row["age"] == 44

    def test_returned_row_is_a_copy(self, people_db):
        row = people_db.insert("Person", {"name": "a"})
        row["name"] = "mutated"
        assert people_db.get("Person", 1)["name"] == "a"


class TestSelect:
    @pytest.fixture
    def filled(self, people_db):
        for name, age in [("ada", 36), ("alan", 41), ("grace", 85), ("none", None)]:
            people_db.insert("Person", {"name": name, "age": age})
        return people_db

    def test_select_all(self, filled):
        assert len(filled.select("Person")) == 4

    def test_select_with_predicate(self, filled):
        rows = filled.select("Person", GT("age", 40))
        assert {row["name"] for row in rows} == {"alan", "grace"}

    def test_select_like(self, filled):
        rows = filled.select("Person", LIKE("name", "a%"))
        assert {row["name"] for row in rows} == {"ada", "alan"}

    def test_order_by(self, filled):
        rows = filled.select("Person", GE("age", 0), order_by="age")
        assert [row["name"] for row in rows] == ["ada", "alan", "grace"]

    def test_order_by_descending(self, filled):
        rows = filled.select("Person", order_by="age", descending=True)
        assert rows[0]["name"] == "grace"

    def test_order_by_puts_nulls_first_ascending(self, filled):
        rows = filled.select("Person", order_by="age")
        assert rows[0]["age"] is None

    def test_limit(self, filled):
        assert len(filled.select("Person", limit=2)) == 2

    def test_select_one(self, filled):
        assert filled.select_one("Person", EQ("name", "ada"))["age"] == 36
        assert filled.select_one("Person", EQ("name", "ghost")) is None

    def test_get_by_pk(self, filled):
        assert filled.get("Person", 2)["name"] == "alan"
        assert filled.get("Person", 99) is None

    def test_get_wrong_arity_rejected(self, filled):
        with pytest.raises(ConstraintError):
            filled.get("Person", 1, 2)

    def test_count(self, filled):
        assert filled.count("Person") == 4
        assert filled.count("Person", LT("age", 40)) == 1

    def test_unknown_predicate_column_rejected(self, filled):
        with pytest.raises(UnknownColumnError):
            filled.select("Person", EQ("ghost", 1))

    def test_selected_rows_are_copies(self, filled):
        rows = filled.select("Person", EQ("name", "ada"))
        rows[0]["name"] = "mutated"
        assert filled.select_one("Person", EQ("name", "ada")) is not None


class TestUpdate:
    def test_update_changes_matching_rows(self, people_db):
        people_db.insert("Person", {"name": "a", "age": 1})
        people_db.insert("Person", {"name": "b", "age": 1})
        changed = people_db.update("Person", EQ("age", 1), {"age": 2})
        assert changed == 2
        assert people_db.count("Person", EQ("age", 2)) == 2

    def test_update_returns_zero_when_nothing_matches(self, people_db):
        assert people_db.update("Person", EQ("age", 99), {"age": 1}) == 0

    def test_noop_update_counts_zero(self, people_db):
        people_db.insert("Person", {"name": "a", "age": 7})
        assert people_db.update("Person", EQ("age", 7), {"age": 7}) == 0

    def test_primary_key_update_rejected(self, people_db):
        people_db.insert("Person", {"name": "a"})
        with pytest.raises(ConstraintError, match="primary key"):
            people_db.update("Person", EQ("name", "a"), {"person_id": 9})

    def test_update_coerces_values(self, people_db):
        people_db.insert("Person", {"name": "a"})
        people_db.update("Person", EQ("name", "a"), {"age": "30"})
        assert people_db.get("Person", 1)["age"] == 30

    def test_update_none_predicate_touches_all(self, people_db):
        people_db.insert("Person", {"name": "a"})
        people_db.insert("Person", {"name": "b"})
        assert people_db.update("Person", None, {"age": 5}) == 2


class TestDelete:
    def test_delete_matching(self, people_db):
        people_db.insert("Person", {"name": "a", "age": 1})
        people_db.insert("Person", {"name": "b", "age": 2})
        assert people_db.delete("Person", EQ("age", 1)) == 1
        assert people_db.count("Person") == 1

    def test_delete_all(self, people_db):
        people_db.insert("Person", {"name": "a"})
        people_db.insert("Person", {"name": "b"})
        assert people_db.delete("Person", None) == 2
        assert people_db.count("Person") == 0

    def test_delete_nothing(self, people_db):
        assert people_db.delete("Person", EQ("age", 9)) == 0


class TestIndexedAccess:
    def test_secondary_index_serves_equality(self, people_db):
        people_db.create_index("Person", ["name"])
        for index in range(50):
            people_db.insert("Person", {"name": f"p{index}", "age": index})
        before = people_db.stats.rows_scanned
        rows = people_db.select("Person", EQ("name", "p7"))
        assert [row["age"] for row in rows] == [7]
        assert people_db.stats.rows_scanned - before <= 1

    def test_ordered_index_serves_ranges(self, people_db):
        people_db.create_ordered_index("Person", "age")
        for index in range(20):
            people_db.insert("Person", {"name": f"p{index}", "age": index})
        before = people_db.stats.rows_scanned
        rows = people_db.select("Person", LT("age", 3))
        assert {row["age"] for row in rows} == {0, 1, 2}
        assert people_db.stats.rows_scanned - before <= 3

    def test_pk_binding_uses_pk_index(self, people_db):
        for index in range(30):
            people_db.insert("Person", {"name": f"p{index}"})
        before = people_db.stats.rows_scanned
        rows = people_db.select(
            "Person", AND(EQ("person_id", 5), EQ("name", "p4"))
        )
        assert len(rows) == 1
        assert people_db.stats.rows_scanned - before <= 1

    def test_index_stays_consistent_after_update_delete(self, people_db):
        people_db.create_index("Person", ["name"])
        people_db.insert("Person", {"name": "old"})
        people_db.update("Person", EQ("name", "old"), {"name": "new"})
        assert people_db.select("Person", EQ("name", "old")) == []
        assert len(people_db.select("Person", EQ("name", "new"))) == 1
        people_db.delete("Person", EQ("name", "new"))
        assert people_db.select("Person", EQ("name", "new")) == []

    def test_in_predicate_served_by_pk_index(self, people_db):
        for index in range(40):
            people_db.insert("Person", {"name": f"p{index}"})
        from repro.minidb.predicates import IN

        before = people_db.stats.rows_scanned
        rows = people_db.select(
            "Person", IN("person_id", [3, 7, 99]), order_by="person_id"
        )
        assert [row["person_id"] for row in rows] == [3, 7]
        assert people_db.stats.rows_scanned - before <= 2

    def test_in_predicate_served_by_secondary_index(self, people_db):
        people_db.create_index("Person", ["name"])
        for index in range(40):
            people_db.insert("Person", {"name": f"p{index}"})
        from repro.minidb.predicates import IN

        before = people_db.stats.rows_scanned
        rows = people_db.select("Person", IN("name", ["p1", "p2"]))
        assert len(rows) == 2
        assert people_db.stats.rows_scanned - before <= 2

    def test_in_agrees_with_scan(self, people_db):
        from repro.minidb.predicates import IN

        for index in range(10):
            people_db.insert("Person", {"name": f"p{index % 3}"})
        indexed = people_db.select("Person", IN("person_id", [2, 4]))
        by_scan = [
            row for row in people_db.select("Person") if row["person_id"] in (2, 4)
        ]
        assert indexed == by_scan

    def test_unique_index_rejected_on_duplicates(self, people_db):
        people_db.insert("Person", {"name": "dup"})
        people_db.insert("Person", {"name": "dup"})
        with pytest.raises(ConstraintError):
            people_db.create_index("Person", ["name"], unique=True)


class TestDDL:
    def test_drop_table(self, people_db):
        people_db.drop_table("Person")
        assert not people_db.has_table("Person")

    def test_create_duplicate_rejected(self, people_db):
        with pytest.raises(Exception):
            people_db.create_table(
                TableSchema(
                    name="Person",
                    columns=[Column("x", ColumnType.INTEGER, nullable=False)],
                    primary_key=("x",),
                )
            )

    def test_add_column_backfills(self, people_db):
        people_db.insert("Person", {"name": "a"})
        people_db.add_column(
            "Person", Column("notes", ColumnType.TEXT, default="n/a")
        )
        assert people_db.get("Person", 1)["notes"] == "n/a"
        row = people_db.insert("Person", {"name": "b", "notes": "hello"})
        assert row["notes"] == "hello"

    def test_add_not_null_column_without_default_rejected(self, people_db):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            people_db.add_column(
                "Person", Column("req", ColumnType.TEXT, nullable=False)
            )

    def test_add_duplicate_column_rejected(self, people_db):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            people_db.add_column("Person", Column("name", ColumnType.TEXT))

    def test_tables_listing(self, people_db):
        assert people_db.tables() == ["Person"]
        assert people_db.row_count("Person") == 0
