"""Read/write accounting — the unit of the paper's evaluation."""

from __future__ import annotations

from repro.minidb import Column, ColumnType, Database, TableSchema
from repro.minidb.schema import fk


class TestStatsCounting:
    def test_select_counts_one_read(self, people_db):
        before = people_db.stats.reads
        people_db.select("Person")
        assert people_db.stats.reads == before + 1

    def test_insert_counts_one_write(self, people_db):
        before = people_db.stats.writes
        people_db.insert("Person", {"name": "a"})
        assert people_db.stats.writes == before + 1

    def test_update_counts_read_plus_write_per_row(self, people_db):
        people_db.insert("Person", {"name": "a"})
        people_db.insert("Person", {"name": "b"})
        snapshot = people_db.stats.snapshot()
        people_db.update("Person", None, {"age": 1})
        delta = people_db.stats.snapshot().delta(snapshot)
        assert delta.reads == 1  # locating the rows
        assert delta.writes == 2  # one per modified row

    def test_fk_check_counts_as_read_on_referenced_table(self):
        db = Database()
        db.create_table(
            TableSchema(
                name="P",
                columns=[Column("id", ColumnType.INTEGER, nullable=False)],
                primary_key=("id",),
            )
        )
        db.create_table(
            TableSchema(
                name="C",
                columns=[
                    Column("id", ColumnType.INTEGER, nullable=False),
                    Column("p_id", ColumnType.INTEGER),
                ],
                primary_key=("id",),
                foreign_keys=[fk("p_id", "P", "id")],
            )
        )
        db.insert("P", {"id": 1})
        snapshot = db.stats.snapshot()
        db.insert("C", {"id": 1, "p_id": 1})
        delta = db.stats.snapshot().delta(snapshot)
        assert delta.per_table_reads.get("P", 0) == 1
        assert delta.per_table_writes.get("C", 0) == 1

    def test_merged_read_counts_both_tables(self, lab_app):
        lab_app.bean.insert("Pcr", {"cycles": 30})
        snapshot = lab_app.db.stats.snapshot()
        lab_app.db.select_with_parent("Pcr")
        delta = lab_app.db.stats.snapshot().delta(snapshot)
        # The paper's PCR example: reads on both PCR and Experiment.
        assert delta.per_table_reads.get("Pcr", 0) == 1
        assert delta.per_table_reads.get("Experiment", 0) == 1

    def test_snapshot_delta_only_reports_changes(self, people_db):
        people_db.insert("Person", {"name": "a"})
        snapshot = people_db.stats.snapshot()
        people_db.select("Person")
        delta = people_db.stats.snapshot().delta(snapshot)
        assert delta.per_table_writes == {}
        assert delta.per_table_reads == {"Person": 1}

    def test_reset_zeroes_everything(self, people_db):
        people_db.insert("Person", {"name": "a"})
        people_db.stats.reset()
        assert people_db.stats.reads == 0
        assert people_db.stats.writes == 0
        assert people_db.stats.per_table_reads == {}
