"""Transaction atomicity: commit, rollback, autocommit failure paths."""

from __future__ import annotations

import pytest

from repro.errors import PrimaryKeyError, TransactionError
from repro.minidb import EQ, Column, ColumnType, TableSchema


class TestExplicitTransactions:
    def test_commit_keeps_changes(self, people_db):
        people_db.begin()
        people_db.insert("Person", {"name": "a"})
        people_db.commit()
        assert people_db.count("Person") == 1

    def test_rollback_undoes_insert(self, people_db):
        people_db.begin()
        people_db.insert("Person", {"name": "a"})
        people_db.rollback()
        assert people_db.count("Person") == 0

    def test_rollback_undoes_update(self, people_db):
        people_db.insert("Person", {"name": "a", "age": 1})
        people_db.begin()
        people_db.update("Person", EQ("name", "a"), {"age": 99})
        people_db.rollback()
        assert people_db.get("Person", 1)["age"] == 1

    def test_rollback_undoes_delete(self, people_db):
        people_db.insert("Person", {"name": "a"})
        people_db.begin()
        people_db.delete("Person", None)
        people_db.rollback()
        assert people_db.count("Person") == 1

    def test_rollback_restores_mixed_sequence_exactly(self, people_db):
        people_db.insert("Person", {"name": "keep", "age": 10})
        before = people_db.select("Person", order_by="person_id")
        people_db.begin()
        people_db.insert("Person", {"name": "temp"})
        people_db.update("Person", EQ("name", "keep"), {"age": 20})
        people_db.delete("Person", EQ("name", "temp"))
        people_db.insert("Person", {"name": "temp2"})
        people_db.rollback()
        assert people_db.select("Person", order_by="person_id") == before

    def test_rollback_restores_indexes(self, people_db):
        people_db.create_index("Person", ["name"])
        people_db.insert("Person", {"name": "a"})
        people_db.begin()
        people_db.update("Person", EQ("name", "a"), {"name": "b"})
        people_db.rollback()
        assert len(people_db.select("Person", EQ("name", "a"))) == 1
        assert people_db.select("Person", EQ("name", "b")) == []

    def test_nested_begin_rejected(self, people_db):
        people_db.begin()
        with pytest.raises(TransactionError):
            people_db.begin()
        people_db.rollback()

    def test_commit_without_begin_rejected(self, people_db):
        with pytest.raises(TransactionError):
            people_db.commit()

    def test_rollback_without_begin_rejected(self, people_db):
        with pytest.raises(TransactionError):
            people_db.rollback()

    def test_ddl_inside_transaction_rejected(self, people_db):
        people_db.begin()
        with pytest.raises(TransactionError):
            people_db.create_table(
                TableSchema(
                    name="X",
                    columns=[Column("id", ColumnType.INTEGER, nullable=False)],
                    primary_key=("id",),
                )
            )
        with pytest.raises(TransactionError):
            people_db.drop_table("Person")
        people_db.rollback()


class TestContextManager:
    def test_success_commits(self, people_db):
        with people_db.transaction():
            people_db.insert("Person", {"name": "a"})
        assert people_db.count("Person") == 1
        assert not people_db.in_transaction

    def test_exception_rolls_back_and_reraises(self, people_db):
        with pytest.raises(RuntimeError):
            with people_db.transaction():
                people_db.insert("Person", {"name": "a"})
                raise RuntimeError("boom")
        assert people_db.count("Person") == 0
        assert not people_db.in_transaction


class TestAutocommit:
    def test_failed_statement_leaves_no_trace(self, people_db):
        people_db.insert("Person", {"person_id": 1, "name": "a"})
        with pytest.raises(PrimaryKeyError):
            people_db.insert("Person", {"person_id": 1, "name": "b"})
        assert people_db.count("Person") == 1
        assert not people_db.in_transaction

    def test_multi_row_statement_is_atomic(self, people_db):
        """A delete that cascades into a FK restrict must undo fully."""
        from repro.minidb import Database, TableSchema
        from repro.minidb.schema import fk

        db = Database()
        db.create_table(
            TableSchema(
                name="Parent",
                columns=[Column("id", ColumnType.INTEGER, nullable=False)],
                primary_key=("id",),
            )
        )
        db.create_table(
            TableSchema(
                name="Child",
                columns=[
                    Column("id", ColumnType.INTEGER, nullable=False),
                    Column("parent_id", ColumnType.INTEGER),
                ],
                primary_key=("id",),
                foreign_keys=[fk("parent_id", "Parent", "id")],
            )
        )
        db.insert("Parent", {"id": 1})
        db.insert("Parent", {"id": 2})
        db.insert("Child", {"id": 10, "parent_id": 2})
        from repro.errors import ForeignKeyError

        # Deleting all parents hits the restrict on id=2 after id=1 was
        # already removed inside the statement; the whole statement must
        # roll back.
        with pytest.raises(ForeignKeyError):
            db.delete("Parent", None)
        assert db.count("Parent") == 2
