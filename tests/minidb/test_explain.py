"""EXPLAIN: the planner's access-path decisions, observable."""

from __future__ import annotations

import pytest

from repro.minidb.predicates import AND, EQ, GT, IN, LIKE, NOT


@pytest.fixture
def planned(people_db):
    people_db.create_index("Person", ["name"])
    people_db.create_ordered_index("Person", "age")
    for index in range(20):
        people_db.insert("Person", {"name": f"p{index}", "age": index})
    return people_db


class TestExplain:
    def test_pk_lookup(self, planned):
        plan = planned.explain("Person", EQ("person_id", 5))
        assert plan["access"] == "pk_lookup"
        assert plan["columns"] == ["person_id"]
        assert plan["candidate_rows"] == 1

    def test_hash_index(self, planned):
        plan = planned.explain("Person", EQ("name", "p3"))
        assert plan["access"] == "hash_index"
        assert plan["columns"] == ["name"]
        assert plan["candidate_rows"] == 1

    def test_pk_preferred_over_secondary(self, planned):
        plan = planned.explain(
            "Person", AND(EQ("person_id", 5), EQ("name", "p4"))
        )
        assert plan["access"] == "pk_lookup"

    def test_in_index(self, planned):
        plan = planned.explain("Person", IN("person_id", [1, 2, 99]))
        assert plan["access"] == "in_index"
        assert plan["candidate_rows"] == 2  # 99 does not exist

    def test_range_scan(self, planned):
        plan = planned.explain("Person", GT("age", 15))
        assert plan["access"] == "range_scan"
        assert plan["columns"] == ["age"]
        assert plan["candidate_rows"] == 4

    def test_full_scan_fallbacks(self, planned):
        assert planned.explain("Person")["access"] == "full_scan"
        assert (
            planned.explain("Person", LIKE("name", "p%"))["access"]
            == "full_scan"
        )
        assert (
            planned.explain("Person", NOT(EQ("name", "x")))["access"]
            == "full_scan"
        )
        plan = planned.explain("Person", GT("person_id", 3))
        # No ordered index on person_id -> scan.
        assert plan["access"] == "full_scan"
        assert plan["candidate_rows"] == 20

    def test_unknown_column_rejected(self, planned):
        from repro.errors import UnknownColumnError

        with pytest.raises(UnknownColumnError):
            planned.explain("Person", EQ("ghost", 1))

    def test_explain_agrees_with_execution(self, planned):
        """The candidate count bounds what the executed query scans."""
        predicate = EQ("name", "p7")
        plan = planned.explain("Person", predicate)
        before = planned.stats.rows_scanned
        planned.select("Person", predicate)
        scanned = planned.stats.rows_scanned - before
        assert scanned == plan["candidate_rows"]
