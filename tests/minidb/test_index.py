"""Hash and ordered secondary indexes."""

from __future__ import annotations

from repro.minidb.index import HashIndex, OrderedIndex


class TestHashIndex:
    def test_add_lookup_remove(self):
        index = HashIndex(("name",))
        index.add(1, {"name": "a"})
        index.add(2, {"name": "a"})
        index.add(3, {"name": "b"})
        assert index.lookup(("a",)) == {1, 2}
        index.remove(1, {"name": "a"})
        assert index.lookup(("a",)) == {2}
        index.remove(2, {"name": "a"})
        assert index.lookup(("a",)) == set()

    def test_composite_key(self):
        index = HashIndex(("x", "y"))
        index.add(1, {"x": 1, "y": 2})
        assert index.lookup((1, 2)) == {1}
        assert index.lookup((2, 1)) == set()

    def test_null_keys_never_match(self):
        index = HashIndex(("name",))
        index.add(1, {"name": None})
        assert index.lookup((None,)) == set()
        assert not index.contains_key((None,))
        assert index.count_key((None,)) == 0

    def test_contains_and_count(self):
        index = HashIndex(("k",))
        index.add(1, {"k": "v"})
        index.add(2, {"k": "v"})
        assert index.contains_key(("v",))
        assert index.count_key(("v",)) == 2
        assert not index.contains_key(("w",))

    def test_remove_absent_is_noop(self):
        index = HashIndex(("k",))
        index.remove(9, {"k": "ghost"})  # must not raise

    def test_rebuild(self):
        index = HashIndex(("k",))
        index.add(1, {"k": "old"})
        index.rebuild([(5, {"k": "new"})])
        assert index.lookup(("old",)) == set()
        assert index.lookup(("new",)) == {5}


class TestOrderedIndex:
    def build(self):
        index = OrderedIndex("score")
        for rowid, score in [(1, 0.5), (2, 0.1), (3, 0.9), (4, 0.5), (5, None)]:
            index.add(rowid, {"score": score})
        return index

    def test_full_range_sorted(self):
        index = self.build()
        assert list(index.range()) == [2, 1, 4, 3]

    def test_low_bound(self):
        index = self.build()
        assert list(index.range(low=0.5)) == [1, 4, 3]
        assert list(index.range(low=0.5, include_low=False)) == [3]

    def test_high_bound(self):
        index = self.build()
        assert list(index.range(high=0.5)) == [2, 1, 4]
        assert list(index.range(high=0.5, include_high=False)) == [2]

    def test_window(self):
        index = self.build()
        assert list(index.range(low=0.2, high=0.6)) == [1, 4]

    def test_nulls_excluded(self):
        index = self.build()
        assert 5 not in list(index.range())

    def test_remove_specific_rowid_among_duplicates(self):
        index = self.build()
        index.remove(1, {"score": 0.5})
        assert list(index.range(low=0.5, high=0.5)) == [4]

    def test_remove_null_is_noop(self):
        index = self.build()
        index.remove(5, {"score": None})
        assert list(index.range()) == [2, 1, 4, 3]

    def test_rebuild(self):
        index = self.build()
        index.rebuild([(7, {"score": 0.3})])
        assert list(index.range()) == [7]
