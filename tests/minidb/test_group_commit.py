"""WAL sync policies and group commit: batching, durability, crash prefix."""

from __future__ import annotations

import threading

import pytest

from repro.errors import FaultInjected
from repro.minidb import Column, ColumnType, Database, TableSchema
from repro.resilience import FaultPlan


def person_schema() -> TableSchema:
    return TableSchema(
        name="Person",
        columns=[
            Column("person_id", ColumnType.INTEGER, nullable=False),
            Column("name", ColumnType.TEXT, nullable=False),
            Column("age", ColumnType.INTEGER),
        ],
        primary_key=("person_id",),
        autoincrement="person_id",
    )


@pytest.fixture
def wal_path(tmp_path):
    return tmp_path / "test.wal"


class TestSyncPolicyKnob:
    def test_unknown_policy_rejected(self, wal_path):
        with pytest.raises(ValueError):
            Database(wal_path, sync_policy="bogus")

    def test_policy_reported_in_wal_info(self, wal_path):
        db = Database(wal_path, sync_policy="group")
        info = db.wal_info()
        assert info["sync_policy"] == "group"
        assert info["fsyncs"] == 0
        db.close()

    def test_always_fsyncs_every_append(self, wal_path):
        db = Database(wal_path)  # sync_policy="always" is the default
        db.create_table(person_schema())
        for i in range(5):
            db.insert("Person", {"name": f"p{i}"})
        info = db.wal_info()
        assert info["sync_policy"] == "always"
        assert info["fsyncs"] == info["appended_records"] == 6
        db.close()

    def test_off_never_fsyncs_but_clean_close_is_durable(self, wal_path):
        db = Database(wal_path, sync_policy="off")
        db.create_table(person_schema())
        for i in range(5):
            db.insert("Person", {"name": f"p{i}"})
        assert db.wal_info()["fsyncs"] == 0
        db.close()

        reopened = Database(wal_path)
        assert reopened.row_count("Person") == 5
        reopened.close()


class TestGroupCommit:
    def test_single_threaded_commits_are_durable(self, wal_path):
        db = Database(wal_path, sync_policy="group")
        db.create_table(person_schema())
        for i in range(10):
            db.insert("Person", {"name": f"p{i}"})
        db.close()

        reopened = Database(wal_path)
        assert [r["name"] for r in reopened.select("Person")] == [
            f"p{i}" for i in range(10)
        ]
        reopened.close()

    def test_concurrent_committers_share_fsyncs(self, wal_path):
        threads, inserts_per_thread = 8, 25
        db = Database(wal_path, sync_policy="group", group_window_s=0.002)
        db.create_table(person_schema())

        barrier = threading.Barrier(threads)

        def worker(worker_id: int) -> None:
            barrier.wait()
            for i in range(inserts_per_thread):
                db.insert("Person", {"name": f"w{worker_id}-{i}"})

        pool = [
            threading.Thread(target=worker, args=(n,)) for n in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        info = db.wal_info()
        total_appends = threads * inserts_per_thread + 1  # + create_table
        assert info["appended_records"] == total_appends
        # Every buffered append was covered by some shared barrier …
        assert info["group_writes_covered"] == total_appends
        assert info["group_syncs"] == info["fsyncs"]
        # … and batching actually happened: far fewer fsyncs than commits.
        assert info["fsyncs"] < total_appends
        db.close()

        reopened = Database(wal_path)
        assert reopened.row_count("Person") == threads * inserts_per_thread
        reopened.close()

    def test_close_drains_pending_group_appends(self, wal_path):
        db = Database(wal_path, sync_policy="group")
        db.create_table(person_schema())
        db.insert("Person", {"name": "last"})
        db.close()
        assert db.wal_info()["fsyncs"] >= 1

        reopened = Database(wal_path)
        assert reopened.row_count("Person") == 1
        reopened.close()


class TestGroupCommitChaos:
    def test_crash_between_write_and_fsync_replays_a_prefix(self, wal_path):
        """Die inside the group fsync barrier: the survivor set is a prefix.

        The append is buffered (and flushed) before the barrier runs, so
        the record of the in-doubt commit may or may not be on disk — but
        replay must never yield a gap: every acknowledged commit survives
        and the recovered rows are a contiguous prefix of the insert
        order.
        """
        db = Database(wal_path, sync_policy="group")
        db.create_table(person_schema())
        db.insert("Person", {"name": "p0"})
        db.insert("Person", {"name": "p1"})

        plan = FaultPlan(seed=7).rule(
            "wal.fsync",
            "crash",
            times=1,
            where={"record_type": "group"},
        )
        db.attach_faults(plan)
        with pytest.raises(FaultInjected):
            db.insert("Person", {"name": "p2"})
        # Simulate process death: no close(), no flush — just reopen.

        reopened = Database(wal_path)
        names = [r["name"] for r in reopened.select("Person")]
        assert names in ([["p0", "p1"], ["p0", "p1", "p2"]])
        reopened.close()

    def test_acknowledged_commits_survive_a_later_crash(self, wal_path):
        db = Database(wal_path, sync_policy="group")
        db.create_table(person_schema())
        for i in range(4):
            db.insert("Person", {"name": f"p{i}"})

        plan = FaultPlan(seed=11).rule(
            "wal.fsync", "crash", times=1, where={"record_type": "group"}
        )
        db.attach_faults(plan)
        with pytest.raises(FaultInjected):
            db.insert("Person", {"name": "doomed-or-not"})

        reopened = Database(wal_path)
        survivors = [r["name"] for r in reopened.select("Person")]
        # The four acknowledged inserts are a durable prefix.
        assert survivors[:4] == ["p0", "p1", "p2", "p3"]
        assert len(survivors) in (4, 5)
        reopened.close()


class TestInjectableClock:
    """The straggler-window sleep goes through the injectable clock —
    the one hot-path sleep the chaos suite previously could not
    control."""

    def test_manual_clock_absorbs_the_straggler_window(self):
        from repro.durable import GroupCommitter
        from repro.resilience import ManualClock

        clock = ManualClock()
        committer = GroupCommitter(window_s=5.0, clock=clock)
        seq = committer.note_write()
        before = clock.now()
        committer.wait_durable(seq, do_sync=lambda: None)
        # The leader "slept" the full window on the simulated timeline,
        # no wall time passed, and the write is covered.
        assert clock.now() == before + 5.0
        assert committer.pending() == 0
        assert committer.syncs == 1

    def test_database_threads_clock_to_the_wal(self, wal_path):
        from repro.resilience import ManualClock

        clock = ManualClock()
        db = Database(
            wal_path,
            sync_policy="group",
            group_window_s=2.0,
            clock=clock,
        )
        db.create_table(person_schema())
        before = clock.now()
        db.insert("Person", {"name": "p0"})
        assert clock.now() == before + 2.0  # window served by the clock
        db.close()

    def test_default_clock_is_wall_clock(self):
        from repro.durable import GroupCommitter
        from repro.resilience.clock import SystemClock

        assert isinstance(GroupCommitter().clock, SystemClock)
