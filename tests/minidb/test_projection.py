"""SELECT projection (``columns=``)."""

from __future__ import annotations

import pytest

from repro.errors import UnknownColumnError
from repro.minidb import EQ


@pytest.fixture
def filled(people_db):
    for name, age in [("ada", 36), ("alan", 41)]:
        people_db.insert("Person", {"name": name, "age": age})
    return people_db


class TestProjection:
    def test_projects_to_named_columns(self, filled):
        rows = filled.select("Person", columns=["name"])
        assert rows == [{"name": "ada"}, {"name": "alan"}]

    def test_projection_with_predicate_and_order(self, filled):
        rows = filled.select(
            "Person",
            EQ("age", 41),
            order_by="age",
            columns=["name", "age"],
        )
        assert rows == [{"name": "alan", "age": 41}]

    def test_order_by_column_outside_projection(self, filled):
        rows = filled.select(
            "Person", order_by="age", descending=True, columns=["name"]
        )
        assert [row["name"] for row in rows] == ["alan", "ada"]

    def test_unknown_projection_column_rejected(self, filled):
        with pytest.raises(UnknownColumnError):
            filled.select("Person", columns=["ghost"])

    def test_empty_projection_yields_empty_dicts(self, filled):
        rows = filled.select("Person", columns=[])
        assert rows == [{}, {}]

    def test_projection_rows_are_copies(self, filled):
        rows = filled.select("Person", columns=["name"])
        rows[0]["name"] = "mutated"
        assert filled.get("Person", 1)["name"] == "ada"
