"""Query predicate semantics, including SQL-style NULL handling."""

from __future__ import annotations

import pytest

from repro.minidb.predicates import (
    AND,
    EQ,
    GE,
    GT,
    IN,
    IS_NULL,
    LE,
    LIKE,
    LT,
    NE,
    NOT,
    OR,
    by_key,
)

ROW = {"a": 5, "b": "hello", "c": None, "d": 2.5, "e": True}


class TestComparisons:
    def test_eq(self):
        assert EQ("a", 5).matches(ROW)
        assert not EQ("a", 6).matches(ROW)

    def test_eq_null_never_matches(self):
        assert not EQ("c", None).matches(ROW)
        assert not EQ("c", 5).matches(ROW)

    def test_ne(self):
        assert NE("a", 6).matches(ROW)
        assert not NE("a", 5).matches(ROW)

    def test_ne_null_never_matches(self):
        assert not NE("c", 5).matches(ROW)

    def test_ordering(self):
        assert LT("a", 6).matches(ROW)
        assert LE("a", 5).matches(ROW)
        assert GT("a", 4).matches(ROW)
        assert GE("a", 5).matches(ROW)
        assert not LT("a", 5).matches(ROW)

    def test_ordering_against_null_is_false(self):
        assert not LT("c", 10).matches(ROW)
        assert not GE("c", 0).matches(ROW)

    def test_cross_type_ordering_is_false(self):
        assert not LT("b", 10).matches(ROW)  # text vs int

    def test_numeric_mixed_int_float_compares(self):
        assert GT("d", 2).matches(ROW)

    def test_boolean_vs_number_never_orders(self):
        assert not GT("e", 0).matches(ROW)

    def test_missing_column_behaves_as_null(self):
        assert not EQ("ghost", 1).matches(ROW)
        assert IS_NULL("ghost").matches(ROW)


class TestSetAndPattern:
    def test_in(self):
        assert IN("a", [1, 5, 9]).matches(ROW)
        assert not IN("a", [1, 2]).matches(ROW)
        assert not IN("c", [None]).matches(ROW)

    def test_like_exact(self):
        assert LIKE("b", "hello").matches(ROW)
        assert not LIKE("b", "hell").matches(ROW)

    def test_like_wildcards(self):
        assert LIKE("b", "he%").matches(ROW)
        assert LIKE("b", "%llo").matches(ROW)
        assert LIKE("b", "h%o").matches(ROW)
        assert LIKE("b", "%ell%").matches(ROW)
        assert LIKE("b", "%").matches(ROW)
        assert not LIKE("b", "x%").matches(ROW)

    def test_like_multiple_wildcards(self):
        row = {"s": "abcabc"}
        assert LIKE("s", "a%c%c").matches(row)
        assert not LIKE("s", "a%d%c").matches(row)

    def test_like_non_string_is_false(self):
        assert not LIKE("a", "%").matches(ROW)
        assert not LIKE("c", "%").matches(ROW)

    def test_is_null(self):
        assert IS_NULL("c").matches(ROW)
        assert not IS_NULL("a").matches(ROW)


class TestCombinators:
    def test_and(self):
        assert AND(EQ("a", 5), GT("d", 2)).matches(ROW)
        assert not AND(EQ("a", 5), GT("d", 3)).matches(ROW)

    def test_or(self):
        assert OR(EQ("a", 99), EQ("b", "hello")).matches(ROW)
        assert not OR(EQ("a", 99), EQ("b", "bye")).matches(ROW)

    def test_not(self):
        assert NOT(EQ("a", 99)).matches(ROW)
        assert not NOT(EQ("a", 5)).matches(ROW)

    def test_operator_sugar(self):
        assert (EQ("a", 5) & GT("d", 2)).matches(ROW)
        assert (EQ("a", 0) | EQ("a", 5)).matches(ROW)
        assert (~EQ("a", 0)).matches(ROW)

    def test_and_or_need_two_operands(self):
        with pytest.raises(ValueError):
            AND(EQ("a", 1))
        with pytest.raises(ValueError):
            OR(EQ("a", 1))

    def test_columns_collection(self):
        predicate = AND(EQ("a", 1), OR(NOT(EQ("b", "x")), IS_NULL("c")))
        assert predicate.columns() == {"a", "b", "c"}


class TestEqualityBindings:
    def test_simple_eq_binding(self):
        assert EQ("a", 5).equality_bindings() == {"a": 5}

    def test_and_merges_bindings(self):
        predicate = AND(EQ("a", 5), EQ("b", "hello"), GT("d", 1))
        assert predicate.equality_bindings() == {"a": 5, "b": "hello"}

    def test_or_exposes_no_bindings(self):
        assert OR(EQ("a", 5), EQ("a", 6)).equality_bindings() == {}

    def test_non_eq_exposes_no_bindings(self):
        assert GT("a", 1).equality_bindings() == {}
        assert NOT(EQ("a", 1)).equality_bindings() == {}

    def test_by_key_single(self):
        predicate = by_key(["a"], [5])
        assert predicate.matches(ROW)
        assert predicate.equality_bindings() == {"a": 5}

    def test_by_key_composite(self):
        predicate = by_key(["a", "b"], [5, "hello"])
        assert predicate.matches(ROW)
        assert predicate.equality_bindings() == {"a": 5, "b": "hello"}

    def test_by_key_empty_rejected(self):
        with pytest.raises(ValueError):
            by_key([], [])
