"""Column type coercion and wire encoding."""

from __future__ import annotations

import datetime

import pytest

from repro.errors import TypeMismatchError
from repro.minidb.types import ColumnType, coerce, from_wire, python_type, to_wire


class TestIntegerCoercion:
    def test_int_passes_through(self):
        assert coerce(42, ColumnType.INTEGER) == 42

    def test_integral_float_converts(self):
        assert coerce(42.0, ColumnType.INTEGER) == 42

    def test_fractional_float_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce(42.5, ColumnType.INTEGER)

    def test_numeric_string_converts(self):
        assert coerce("17", ColumnType.INTEGER) == 17

    def test_non_numeric_string_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce("seventeen", ColumnType.INTEGER)

    def test_boolean_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce(True, ColumnType.INTEGER)

    def test_negative(self):
        assert coerce("-3", ColumnType.INTEGER) == -3


class TestRealCoercion:
    def test_float_passes_through(self):
        assert coerce(0.5, ColumnType.REAL) == 0.5

    def test_int_converts(self):
        value = coerce(3, ColumnType.REAL)
        assert value == 3.0
        assert isinstance(value, float)

    def test_string_converts(self):
        assert coerce("0.25", ColumnType.REAL) == 0.25

    def test_boolean_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce(False, ColumnType.REAL)

    def test_garbage_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce("half", ColumnType.REAL)


class TestTextCoercion:
    def test_string_passes_through(self):
        assert coerce("hello", ColumnType.TEXT) == "hello"

    def test_number_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce(42, ColumnType.TEXT)

    def test_empty_string_allowed(self):
        assert coerce("", ColumnType.TEXT) == ""


class TestBooleanCoercion:
    def test_bool_passes_through(self):
        assert coerce(True, ColumnType.BOOLEAN) is True

    def test_zero_one_convert(self):
        assert coerce(1, ColumnType.BOOLEAN) is True
        assert coerce(0, ColumnType.BOOLEAN) is False

    def test_other_int_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce(2, ColumnType.BOOLEAN)

    def test_string_literals(self):
        assert coerce("true", ColumnType.BOOLEAN) is True
        assert coerce("False", ColumnType.BOOLEAN) is False

    def test_bad_string_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce("yes", ColumnType.BOOLEAN)


class TestTimestampCoercion:
    def test_datetime_passes_through(self):
        now = datetime.datetime(2026, 7, 4, 12, 30, 15, 123456)
        assert coerce(now, ColumnType.TIMESTAMP) is now

    def test_iso_string_parses(self):
        parsed = coerce("2026-07-04T12:30:15", ColumnType.TIMESTAMP)
        assert parsed == datetime.datetime(2026, 7, 4, 12, 30, 15)

    def test_garbage_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce("yesterday", ColumnType.TIMESTAMP)


class TestNullAndWire:
    def test_none_passes_through_every_type(self):
        for column_type in ColumnType:
            assert coerce(None, column_type) is None

    def test_wire_roundtrip_timestamp(self):
        stamp = datetime.datetime(2026, 7, 4, 1, 2, 3, 400000)
        wire = to_wire(stamp, ColumnType.TIMESTAMP)
        assert isinstance(wire, str)
        assert from_wire(wire, ColumnType.TIMESTAMP) == stamp

    def test_wire_roundtrip_scalars(self):
        cases = [
            (7, ColumnType.INTEGER),
            (0.125, ColumnType.REAL),
            ("text", ColumnType.TEXT),
            (True, ColumnType.BOOLEAN),
            (None, ColumnType.INTEGER),
        ]
        for value, column_type in cases:
            assert from_wire(to_wire(value, column_type), column_type) == value

    def test_python_type_mapping(self):
        assert python_type(ColumnType.INTEGER) is int
        assert python_type(ColumnType.TIMESTAMP) is datetime.datetime

    def test_error_message_includes_context(self):
        with pytest.raises(TypeMismatchError, match="Person.age"):
            coerce("x", ColumnType.INTEGER, context="Person.age")
