"""Integrity constraints: PK, NOT NULL, FK actions, inheritance."""

from __future__ import annotations

import pytest

from repro.errors import (
    ForeignKeyError,
    NotNullError,
    PrimaryKeyError,
    SchemaError,
)
from repro.minidb import EQ, Column, ColumnType, Database, TableSchema
from repro.minidb.schema import fk


@pytest.fixture
def linked_db():
    """Project → Item with restrict FK, Project → Note with cascade FK."""
    db = Database()
    db.create_table(
        TableSchema(
            name="Proj",
            columns=[
                Column("proj_id", ColumnType.INTEGER, nullable=False),
                Column("title", ColumnType.TEXT, nullable=False),
            ],
            primary_key=("proj_id",),
            autoincrement="proj_id",
        )
    )
    db.create_table(
        TableSchema(
            name="Item",
            columns=[
                Column("item_id", ColumnType.INTEGER, nullable=False),
                Column("proj_id", ColumnType.INTEGER),
            ],
            primary_key=("item_id",),
            foreign_keys=[fk("proj_id", "Proj", "proj_id")],
            autoincrement="item_id",
        )
    )
    db.create_table(
        TableSchema(
            name="Note",
            columns=[
                Column("note_id", ColumnType.INTEGER, nullable=False),
                Column("proj_id", ColumnType.INTEGER),
            ],
            primary_key=("note_id",),
            foreign_keys=[fk("proj_id", "Proj", "proj_id", "cascade")],
            autoincrement="note_id",
        )
    )
    return db


class TestPrimaryKey:
    def test_duplicate_rejected(self, linked_db):
        linked_db.insert("Proj", {"proj_id": 1, "title": "a"})
        with pytest.raises(PrimaryKeyError):
            linked_db.insert("Proj", {"proj_id": 1, "title": "b"})

    def test_null_pk_rejected(self, people_db=None):
        db = Database()
        db.create_table(
            TableSchema(
                name="T",
                columns=[Column("k", ColumnType.TEXT)],
                primary_key=("k",),
            )
        )
        with pytest.raises(PrimaryKeyError):
            db.insert("T", {"k": None})


class TestNotNull:
    def test_missing_required_value_rejected(self, linked_db):
        with pytest.raises(NotNullError):
            linked_db.insert("Proj", {"title": None})

    def test_update_to_null_rejected(self, linked_db):
        linked_db.insert("Proj", {"title": "a"})
        with pytest.raises(NotNullError):
            linked_db.update("Proj", EQ("proj_id", 1), {"title": None})


class TestForeignKeys:
    def test_insert_with_valid_reference(self, linked_db):
        project = linked_db.insert("Proj", {"title": "p"})
        item = linked_db.insert("Item", {"proj_id": project["proj_id"]})
        assert item["proj_id"] == project["proj_id"]

    def test_insert_with_dangling_reference_rejected(self, linked_db):
        with pytest.raises(ForeignKeyError):
            linked_db.insert("Item", {"proj_id": 99})

    def test_null_reference_allowed(self, linked_db):
        linked_db.insert("Item", {"proj_id": None})

    def test_update_to_dangling_reference_rejected(self, linked_db):
        linked_db.insert("Proj", {"title": "p"})
        linked_db.insert("Item", {"proj_id": 1})
        with pytest.raises(ForeignKeyError):
            linked_db.update("Item", EQ("item_id", 1), {"proj_id": 42})

    def test_delete_restrict_blocks(self, linked_db):
        linked_db.insert("Proj", {"title": "p"})
        linked_db.insert("Item", {"proj_id": 1})
        with pytest.raises(ForeignKeyError):
            linked_db.delete("Proj", EQ("proj_id", 1))
        assert linked_db.count("Proj") == 1

    def test_delete_cascade_removes_referents(self, linked_db):
        linked_db.insert("Proj", {"title": "p"})
        linked_db.insert("Note", {"proj_id": 1})
        linked_db.insert("Note", {"proj_id": 1})
        deleted = linked_db.delete("Proj", EQ("proj_id", 1))
        assert deleted == 3  # project + 2 notes
        assert linked_db.count("Note") == 0

    def test_delete_unreferenced_parent_allowed(self, linked_db):
        linked_db.insert("Proj", {"title": "p"})
        assert linked_db.delete("Proj", EQ("proj_id", 1)) == 1

    def test_fk_must_reference_primary_key(self):
        db = Database()
        db.create_table(
            TableSchema(
                name="A",
                columns=[
                    Column("a_id", ColumnType.INTEGER, nullable=False),
                    Column("alt", ColumnType.TEXT),
                ],
                primary_key=("a_id",),
            )
        )
        with pytest.raises(SchemaError):
            db.create_table(
                TableSchema(
                    name="B",
                    columns=[
                        Column("b_id", ColumnType.INTEGER, nullable=False),
                        Column("a_alt", ColumnType.TEXT),
                    ],
                    primary_key=("b_id",),
                    foreign_keys=[fk("a_alt", "A", "alt")],
                )
            )

    def test_drop_referenced_table_rejected(self, linked_db):
        with pytest.raises(SchemaError):
            linked_db.drop_table("Proj")
        linked_db.drop_table("Item")
        linked_db.drop_table("Note")
        linked_db.drop_table("Proj")  # now allowed
