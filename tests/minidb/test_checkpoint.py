"""WAL checkpointing (log compaction)."""

from __future__ import annotations

import pytest

from repro.errors import TransactionError
from repro.minidb import EQ, Column, ColumnType, Database, TableSchema


def schema() -> TableSchema:
    return TableSchema(
        name="T",
        columns=[
            Column("id", ColumnType.INTEGER, nullable=False),
            Column("value", ColumnType.TEXT),
        ],
        primary_key=("id",),
        autoincrement="id",
    )


@pytest.fixture
def wal_path(tmp_path):
    return tmp_path / "ckpt.wal"


class TestCheckpoint:
    def test_checkpoint_shrinks_log(self, wal_path):
        db = Database(wal_path)
        db.create_table(schema())
        for index in range(50):
            db.insert("T", {"value": f"v{index}"})
        db.update("T", None, {"value": "same"})
        db.delete("T", EQ("id", 1))
        size_before = db.wal_info()["size_bytes"]
        db.checkpoint()
        assert db.wal_info()["size_bytes"] < size_before

    def test_state_identical_after_checkpoint_and_reopen(self, wal_path):
        db = Database(wal_path)
        db.create_table(schema())
        db.create_index("T", ["value"])
        db.create_ordered_index("T", "id")
        for index in range(10):
            db.insert("T", {"value": f"v{index}"})
        db.delete("T", EQ("id", 3))
        expected = db.select("T", order_by="id")
        db.checkpoint()
        db.close()

        reopened = Database(wal_path)
        assert reopened.select("T", order_by="id") == expected
        # The secondary index was rebuilt and serves queries.
        before = reopened.stats.rows_scanned
        assert len(reopened.select("T", EQ("value", "v5"))) == 1
        assert reopened.stats.rows_scanned - before <= 1

    def test_autoincrement_gap_survives_checkpoint(self, wal_path):
        """Deleting the max row must not recycle its id after a
        checkpoint+reopen."""
        db = Database(wal_path)
        db.create_table(schema())
        db.insert("T", {"value": "a"})  # id 1
        db.insert("T", {"value": "b"})  # id 2
        db.delete("T", EQ("id", 2))
        db.checkpoint()
        db.close()
        reopened = Database(wal_path)
        row = reopened.insert("T", {"value": "c"})
        assert row["id"] == 3  # not 2

    def test_writes_after_checkpoint_append_normally(self, wal_path):
        db = Database(wal_path)
        db.create_table(schema())
        db.insert("T", {"value": "pre"})
        db.checkpoint()
        db.insert("T", {"value": "post"})
        db.close()
        reopened = Database(wal_path)
        assert [row["value"] for row in reopened.select("T", order_by="id")] == [
            "pre",
            "post",
        ]

    def test_checkpoint_in_transaction_rejected(self, wal_path):
        db = Database(wal_path)
        db.create_table(schema())
        db.begin()
        with pytest.raises(TransactionError):
            db.checkpoint()
        db.rollback()

    def test_checkpoint_without_wal_rejected(self):
        db = Database()
        with pytest.raises(TransactionError):
            db.checkpoint()

    def test_empty_database_checkpoint(self, wal_path):
        db = Database(wal_path)
        db.create_table(schema())
        db.checkpoint()
        db.close()
        reopened = Database(wal_path)
        assert reopened.tables() == ["T"]
        assert reopened.select("T") == []

    def test_repeated_checkpoints_idempotent(self, wal_path):
        db = Database(wal_path)
        db.create_table(schema())
        db.insert("T", {"value": "x"})
        first = db.checkpoint()
        second = db.checkpoint()
        assert first == second
        db.close()
        assert Database(wal_path).count("T") == 1
