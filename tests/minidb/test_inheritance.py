"""Exp-DB-style table inheritance (experiment-type child tables)."""

from __future__ import annotations

import pytest

from repro.errors import ForeignKeyError, SchemaError
from repro.minidb import EQ, Column, ColumnType, Database, TableSchema


@pytest.fixture
def family_db():
    db = Database()
    db.create_table(
        TableSchema(
            name="Experiment",
            columns=[
                Column("experiment_id", ColumnType.INTEGER, nullable=False),
                Column("kind", ColumnType.TEXT),
            ],
            primary_key=("experiment_id",),
            autoincrement="experiment_id",
        )
    )
    db.create_table(
        TableSchema(
            name="PCR",
            columns=[
                Column("experiment_id", ColumnType.INTEGER, nullable=False),
                Column("cycles", ColumnType.INTEGER),
            ],
            primary_key=("experiment_id",),
            parent="Experiment",
        )
    )
    return db


class TestInheritance:
    def test_child_requires_parent_row(self, family_db):
        with pytest.raises(ForeignKeyError):
            family_db.insert("PCR", {"experiment_id": 1, "cycles": 30})

    def test_child_insert_after_parent(self, family_db):
        parent = family_db.insert("Experiment", {"kind": "pcr"})
        family_db.insert(
            "PCR", {"experiment_id": parent["experiment_id"], "cycles": 30}
        )
        assert family_db.count("PCR") == 1

    def test_select_with_parent_merges(self, family_db):
        parent = family_db.insert("Experiment", {"kind": "pcr"})
        family_db.insert(
            "PCR", {"experiment_id": parent["experiment_id"], "cycles": 30}
        )
        merged = family_db.select_with_parent("PCR")
        assert merged == [{"experiment_id": 1, "kind": "pcr", "cycles": 30}]

    def test_select_with_parent_filters_on_child(self, family_db):
        for cycles in (10, 20):
            parent = family_db.insert("Experiment", {"kind": "pcr"})
            family_db.insert(
                "PCR",
                {"experiment_id": parent["experiment_id"], "cycles": cycles},
            )
        merged = family_db.select_with_parent("PCR", EQ("cycles", 20))
        assert [row["cycles"] for row in merged] == [20]

    def test_child_column_wins_name_clash(self):
        db = Database()
        db.create_table(
            TableSchema(
                name="P",
                columns=[
                    Column("id", ColumnType.INTEGER, nullable=False),
                    Column("label", ColumnType.TEXT, default="parent"),
                ],
                primary_key=("id",),
            )
        )
        db.create_table(
            TableSchema(
                name="C",
                columns=[
                    Column("id", ColumnType.INTEGER, nullable=False),
                    Column("label", ColumnType.TEXT, default="child"),
                ],
                primary_key=("id",),
                parent="P",
            )
        )
        db.insert("P", {"id": 1})
        db.insert("C", {"id": 1})
        assert db.select_with_parent("C")[0]["label"] == "child"

    def test_parent_delete_cascades_to_child(self, family_db):
        parent = family_db.insert("Experiment", {"kind": "pcr"})
        family_db.insert("PCR", {"experiment_id": parent["experiment_id"]})
        family_db.delete("Experiment", EQ("experiment_id", 1))
        assert family_db.count("PCR") == 0
        assert family_db.count("Experiment") == 0

    def test_parent_without_child_is_fine(self, family_db):
        family_db.insert("Experiment", {"kind": "free"})
        assert family_db.select_with_parent("PCR") == []

    def test_child_pk_must_match_parent_pk(self, family_db):
        with pytest.raises(SchemaError):
            family_db.create_table(
                TableSchema(
                    name="Bad",
                    columns=[
                        Column("other_id", ColumnType.INTEGER, nullable=False)
                    ],
                    primary_key=("other_id",),
                    parent="Experiment",
                )
            )

    def test_drop_parent_with_children_rejected(self, family_db):
        with pytest.raises(SchemaError):
            family_db.drop_table("Experiment")

    def test_multi_level_chain(self):
        db = Database()
        for name, parent in [("A", None), ("B", "A"), ("C", "B")]:
            db.create_table(
                TableSchema(
                    name=name,
                    columns=[
                        Column("id", ColumnType.INTEGER, nullable=False),
                        Column(f"{name.lower()}_val", ColumnType.TEXT),
                    ],
                    primary_key=("id",),
                    parent=parent,
                )
            )
        db.insert("A", {"id": 1, "a_val": "a"})
        db.insert("B", {"id": 1, "b_val": "b"})
        db.insert("C", {"id": 1, "c_val": "c"})
        merged = db.select_with_parent("C")[0]
        assert merged == {"id": 1, "a_val": "a", "b_val": "b", "c_val": "c"}
        # Deleting the root cascades through the whole chain.
        db.delete("A", EQ("id", 1))
        assert db.count("B") == 0
        assert db.count("C") == 0
