"""Acceptance: one experiment submission, one coherent trace.

Submits an experiment through the web container of a fully wired
protein lab and asserts that a single trace ID links spans from every
tier — the WorkflowFilter in all three Fig. 7 modes, engine state
transitions, broker deliveries, and agent execution — and that the
``/workflow/metrics`` endpoint exposes the corresponding metrics.
"""

from __future__ import annotations

import pytest

from repro.obs import TraceExporter
from repro.workloads.protein import build_protein_lab


@pytest.fixture(scope="module")
def submission():
    lab = build_protein_lab()
    hub = lab.obs
    with hub.tracer.span("experiment.submission") as root:
        insert = lab.app.post(
            "/user", action="insert", table="Pcr", v_cycles="30"
        )
        start = lab.app.post(
            "/user", workflow_action="start", pattern="protein_creation"
        )
        lab.run_messages()
    assert insert.ok
    assert start.ok
    return lab, hub, root


class TestSingleTrace:
    def test_one_trace_links_every_tier(self, submission):
        lab, hub, root = submission
        spans = hub.tracer.spans_for(root.trace_id)
        names = {span.name for span in spans}
        # Web tier: both requests under the submission root.
        assert names >= {"experiment.submission", "http.request"}
        # WorkflowFilter, all three Fig. 7 modes.
        assert names >= {
            "filter.preprocess",   # (a) the insert was validated
            "filter.process",      # (b) workflow_action=start
            "filter.postprocess",  # (c) the response was postprocessed
        }
        # Engine state transitions arrive as event annotations.
        assert names >= {
            "event.workflow.started",
            "event.task.state",
            "event.instance.state",
        }
        # Messaging and agent tiers, stitched via message headers.
        assert names >= {
            "broker.deliver",
            "engine.apply_message",
            "agent.handle",
        }
        assert {span.trace_id for span in spans} == {root.trace_id}

    def test_http_requests_are_children_of_the_submission(self, submission):
        __, hub, root = submission
        requests = [
            span
            for span in hub.tracer.spans_for(root.trace_id)
            if span.name == "http.request"
        ]
        assert len(requests) == 2
        assert all(span.parent_id == root.span_id for span in requests)
        assert all(span.attributes["status"] == 200 for span in requests)

    def test_agent_work_carries_remote_parents(self, submission):
        __, hub, root = submission
        handled = [
            span
            for span in hub.tracer.spans_for(root.trace_id)
            if span.name == "agent.handle"
        ]
        assert handled
        assert all(span.remote_parent for span in handled)
        assert all(span.duration_ms is not None for span in handled)

    def test_agents_actually_progressed_the_workflow(self, submission):
        lab, __, ___ = submission
        completed = lab.engine.events.of_kind("task.state")
        assert any(
            event["state"] == "completed" for event in completed
        ), "no task completed — the traced run did no real work"

    def test_exporter_builds_one_tree_from_the_root(self, submission):
        __, hub, root = submission
        [tree] = TraceExporter(hub.tracer).tree(root.trace_id)
        assert tree["name"] == "experiment.submission"
        assert tree["children"], "root span has no children in the export"


class TestMetricsEndpoint:
    def test_exposition_has_latency_quantiles(self, submission):
        lab, __, ___ = submission
        response = lab.app.get("/workflow/metrics")
        assert response.ok
        assert response.content_type.startswith("text/plain")
        for quantile in ("0.5", "0.95", "0.99"):
            assert f'quantile="{quantile}"' in response.body
        assert 'http_request_latency_ms{path="/user",quantile="0.5"}' in (
            response.body
        )
        assert 'http_request_latency_ms_count{path="/user"}' in response.body

    def test_exposition_has_per_table_db_counters(self, submission):
        lab, __, ___ = submission
        body = lab.app.get("/workflow/metrics").body
        assert 'db_table_reads_total{table="Workflow"}' in body
        assert 'db_table_writes_total{table="Experiment"}' in body
        assert "db_reads_total" in body
        assert "db_writes_total" in body

    def test_exposition_has_engine_event_counts(self, submission):
        lab, hub, __ = submission
        body = lab.app.get("/workflow/metrics").body
        assert 'engine_events_total{kind="workflow.started"} 1' in body
        assert 'engine_events_total{kind="task.state"}' in body

    def test_registry_quantiles_are_positive(self, submission):
        __, hub, ___ = submission
        for quantile in (0.5, 0.95, 0.99):
            assert (
                hub.registry.family_quantile("http_request_latency_ms", quantile)
                > 0.0
            )

    def test_broker_and_agent_metrics_recorded(self, submission):
        __, hub, ___ = submission
        snapshot = hub.registry.snapshot()
        assert snapshot["broker_deliveries_total"]["series"][0]["value"] > 0
        turnarounds = snapshot["agent_turnaround_ms"]["series"]
        assert turnarounds
        assert all(series["summary"]["count"] > 0 for series in turnarounds)
