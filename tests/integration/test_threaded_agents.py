"""Agents on real threads: the deployment mode the paper describes.

"The location of the agent depends on the setup.  Robots are often
controlled via PCs that are directly connected with the robot."  Agents
therefore run concurrently with the workflow manager; this test puts
each robot on its own thread with *blocking* receives and verifies the
broker's thread-safety end to end: many workflows complete, nothing is
lost, nothing is double-applied.
"""

from __future__ import annotations

import threading

import pytest

from repro.agents import AgentManager, EmailTransport, LiquidHandlingRobotAgent
from repro.core import PatternBuilder, install_workflow_support
from repro.core.persistence import authorize_agent, register_agent, save_pattern
from repro.core.spec import AgentSpec
from repro.messaging import MessageBroker
from repro.weblims import build_expdb
from repro.weblims.schema_setup import (
    add_experiment_type,
    add_sample_type,
    declare_experiment_io,
)

WORKFLOWS = 8
ROBOTS = 3


@pytest.fixture
def threaded_system():
    app = build_expdb()
    broker = MessageBroker()
    manager = AgentManager(app.db, broker, email=EmailTransport())
    engine = install_workflow_support(app, dispatcher=manager)
    manager.attach_engine(engine)
    add_experiment_type(app.db, "Work", [])
    add_sample_type(app.db, "Out", [])
    declare_experiment_io(app.db, "Work", "Out", "output")
    robots = []
    for index in range(ROBOTS):
        # All robots share one queue: competing consumers.
        spec = AgentSpec(f"robot-{index}", "robot", queue="agent.pool")
        if index == 0:
            register_agent(
                app.db, AgentSpec("pool", "robot", queue="agent.pool")
            )
            authorize_agent(app.db, "pool", "Work")
        robots.append(
            LiquidHandlingRobotAgent(
                spec, broker, produces=[{"sample_type": "Out"}], seed=index
            )
        )
    pattern = (
        PatternBuilder("threaded").task("work", experiment_type="Work").build(db=app.db)
    )
    save_pattern(app.db, pattern)
    return app, engine, manager, robots


def test_threaded_robots_complete_all_workflows(threaded_system):
    app, engine, manager, robots = threaded_system
    stop = threading.Event()

    def agent_loop(agent):
        while not stop.is_set():
            agent.step(timeout=0.05)

    threads = [
        threading.Thread(target=agent_loop, args=(robot,), daemon=True)
        for robot in robots
    ]
    for thread in threads:
        thread.start()

    workflow_ids = []
    try:
        for __ in range(WORKFLOWS):
            workflow = engine.start_workflow("threaded")
            workflow_ids.append(workflow["workflow_id"])
        # The manager pumps on the main thread while robots work on
        # theirs; approvals unblock the authorization-gated tasks.
        deadline_loops = 400
        while deadline_loops:
            deadline_loops -= 1
            manager.pump()
            for request in engine.pending_authorizations():
                engine.respond_authorization(request["auth_id"], True)
            statuses = [
                app.db.get("Workflow", workflow_id)["status"]
                for workflow_id in workflow_ids
            ]
            if all(status == "completed" for status in statuses):
                break
        else:  # pragma: no cover - only on failure
            pytest.fail("workflows did not complete under threaded agents")
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=2)

    # Exactly one instance per workflow; no duplicates, nothing lost.
    assert app.db.count("Experiment") == WORKFLOWS
    assert app.db.count("Sample") == WORKFLOWS
    # The work was actually spread across the competing consumers.
    total_runs = sum(robot.runs for robot in robots)
    assert total_runs == WORKFLOWS
    assert engine.events.of_kind("workflow.finished")


def test_blocking_receive_wakes_threaded_consumer():
    """A consumer blocked in receive() is woken by a send from another
    thread (condition-variable correctness)."""
    broker = MessageBroker()
    broker.declare_queue("q")
    received = []

    def consume():
        message = broker.receive("q", timeout=5.0)
        if message is not None:
            received.append(message.body)
            broker.ack(message)

    thread = threading.Thread(target=consume)
    thread.start()
    broker.send("q", "wake-up")
    thread.join(timeout=5)
    assert not thread.is_alive()
    assert received == ["wake-up"]
    assert broker.in_flight_count() == 0
