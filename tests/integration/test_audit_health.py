"""Acceptance: durable provenance + health across a full lab lifecycle.

One protein workflow runs to completion, a task is backtracked and the
workflow re-completes, then the server crashes and recovers from its
WAL.  The recovered ``GET /workflow/audit`` timeline must reconstruct
every task/task-instance transition (including the restart) with
matching trace ids, and ``GET /workflow/health`` must report
per-component status with queue depths and last-poll ages.
"""

from __future__ import annotations

import json

import pytest

from repro.agents import AgentManager
from repro.core import install_workflow_support
from repro.messaging import MessageBroker
from repro.obs import install_observability, verify_timeline
from repro.weblims import build_expdb
from repro.workloads.protein import build_protein_lab


@pytest.fixture(scope="module")
def lifecycle(tmp_path_factory):
    """(pre-crash lab, recovered app, workflow_id, root span, events)."""
    tmp = tmp_path_factory.mktemp("audit-health")
    wal_path = tmp / "lims.wal"
    journal_path = tmp / "broker.journal"
    lab = build_protein_lab(
        colonies=3, wal_path=str(wal_path), journal_path=str(journal_path)
    )
    hub = lab.obs
    with hub.tracer.span("experiment.submission") as root:
        start = lab.app.post(
            "/user", workflow_action="start", pattern="protein_creation"
        )
        lab.run_messages()
    assert start.ok
    workflow_id = lab.app.db.select("Workflow", order_by="workflow_id")[-1][
        "workflow_id"
    ]
    assert lab.run_to_completion(workflow_id) == "completed"
    # Backtrack: re-run pcr and everything downstream, then re-complete.
    lab.engine.restart_task(workflow_id, "pcr", by="pi")
    assert lab.run_to_completion(workflow_id) == "completed"
    events = list(lab.engine.events.events)
    pre_crash = hub.audit.timeline(workflow_id)
    # ---- server crash: drop every in-memory object, keep the files ----
    lab.app.db.close()
    lab.broker.close()
    app2 = build_expdb(wal_path=str(wal_path), install_schema=False)
    broker2 = MessageBroker(journal_path=str(journal_path))
    manager2 = AgentManager(app2.db, broker2)
    engine2 = install_workflow_support(
        app2, dispatcher=manager2, install_datamodel=False
    )
    manager2.attach_engine(engine2)
    install_observability(
        expdb=app2, engine=engine2, broker=broker2, manager=manager2
    )
    return lab, app2, workflow_id, root, events, pre_crash


def audit_records(app, **params):
    response = app.get(
        "/workflow/audit", limit="1000", **{k: str(v) for k, v in params.items()}
    )
    assert response.ok
    assert response.content_type == "application/json"
    return json.loads(response.body)


class TestAuditTimeline:
    def test_timeline_matches_the_event_log_sequence(self, lifecycle):
        lab, __, workflow_id, ___, events, pre_crash = lifecycle
        bridged = [r for r in pre_crash if r["detail"].get("sequence") is not None
                   or r["sequence"] is not None]
        by_sequence = {
            r["sequence"]: r["kind"] for r in pre_crash if r["sequence"]
        }
        workflow_events = [
            e
            for e in events
            if e.payload.get("workflow_id") == workflow_id
            and e.kind in by_sequence.values()
        ]
        # Every engine event about this workflow has exactly its row.
        for event in workflow_events:
            assert by_sequence.get(event.sequence) == event.kind, (
                f"event #{event.sequence} {event.kind} missing from trail"
            )
        assert len(bridged) >= len(workflow_events)

    def test_recovered_timeline_is_identical_to_pre_crash(self, lifecycle):
        __, app2, workflow_id, ___, ____, pre_crash = lifecycle
        data = audit_records(app2, workflow_id=workflow_id)
        assert data["total"] == len(pre_crash)
        assert data["records"] == pre_crash

    def test_recovered_timeline_is_transition_legal(self, lifecycle):
        __, app2, workflow_id, ___, ____, _____ = lifecycle
        data = audit_records(app2, workflow_id=workflow_id)
        assert verify_timeline(data["records"]) == []

    def test_backtrack_is_reconstructable(self, lifecycle):
        __, app2, workflow_id, ___, ____, _____ = lifecycle
        records = audit_records(app2, workflow_id=workflow_id)["records"]
        [restart] = [r for r in records if r["kind"] == "task.restarted"]
        assert restart["task"] == "pcr"
        assert restart["actor"] == "pi"
        assert restart["detail"]["cascade"], "cascade list not recorded"
        # The restart transitions themselves are in the trail: each
        # restarted task went back to created via the restart event.
        reset = [
            r
            for r in records
            if r["kind"] == "task.state"
            and r["event"] == "restart"
            and r["state"] == "created"
        ]
        assert len(reset) >= 1 + len(restart["detail"]["cascade"]) - 1
        # And the task completed twice: once per run.
        pcr_completions = [
            r
            for r in records
            if r["kind"] == "task.state"
            and r["task"] == "pcr"
            and r["state"] == "completed"
        ]
        assert len(pcr_completions) == 2

    def test_rows_carry_the_submission_trace_id(self, lifecycle):
        __, app2, workflow_id, root, ____, _____ = lifecycle
        records = audit_records(app2, workflow_id=workflow_id)["records"]
        in_trace = [r for r in records if r["trace_id"] == root.trace_id]
        assert in_trace, "no audit rows cross-link to the submission trace"
        # The submission's own rows (started + first transitions) match.
        started = [r for r in records if r["kind"] == "workflow.started"]
        assert all(r["trace_id"] == root.trace_id for r in started)

    def test_pagination_and_filters_over_recovered_trail(self, lifecycle):
        __, app2, workflow_id, ___, ____, _____ = lifecycle
        full = audit_records(app2, workflow_id=workflow_id)
        page = json.loads(
            app2.get(
                "/workflow/audit",
                workflow_id=str(workflow_id),
                limit="5",
                offset="5",
            ).body
        )
        assert page["total"] == full["total"]
        assert page["records"] == full["records"][5:10]
        dispatches = audit_records(
            app2, workflow_id=workflow_id, kind="agent.dispatch"
        )
        assert dispatches["total"] > 0
        assert all(
            r["kind"] == "agent.dispatch" for r in dispatches["records"]
        )

    def test_bad_query_parameters_are_rejected(self, lifecycle):
        __, app2, ___, ____, _____, ______ = lifecycle
        assert app2.get("/workflow/audit", workflow_id="x").status == 400
        assert app2.get("/workflow/audit", limit="0").status == 400
        assert app2.get("/workflow/audit", since="yesterday").status == 400


class TestHealthEndpoint:
    def test_live_lab_reports_every_component(self, lifecycle):
        lab, __, ___, ____, _____, ______ = lifecycle
        response = lab.app.get("/workflow/health")
        assert response.status == 200
        report = json.loads(response.body)
        assert report["status"] == "ok"
        assert set(report["components"]) >= {
            "container",
            "database",
            "engine",
            "broker",
            "manager",
            "agents",
            "email",
        }

    def test_queue_depths_and_poll_ages_are_reported(self, lifecycle):
        lab, __, ___, ____, _____, ______ = lifecycle
        report = json.loads(lab.app.get("/workflow/health").body)
        broker = report["components"]["broker"]
        assert "workflow.manager" in broker["queues"]
        assert all(isinstance(d, int) for d in broker["queues"].values())
        agents = report["components"]["agents"]["agents"]
        assert agents, "no agents in the health report"
        for info in agents.values():
            assert info["last_poll_age_s"] is not None
            assert info["queue_depth"] == 0
        manager = report["components"]["manager"]
        assert manager["last_pump_age_s"] is not None
        assert manager["engine_queue_depth"] == 0

    def test_wal_and_journal_status_visible(self, lifecycle):
        lab, __, ___, ____, _____, ______ = lifecycle
        report = json.loads(lab.app.get("/workflow/health").body)
        wal = report["components"]["database"]["wal"]
        assert wal["enabled"] is True
        assert wal["size_bytes"] > 0
        journal = report["components"]["broker"]["journal"]
        assert journal["enabled"] is True
        assert journal["appended_records"] > 0

    def test_recovered_server_is_healthy(self, lifecycle):
        __, app2, ___, ____, _____, ______ = lifecycle
        response = app2.get("/workflow/health")
        assert response.status == 200
        report = json.loads(response.body)
        assert report["components"]["database"]["wal"]["enabled"] is True
        # The recovered broker still knows its queues from the journal.
        assert "workflow.manager" in report["components"]["broker"]["queues"]

    def test_liveness_probe_always_200(self, lifecycle):
        lab, __, ___, ____, _____, ______ = lifecycle
        response = lab.app.get("/workflow/health", probe="live")
        assert response.status == 200
        assert json.loads(response.body) == {"status": "ok", "probe": "live"}

    def test_component_filter(self, lifecycle):
        lab, __, ___, ____, _____, ______ = lifecycle
        response = lab.app.get("/workflow/health", component="broker")
        assert response.status == 200
        assert json.loads(response.body)["component"] == "broker"
        assert lab.app.get("/workflow/health", component="nope").status == 404


class TestMetricsExposure:
    def test_new_gauges_are_exposed(self, lifecycle):
        lab, __, ___, ____, _____, ______ = lifecycle
        text = lab.app.get("/workflow/metrics").body
        assert "broker_journal_backlog" in text
        assert "manager_engine_queue_depth" in text
        assert 'agent_queue_depth{agent="pcr-bot"}' in text
        assert "agent_last_poll_age_seconds" in text
        assert "agent_mailbox_depth" in text
        assert "engine_events_dropped_total 0" in text
        assert "log_records_dropped_total 0" in text
