"""The E1/E2 evaluation fixture: request mix shape assertions.

These are the *correctness* assertions behind the benchmark harness —
the benchmarks print the numbers, the tests pin the shape:

* every operation's modeled response time falls in the paper's
  400–2000 ms band;
* database access dominates every workflow-related operation;
* filter/servlet/bean CPU is negligible throughout;
* the shape claims are insensitive to the exact calibration constants.
"""

from __future__ import annotations

import pytest

from repro.workloads.costmodel import CostModel
from repro.workloads.requests import build_fixture


@pytest.fixture(scope="module")
def measured():
    fixture = build_fixture()
    return {name: fixture.measure(name) for name in fixture.OPERATION_MIX}


class TestE1ResponseTimeBand:
    def test_every_operation_within_paper_band(self, measured):
        for name, (response, cost) in measured.items():
            assert response.ok, name
            assert 390 <= cost.total_ms <= 2000, (name, cost.total_ms)

    def test_band_is_actually_spanned(self, measured):
        """The mix produces both cheap (~400ms) and expensive (~2000ms)
        requests, as the paper reports — not a flat distribution."""
        totals = [cost.total_ms for __, cost in measured.values()]
        assert min(totals) < 500
        assert max(totals) > 1200

    def test_workflow_requests_cost_more_than_reads(self, measured):
        __, read_cost = measured["read_experiments"]
        __, start_cost = measured["start_workflow_request"]
        assert start_cost.total_ms > 2 * read_cost.total_ms


class TestE2ComponentDominance:
    def test_db_dominates_every_workflow_operation(self, measured):
        for name in (
            "start_workflow_request",
            "complete_instance_request",
            "authorize_request",
        ):
            __, cost = measured[name]
            assert cost.db_ms > cost.web_cpu_ms * 10, name
            assert cost.db_ms > cost.messaging_ms, name

    def test_filter_servlet_bean_cpu_negligible(self, measured):
        """'little time was spent in the WorkflowFilter, WorkflowServlet
        or WorkflowBean'."""
        for name, (__, cost) in measured.items():
            assert cost.web_cpu_ms < 0.02 * cost.total_ms, name

    def test_messaging_overhead_present_but_secondary(self, measured):
        """'Sending messages to a persistent message queue also has some
        time overhead' — nonzero for dispatching operations, but never
        the dominant term."""
        __, start_cost = measured["start_workflow_request"]
        assert start_cost.messaging_ms > 0
        assert start_cost.messaging_ms < start_cost.db_ms


class TestE3InsertAmplification:
    def test_insert_triggers_several_reads(self, measured):
        """'a simple insert into an experiment related table can trigger
        several database reads in order to check whether this
        modification changes any task or workflow state'."""
        __, cost = measured["insert_standalone_experiment"]
        assert cost.db_reads >= 3
        assert cost.db_writes == 2  # Experiment + child row

    def test_non_workflow_read_is_single_access(self, measured):
        __, cost = measured["read_experiments"]
        assert cost.db_reads == 1
        assert cost.db_writes == 0


class TestCalibrationInsensitivity:
    def test_ordering_claims_hold_under_different_constants(self):
        """Halve/double the calibration constants: who-dominates-whom
        must not change (the paper's claims are structural)."""
        for scale in (0.5, 2.0):
            model = CostModel(
                db_read_ms=8.0 * scale,
                db_write_ms=12.0 * scale,
                persistent_send_ms=40.0 * scale,
            )
            fixture = build_fixture(model=model)
            __, cost = fixture.measure("start_workflow_request")
            assert cost.db_ms > cost.web_cpu_ms * 10
            assert cost.db_ms > cost.messaging_ms
