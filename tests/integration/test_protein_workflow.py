"""E5 / Fig. 1: the protein-creation workflow, end to end.

Full stack: web LIMS + workflow engine + persistent messaging + robot,
program and human agents — the complete system of the paper.
"""

from __future__ import annotations

import pytest

from repro.workloads.protein import COLONY_THRESHOLD, build_protein_lab


@pytest.fixture(scope="module")
def screening_run():
    """One completed run taking the PCR-screening branch (many colonies)."""
    lab = build_protein_lab(colonies=25)
    workflow = lab.engine.start_workflow("protein_creation")
    status = lab.run_to_completion(workflow["workflow_id"])
    return lab, workflow["workflow_id"], status


@pytest.fixture(scope="module")
def miniprep_run():
    """One completed run taking the miniprep branch (few colonies)."""
    lab = build_protein_lab(colonies=10)
    workflow = lab.engine.start_workflow("protein_creation")
    status = lab.run_to_completion(workflow["workflow_id"])
    return lab, workflow["workflow_id"], status


class TestScreeningBranch:
    def test_workflow_completes(self, screening_run):
        __, ___, status = screening_run
        assert status == "completed"

    def test_task_states_match_figure_one(self, screening_run):
        lab, workflow_id, __ = screening_run
        view = lab.engine.workflow_view(workflow_id)
        states = {name: task.state for name, task in view.tasks.items()}
        assert states == {
            "pcr": "completed",
            "digestion": "completed",
            "ligation": "completed",
            "transformation": "completed",
            "pcr_screening": "completed",
            "miniprep": "unreachable",  # branch not taken
            "protein_production": "completed",
        }

    def test_pcr_ran_two_default_instances(self, screening_run):
        lab, workflow_id, __ = screening_run
        view = lab.engine.workflow_view(workflow_id)
        assert len(view.tasks["pcr"].instances) == 2
        assert view.tasks["pcr"].completed_instances == 2

    def test_nested_subworkflow_completed(self, screening_run):
        lab, workflow_id, __ = screening_run
        view = lab.engine.workflow_view(workflow_id)
        child_id = view.tasks["protein_production"].child_workflow_id
        child = lab.engine.workflow_view(child_id)
        assert child.status == "completed"
        assert child.parent_workflow_id == workflow_id
        assert {t.state for t in child.tasks.values()} == {"completed"}

    def test_purified_protein_produced(self, screening_run):
        lab, __, ___ = screening_run
        purified = lab.app.db.select("PurifiedProtein")
        assert len(purified) == 1
        assert purified[0]["purity"] > 0.9

    def test_data_lineage_recorded_in_experimentio(self, screening_run):
        """Every completed instance has output links; downstream
        instances record which inputs they consumed."""
        lab, workflow_id, __ = screening_run
        view = lab.engine.workflow_view(workflow_id)
        ligation = view.tasks["ligation"].instances[0]
        links = lab.app.db.select("ExperimentIO")
        ligation_links = [
            l for l in links if l["experiment_id"] == ligation.experiment_id
        ]
        directions = set()
        for link in ligation_links:
            etio = lab.app.db.get("ExperimentTypeIO", link["etio_id"])
            directions.add(etio["direction"])
        assert directions == {"input", "output"}

    def test_colony_count_drove_the_branch(self, screening_run):
        lab, workflow_id, __ = screening_run
        view = lab.engine.workflow_view(workflow_id)
        transformation = view.tasks["transformation"].instances[0]
        row = lab.app.db.get(
            "Transformation", transformation.experiment_id
        )
        assert row["colonies"] >= COLONY_THRESHOLD

    def test_technician_emailed_for_authorizations(self, screening_run):
        lab, __, ___ = screening_run
        inbox = lab.email.inbox("tech@lab.example")
        assert any("authorization" in mail.subject for mail in inbox)

    def test_all_experiments_carry_workflow_pointers(self, screening_run):
        lab, workflow_id, __ = screening_run
        for row in lab.app.db.select("Experiment"):
            assert row["workflow_id"] is not None
            assert row["wftask_id"] is not None
            assert row["wf_state"] in ("completed", "aborted")


class TestMiniprepBranch:
    def test_workflow_completes_via_miniprep(self, miniprep_run):
        lab, workflow_id, status = miniprep_run
        assert status == "completed"
        view = lab.engine.workflow_view(workflow_id)
        assert view.tasks["miniprep"].state == "completed"
        assert view.tasks["pcr_screening"].state == "unreachable"

    def test_plasmid_came_from_miniprep(self, miniprep_run):
        lab, workflow_id, __ = miniprep_run
        view = lab.engine.workflow_view(workflow_id)
        miniprep = view.tasks["miniprep"].instances[0]
        plasmids = lab.app.db.select("PlasmidDna")
        assert plasmids  # with concentration values from the robot
        links = [
            l
            for l in lab.app.db.select("ExperimentIO")
            if l["experiment_id"] == miniprep.experiment_id
        ]
        produced = {
            l["sample_id"]
            for l in links
            if lab.app.db.get("ExperimentTypeIO", l["etio_id"])["direction"]
            == "output"
        }
        assert produced


class TestFailureInjection:
    def test_robot_failures_are_survivable_with_spawned_retries(self):
        """With failure injection, failed instances abort and the lab
        spawns retries until the workflow still completes (§4.2)."""
        lab = build_protein_lab(colonies=25, failure_rate=0.4, seed=11)
        workflow = lab.engine.start_workflow("protein_creation")
        workflow_id = workflow["workflow_id"]
        for __ in range(60):
            lab.run_messages()
            status = lab.app.db.get("Workflow", workflow_id)["status"]
            if status == "completed":
                break
            # Backtrack every aborted task (restart reopens an aborted
            # workflow), then approve whatever asks for authorization.
            view = lab.engine.workflow_view(workflow_id)
            for task in view.tasks.values():
                if task.state == "aborted":
                    lab.engine.restart_task(workflow_id, task.name)
            lab.approve_all_authorizations()
        final = lab.app.db.get("Workflow", workflow_id)["status"]
        assert final == "completed"
        # Some instance actually failed along the way (the injection bit).
        aborted = [
            row
            for row in lab.app.db.select("Experiment")
            if row["wf_state"] == "aborted"
        ]
        assert aborted

    def test_deterministic_reruns(self):
        """Identical seeds yield identical outcomes across full runs."""

        def run(seed):
            lab = build_protein_lab(colonies=None, seed=seed)
            workflow = lab.engine.start_workflow("protein_creation")
            lab.run_to_completion(workflow["workflow_id"])
            view = lab.engine.workflow_view(workflow["workflow_id"])
            return {name: task.state for name, task in view.tasks.items()}

        assert run(5) == run(5)
