"""Whole-system durability: LIMS WAL + broker journal across a restart.

Simulates the deployment story the paper's persistence choices enable:
the server machine dies mid-workflow; on restart, the database recovers
from its WAL, the broker recovers unconsumed messages from its journal,
and the workflow continues exactly where it stopped.
"""

from __future__ import annotations

import pytest

from repro.agents import (
    AgentManager,
    EmailTransport,
    LiquidHandlingRobotAgent,
    run_until_quiescent,
)
from repro.core import PatternBuilder, install_workflow_support
from repro.core.persistence import authorize_agent, register_agent, save_pattern
from repro.core.spec import AgentSpec
from repro.messaging import MessageBroker
from repro.minidb.schema import Column
from repro.minidb.types import ColumnType
from repro.obs import install_observability, verify_timeline
from repro.weblims import build_expdb
from repro.weblims.schema_setup import (
    add_experiment_type,
    add_sample_type,
    declare_experiment_io,
)


def build_system(wal_path, journal_path, first_boot: bool):
    app = build_expdb(wal_path=wal_path, install_schema=first_boot)
    broker = MessageBroker(journal_path=journal_path)
    email = EmailTransport()
    manager = AgentManager(app.db, broker, email=email)
    engine = install_workflow_support(
        app, dispatcher=manager, install_datamodel=first_boot
    )
    manager.attach_engine(engine)
    if first_boot:
        add_experiment_type(app.db, "A", [Column("reading", ColumnType.REAL)])
        add_experiment_type(app.db, "B", [])
        add_sample_type(app.db, "SA", [])
        declare_experiment_io(app.db, "A", "SA", "output")
        declare_experiment_io(app.db, "B", "SA", "input")
        register_agent(app.db, AgentSpec("bot-a", "robot"))
        authorize_agent(app.db, "bot-a", "A")
        register_agent(app.db, AgentSpec("bot-b", "robot"))
        authorize_agent(app.db, "bot-b", "B")
        pattern = (
            PatternBuilder("durable")
            .task("a", experiment_type="A")
            .task("b", experiment_type="B")
            .flow("a", "b")
            .data("a", "b", sample_type="SA")
            .build(db=app.db)
        )
        save_pattern(app.db, pattern)
    robots = [
        LiquidHandlingRobotAgent(
            AgentSpec("bot-a-client", "robot", queue="agent.bot-a"),
            broker,
            produces=[{"sample_type": "SA"}],
        ),
        LiquidHandlingRobotAgent(
            AgentSpec("bot-b-client", "robot", queue="agent.bot-b"),
            broker,
            produces=[],
        ),
    ]
    install_observability(
        expdb=app,
        engine=engine,
        broker=broker,
        manager=manager,
        agents=robots,
        email=email,
    )
    return app, broker, manager, engine, robots


@pytest.fixture
def paths(tmp_path):
    return tmp_path / "lims.wal", tmp_path / "broker.journal"


class TestCrashRecovery:
    def test_workflow_survives_server_restart(self, paths):
        wal_path, journal_path = paths
        app, broker, manager, engine, __ = build_system(
            wal_path, journal_path, first_boot=True
        )
        workflow = engine.start_workflow("durable")
        workflow_id = workflow["workflow_id"]
        # The dispatch to bot-a is journalled but nobody consumed it yet.
        assert broker.queue_depth("agent.bot-a") == 1
        app.db.close()
        broker.close()
        # ---- server crash; full restart over the same files ----
        app2, broker2, manager2, engine2, robots2 = build_system(
            wal_path, journal_path, first_boot=False
        )
        # State recovered: workflow running, task active, instance parked.
        view = engine2.workflow_view(workflow_id)
        assert view.status == "running"
        assert view.tasks["a"].state == "active"
        assert broker2.queue_depth("agent.bot-a") == 1
        # The system simply continues.
        run_until_quiescent(manager2, robots2)
        for request in engine2.pending_authorizations():
            engine2.respond_authorization(request["auth_id"], True)
        run_until_quiescent(manager2, robots2)
        assert engine2.workflow_view(workflow_id).status == "completed"

    def test_agent_results_survive_manager_crash(self, paths):
        """A result sent while the manager was down is applied after
        recovery — 'delivery is guaranteed even if communication
        partners are not connected all the time'."""
        wal_path, journal_path = paths
        app, broker, manager, engine, robots = build_system(
            wal_path, journal_path, first_boot=True
        )
        workflow = engine.start_workflow("durable")
        workflow_id = workflow["workflow_id"]
        # The robot works while the manager never pumps...
        robots[0].run_until_idle()
        from repro.core.dispatch import ENGINE_QUEUE

        assert broker.queue_depth(ENGINE_QUEUE) >= 1
        app.db.close()
        broker.close()
        # ---- crash & restart ----
        app2, broker2, manager2, engine2, robots2 = build_system(
            wal_path, journal_path, first_boot=False
        )
        manager2.pump()
        view = engine2.workflow_view(workflow_id)
        assert view.tasks["a"].state == "completed"

    def test_nothing_duplicated_after_recovery(self, paths):
        wal_path, journal_path = paths
        app, broker, manager, engine, robots = build_system(
            wal_path, journal_path, first_boot=True
        )
        workflow = engine.start_workflow("durable")
        workflow_id = workflow["workflow_id"]
        run_until_quiescent(manager, robots)
        experiments_before = app.db.count("Experiment")
        app.db.close()
        broker.close()
        app2, broker2, manager2, engine2, robots2 = build_system(
            wal_path, journal_path, first_boot=False
        )
        run_until_quiescent(manager2, robots2)
        # Already-acked work is not re-delivered or re-applied.
        assert app2.db.count("Experiment") == experiments_before
        view = engine2.workflow_view(workflow_id)
        assert len(view.tasks["a"].instances) == 1


class TestAuditRecovery:
    """The durable provenance trail across the same crash scenarios."""

    def test_audit_trail_survives_crash_with_no_lost_or_duplicated_rows(
        self, paths
    ):
        wal_path, journal_path = paths
        app, broker, manager, engine, robots = build_system(
            wal_path, journal_path, first_boot=True
        )
        hub = app.container.context["obs"]
        workflow = engine.start_workflow("durable")
        workflow_id = workflow["workflow_id"]
        run_until_quiescent(manager, robots)
        before = hub.audit.timeline(workflow_id)
        assert before, "the run produced no audit rows"
        app.db.close()
        broker.close()
        # ---- server crash; full restart over the same files ----
        app2, broker2, manager2, engine2, robots2 = build_system(
            wal_path, journal_path, first_boot=False
        )
        hub2 = app2.container.context["obs"]
        recovered = hub2.audit.timeline(workflow_id)
        # Byte-for-byte the same rows: nothing lost, nothing duplicated.
        assert [r["audit_id"] for r in recovered] == [
            r["audit_id"] for r in before
        ]
        assert recovered == before
        assert verify_timeline(recovered) == []

    def test_recovered_trail_extends_without_id_collisions(self, paths):
        wal_path, journal_path = paths
        app, broker, manager, engine, robots = build_system(
            wal_path, journal_path, first_boot=True
        )
        hub = app.container.context["obs"]
        workflow = engine.start_workflow("durable")
        workflow_id = workflow["workflow_id"]
        run_until_quiescent(manager, robots)
        rows_before = hub.audit.count()
        app.db.close()
        broker.close()
        app2, broker2, manager2, engine2, robots2 = build_system(
            wal_path, journal_path, first_boot=False
        )
        hub2 = app2.container.context["obs"]
        # Finish the workflow after recovery; new rows append cleanly.
        run_until_quiescent(manager2, robots2)
        for request in engine2.pending_authorizations():
            engine2.respond_authorization(request["auth_id"], True)
        run_until_quiescent(manager2, robots2)
        assert engine2.workflow_view(workflow_id).status == "completed"
        timeline = hub2.audit.timeline(workflow_id)
        assert hub2.audit.count() > rows_before
        ids = [r["audit_id"] for r in timeline]
        assert len(ids) == len(set(ids)), "audit ids collided after recovery"
        # The spliced pre-crash + post-crash trail is transition-legal.
        assert verify_timeline(timeline) == []
        # And the trail actually recorded the task-level completions.
        completed = [
            r
            for r in timeline
            if r["kind"] == "task.state" and r["state"] == "completed"
        ]
        assert len(completed) == 2
