"""The full production stack: access control + workflow + API + agents.

Everything the repository provides, composed in one deployment: a
durable Exp-DB, role-based access control, Exp-WF with a real agent
fleet over a persistent broker, the JSON API, and the aspect weave for
a batch client — all attached through public extension points.
"""

from __future__ import annotations

import json

import pytest

from repro.agents import (
    AgentManager,
    EmailTransport,
    LiquidHandlingRobotAgent,
    run_until_quiescent,
)
from repro.core import PatternBuilder, install_workflow_support
from repro.core.aspects import AdviceVeto, install_aspect_workflow_support
from repro.core.persistence import authorize_agent, register_agent, save_pattern
from repro.core.spec import AgentSpec
from repro.messaging import MessageBroker
from repro.minidb.schema import Column
from repro.minidb.types import ColumnType
from repro.weblims import build_expdb
from repro.weblims.access import AccessPolicy, install_access_control
from repro.weblims.api import install_api
from repro.weblims.http import HttpRequest
from repro.weblims.schema_setup import (
    add_experiment_type,
    add_sample_type,
    declare_experiment_io,
)


@pytest.fixture
def stack(tmp_path):
    app = build_expdb(wal_path=tmp_path / "lims.wal")

    policy = AccessPolicy()
    policy.assign("ada", "scientist")
    policy.grant("scientist", "*", "insert", "update", "delete", "workflow")
    access = install_access_control(app, policy)

    broker = MessageBroker(tmp_path / "broker.journal")
    manager = AgentManager(app.db, broker, email=EmailTransport())
    engine = install_workflow_support(app, dispatcher=manager)
    manager.attach_engine(engine)
    install_api(app)

    add_experiment_type(app.db, "Prep", [Column("reading", ColumnType.REAL)])
    add_sample_type(app.db, "Extract", [])
    declare_experiment_io(app.db, "Prep", "Extract", "output")
    register_agent(app.db, AgentSpec("prep-bot", "robot"))
    authorize_agent(app.db, "prep-bot", "Prep")
    robot = LiquidHandlingRobotAgent(
        AgentSpec("prep-bot-client", "robot", queue="agent.prep-bot"),
        broker,
        produces=[{"sample_type": "Extract"}],
    )
    pattern = (
        PatternBuilder("full").task("prep", experiment_type="Prep").build(db=app.db)
    )
    save_pattern(app.db, pattern)
    weaver = install_aspect_workflow_support(app.bean, engine)
    return app, engine, manager, robot, access, weaver


def as_user(app, user, path, **params):
    request = HttpRequest("POST", path, params=params)
    request.headers["x-user"] = user
    return app.handle(request)


class TestComposedStack:
    def test_full_workflow_through_every_layer(self, stack):
        app, engine, manager, robot, access, __ = stack
        # Anonymous writes die at layer 1 (access control).
        anonymous = app.post(
            "/api", action="insert", table="Prep",
            values=json.dumps({"reading": 0.1}),
        )
        assert anonymous.status == 401
        assert access.denied_count == 1

        # ada starts a workflow through the API path (mode b).
        started = as_user(
            app, "ada", "/api", workflow_action="start", pattern="full"
        )
        assert started.status == 200
        workflow_id = started.attributes["workflow_id"]
        authorized = as_user(
            app,
            "ada",
            "/workflow",
            workflow_action="authorize",
            auth_id=str(engine.pending_authorizations()[0]["auth_id"]),
            approve="true",
            by="ada",
        )
        assert authorized.status == 200
        run_until_quiescent(manager, [robot])
        assert engine.workflow_view(workflow_id).status == "completed"

        # Layer 2 (workflow filter) still guards authorized users.
        denied = as_user(
            app,
            "ada",
            "/api",
            action="update",
            table="Experiment",
            criteria=json.dumps({"type_name": "Prep"}),
            values=json.dumps({"wf_state": "aborted"}),
        )
        assert denied.status == 403

        # Layer 3 (aspects) guards the non-web path with the same rule.
        with pytest.raises(AdviceVeto):
            app.bean.update(
                "Experiment", {"type_name": "Prep"}, {"wf_state": "aborted"}
            )

    def test_every_layer_detaches_cleanly(self, stack):
        app, engine, __, ___, ____, weaver = stack
        weaver.unweave_all()
        # Direct bean writes are unguarded again...
        affected = app.bean.insert("Prep", {"reading": 0.2})
        assert affected["experiment_id"]
        # ...while the web layers remain in force.
        response = app.post(
            "/api", action="insert", table="Prep",
            values=json.dumps({"reading": 0.3}),
        )
        assert response.status == 401  # still behind access control
