"""Attaching Exp-WF to a *different* LIMS — the paper's generality claim.

§1/§7: "We are confident that other web-based LIMS applications could be
augmented with Exp-WF in a similar fashion" / "workflow management
capabilities can be integrated in a similar way into other data
management systems sharing a similar, web-based multi-tier
architecture."

This test builds exactly that scenario: ``RestLims`` is a REST-flavoured
LIMS with its own URL scheme (``/lims/<table>/<verb>``) and its own
parameter conventions — nothing about it matches Exp-DB's servlet.  The
unmodified WorkflowFilter is attached behind a ten-line *adapter filter*
that translates the REST shape into the action/table convention the
workflow module observes.  No component of either system changes; the
whole integration is two ``add_filter`` lines in the deployment
descriptor.
"""

from __future__ import annotations

import json

import pytest

from repro.core import PatternBuilder, install_workflow_support
from repro.core.filter import WorkflowFilter, WorkflowServlet
from repro.core.persistence import save_pattern
from repro.minidb.schema import Column
from repro.minidb.types import ColumnType
from repro.weblims import build_expdb
from repro.weblims.http import HttpResponse
from repro.weblims.servlet import Filter, Servlet
from repro.weblims.schema_setup import add_experiment_type


class RestLims(Servlet):
    """A REST-flavoured LIMS: /lims/<table>/<verb> with JSON bodies."""

    name = "RestLims"

    def service(self, request, container):
        bean = container.context["table_bean"]
        parts = [part for part in request.path.split("/") if part]
        if len(parts) != 3:
            return HttpResponse.error(404, "expected /lims/<table>/<verb>")
        __, table, verb = parts
        body = json.loads(request.param("body", "{}"))
        if verb == "query":
            rows = bean.read(table, body or None)
            response = HttpResponse.html(json.dumps(len(rows)))
            response.attributes["rows"] = rows
            return response
        if verb == "create":
            row = bean.insert(table, body)
            response = HttpResponse.html("created")
            response.attributes["row"] = row
            return response
        if verb == "modify":
            affected = bean.update(table, body["where"], body["set"])
            response = HttpResponse.html("modified")
            response.attributes["affected"] = affected
            return response
        if verb == "destroy":
            affected = bean.delete(table, body)
            response = HttpResponse.html("destroyed")
            response.attributes["affected"] = affected
            return response
        return HttpResponse.error(404, f"unknown verb {verb!r}")


class RestAdapterFilter(Filter):
    """Translates the REST shape into the convention Exp-WF observes.

    This is the entire per-LIMS integration cost: map URL/verb onto the
    ``action``/``table``/``values``/``criteria`` request parameters.
    """

    name = "RestAdapterFilter"

    VERB_TO_ACTION = {
        "query": "read",
        "create": "insert",
        "modify": "update",
        "destroy": "delete",
    }

    def do_filter(self, request, chain):
        parts = [part for part in request.path.split("/") if part]
        if len(parts) == 3:
            __, table, verb = parts
            action = self.VERB_TO_ACTION.get(verb)
            if action is not None:
                request.params.setdefault("action", action)
                request.params.setdefault("table", table)
                body = request.param("body")
                if body and action == "insert":
                    request.params.setdefault("values", body)
                elif body and action == "delete":
                    request.params.setdefault("criteria", body)
                elif body and action == "update":
                    decoded = json.loads(body)
                    request.params.setdefault(
                        "values", json.dumps(decoded.get("set", {}))
                    )
                    request.params.setdefault(
                        "criteria", json.dumps(decoded.get("where", {}))
                    )
        return chain.proceed(request)


@pytest.fixture
def rest_lims():
    """A RestLims instance with Exp-WF attached via descriptor only."""
    app = build_expdb()  # supplies db/bean/templates; its servlet is unused
    engine = install_workflow_support(app)  # registers on /user (unused here)
    add_experiment_type(app.db, "Run", [Column("score", ColumnType.REAL)])
    pattern = (
        PatternBuilder("restflow").task("run", experiment_type="Run").build(db=app.db)
    )
    save_pattern(app.db, pattern)

    # The integration: the REST servlet, the adapter, and the SAME
    # WorkflowFilter instance re-registered onto the REST URL space.
    workflow_filter: WorkflowFilter = app.container.context["workflow_filter"]
    app.container.descriptor.add_servlet(RestLims(), "/lims/*")
    app.container.descriptor.add_filter(RestAdapterFilter(), "/lims/*")
    app.container.descriptor.add_filter(workflow_filter, "/lims/*")
    return app, engine, workflow_filter


def rest(app, table, verb, body=None):
    return app.post(
        f"/lims/{table}/{verb}",
        body=json.dumps(body or {}),
    )


class TestRestLimsStandalone:
    def test_crud_through_the_rest_shape(self, rest_lims):
        app, __, ___ = rest_lims
        created = rest(app, "Run", "create", {"score": 0.5})
        assert created.status == 200
        assert created.attributes["row"]["type_name"] == "Run"
        queried = rest(app, "Run", "query", {"score": 0.5})
        assert len(queried.attributes["rows"]) == 1
        modified = rest(
            app, "Run", "modify", {"where": {"score": 0.5}, "set": {"score": 0.9}}
        )
        assert modified.attributes["affected"] == 1
        destroyed = rest(app, "Run", "destroy", {"score": 0.9})
        assert destroyed.attributes["affected"] == 1


class TestWorkflowInterceptionOnRestLims:
    def test_reads_pass_through(self, rest_lims):
        app, __, workflow_filter = rest_lims
        before = workflow_filter.stats.passed_through
        rest(app, "Run", "query")
        assert workflow_filter.stats.passed_through == before + 1

    def test_engine_columns_protected_on_the_foreign_lims(self, rest_lims):
        app, engine, __ = rest_lims
        engine.start_workflow("restflow")
        response = rest(
            app,
            "Experiment",
            "modify",
            {"where": {"type_name": "Run"}, "set": {"wf_state": "completed"}},
        )
        assert response.status == 403

    def test_workflow_experiment_delete_denied(self, rest_lims):
        app, engine, __ = rest_lims
        workflow = engine.start_workflow("restflow")
        for request in engine.pending_authorizations():
            engine.respond_authorization(request["auth_id"], True)
        experiment_id = engine.workflow_view(workflow["workflow_id"]).tasks[
            "run"
        ].instances[0].experiment_id
        response = rest(
            app, "Experiment", "destroy", {"experiment_id": experiment_id}
        )
        assert response.status == 403
        assert app.db.get("Experiment", experiment_id) is not None

    def test_postprocessing_recheck_happens_for_rest_writes(self, rest_lims):
        app, engine, __ = rest_lims
        engine.start_workflow("restflow")
        checks_before = engine.check_count
        response = rest(app, "Run", "create", {"score": 0.3})
        assert response.status == 200
        assert engine.check_count > checks_before

    def test_workflow_actions_reachable_through_rest_urls(self, rest_lims):
        """Mode (b) works too: a workflow_action parameter on any
        filtered URL is processed whole by the WorkflowServlet."""
        app, engine, __ = rest_lims
        response = app.post(
            "/lims/anything/query",
            workflow_action="start",
            pattern="restflow",
            body="{}",
        )
        assert response.status == 200
        assert engine.list_workflows()
