"""Concurrent access to one WorkflowBean from many threads.

The original WorkflowBean is a servlet-container bean hit by concurrent
request threads; ours serialises its public methods under a re-entrant
lock.  This stress test hammers one engine from several threads —
starting workflows, completing instances, answering authorizations —
and asserts the end state is exactly what the same operations would
produce sequentially."""

from __future__ import annotations

import threading

import pytest

from repro.core import PatternBuilder, WorkflowBean
from repro.core.datamodel import install_workflow_datamodel
from repro.core.persistence import save_pattern
from repro.weblims import build_expdb
from repro.weblims.schema_setup import (
    add_experiment_type,
    add_sample_type,
    declare_experiment_io,
)

THREADS = 4
WORKFLOWS_PER_THREAD = 5


@pytest.fixture
def engine():
    app = build_expdb()
    install_workflow_datamodel(app.db)
    add_experiment_type(app.db, "Step", [])
    add_sample_type(app.db, "Out", [])
    declare_experiment_io(app.db, "Step", "Out", "output")
    pattern = (
        PatternBuilder("concurrent")
        .task("one", experiment_type="Step")
        .task("two", experiment_type="Step")
        .flow("one", "two")
        .build(db=app.db)
    )
    save_pattern(app.db, pattern)
    return WorkflowBean(app.db)


def drive_one_workflow(engine: WorkflowBean, failures: list) -> None:
    try:
        workflow = engine.start_workflow("concurrent")
        workflow_id = workflow["workflow_id"]
        for __ in range(50):  # run the workflow to completion
            view = engine.workflow_view(workflow_id)
            if view.status != "running":
                break
            acted = False
            for request in engine.pending_authorizations(workflow_id):
                engine.respond_authorization(request["auth_id"], True, "t")
                acted = True
            for task in view.tasks.values():
                for instance in task.instances:
                    if not instance.decided:
                        try:
                            engine.complete_instance(
                                instance.experiment_id,
                                success=True,
                                outputs=[{"sample_type": "Out"}],
                            )
                            acted = True
                        except Exception:
                            pass  # raced with a stale snapshot; retry
            if not acted:
                continue
        final = engine.workflow_view(workflow_id)
        if final.status != "completed":
            failures.append(f"workflow {workflow_id}: {final.status}")
    except Exception as error:  # pragma: no cover - failure reporting
        failures.append(repr(error))


def test_concurrent_workflow_execution(engine):
    failures: list = []

    def worker():
        for __ in range(WORKFLOWS_PER_THREAD):
            drive_one_workflow(engine, failures)

    threads = [threading.Thread(target=worker) for __ in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not any(thread.is_alive() for thread in threads)
    assert failures == []

    total = THREADS * WORKFLOWS_PER_THREAD
    workflows = engine.list_workflows()
    assert len(workflows) == total
    assert all(workflow["status"] == "completed" for workflow in workflows)
    # Exactly two instances (one per task) per workflow — no phantom or
    # duplicated instances under concurrency.
    assert engine.db.count("Experiment") == 2 * total
    # State machine integrity held throughout: every recorded task
    # transition was legal (the machines raise otherwise), and no
    # instance ended in a non-terminal state.
    for row in engine.db.select("Experiment"):
        assert row["wf_state"] == "completed"
