"""The two analysis front doors: the CLI and ``GET /workflow/lint``.

The acceptance bar is parity — the servlet must return the same
diagnostics for a pattern that ``check_registry`` (and therefore the
CLI) produces.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis.__main__ import main


class TestCliWfcheck:
    def test_protein_builtin_is_clean(self, capsys):
        assert main(["wfcheck", "protein"]) == 0
        out = capsys.readouterr().out
        assert "protein_creation" in out
        assert "protein_production" in out

    def test_synthetic_builtin_is_clean(self, capsys):
        assert main(["wfcheck", "synthetic"]) == 0
        out = capsys.readouterr().out
        assert "synthetic-chain-10" in out

    def test_json_output_is_parseable(self, capsys):
        assert main(["wfcheck", "protein", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"protein_creation", "protein_production"}
        for entry in payload.values():
            assert entry["diagnostics"] == [
                d for d in entry["diagnostics"] if d["severity"] != "error"
            ]
            assert "stats" in entry

    def test_module_scan_finds_patterns(self, capsys):
        assert main(["wfcheck", "repro.workloads.generator"]) == 0
        out = capsys.readouterr().out
        assert "synthetic-branchy-3" in out

    def test_unknown_target_exits_2(self, capsys):
        assert main(["wfcheck", "no.such.module"]) == 2


class TestCliCodelint:
    def test_clean_file_exits_0(self, tmp_path, capsys):
        clean = tmp_path / "ok.py"
        clean.write_text("def f(x):\n    return x\n")
        assert main(["codelint", str(clean)]) == 0

    def test_findings_exit_1(self, tmp_path, capsys):
        dirty = tmp_path / "bad.py"
        dirty.write_text(
            textwrap.dedent(
                """
                try:
                    work()
                except:
                    pass
                """
            )
        )
        assert main(["codelint", str(dirty)]) == 1
        assert "CL001" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        dirty = tmp_path / "bad.py"
        dirty.write_text("def f(items=[]):\n    return items\n")
        assert main(["codelint", str(dirty), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["diagnostics"][0]["code"] == "CL002"

    def test_repo_src_tree_exits_0(self, capsys):
        assert main(["codelint", "src"]) == 0


class TestCliConlint:
    DIRTY = """
        import threading
        import time

        class Poller:
            def __init__(self):
                self._lock = threading.Lock()

            def wait_a_bit(self):
                with self._lock:
                    time.sleep(0.1)
    """

    def write(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text(textwrap.dedent(self.DIRTY))
        return str(target)

    def test_findings_exit_1(self, tmp_path, capsys):
        assert main(["conlint", self.write(tmp_path)]) == 1
        assert "CC003" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        assert main(["conlint", self.write(tmp_path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["diagnostics"][0]["code"] == "CC003"
        assert payload["stats"]["locks"] == 1

    def test_repo_src_tree_exits_0(self, capsys):
        assert main(["conlint", "src/repro"]) == 0
        assert "no findings" in capsys.readouterr().out


class TestCodeFilters:
    """--select/--ignore: ruff-style prefixes, ignore wins, all three
    subcommands honour them."""

    def test_ignore_gates_a_code_out(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text(
            textwrap.dedent(TestCliConlint.DIRTY)
        )
        assert main(["conlint", str(target), "--ignore", "CC003"]) == 0

    def test_select_keeps_only_matching_codes(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(
            "def f(items=[]):\n"
            "    return items\n"
            "def g():\n"
            "    return 1\n"
            "    print('never')\n"
        )
        assert main(
            ["codelint", str(target), "--select", "CL005", "--json"]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert [d["code"] for d in payload["diagnostics"]] == ["CL005"]
        assert payload["stats"]["filtered_out"] == 1

    def test_ignore_wins_over_select(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("def f(items=[]):\n    return items\n")
        assert main(
            [
                "codelint", str(target),
                "--select", "CL", "--ignore", "CL002",
            ]
        ) == 0

    def test_comma_separated_and_repeated_values(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(
            "def f(items=[]):\n"
            "    return items\n"
            "def g():\n"
            "    return 1\n"
            "    print('never')\n"
        )
        assert main(
            ["codelint", str(target), "--ignore", "CL002,CL005"]
        ) == 0
        assert main(
            [
                "codelint", str(target),
                "--ignore", "CL002", "--ignore", "CL005",
            ]
        ) == 0

    def test_wfcheck_honours_select(self, capsys):
        assert main(["wfcheck", "protein", "--select", "CC", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        for entry in payload.values():
            assert entry["diagnostics"] == []


class TestLintServlet:
    @pytest.fixture(scope="class")
    def lab(self):
        from repro.workloads.protein import build_protein_lab

        return build_protein_lab()

    def get(self, lab, **params):
        from repro.weblims.http import HttpRequest

        return lab.app.container.handle(
            HttpRequest("GET", "/workflow/lint", params=dict(params))
        )

    def test_endpoint_registered_and_clean(self, lab):
        response = self.get(lab)
        assert response.status == 200
        body = json.loads(response.body)
        assert body["ok"] is True
        assert body["errors"] == 0
        assert set(body["patterns"]) == {
            "protein_creation",
            "protein_production",
        }

    def test_servlet_matches_cli_diagnostics(self, lab):
        from repro.analysis import check_registry
        from repro.core.persistence import pattern_registry

        body = json.loads(self.get(lab).body)
        reports = check_registry(
            pattern_registry(lab.app.db), db=lab.app.db
        )
        for name, report in reports.items():
            assert body["patterns"][name]["diagnostics"] == report.to_dicts()
            assert body["patterns"][name]["stats"] == report.stats

    def test_pattern_filter(self, lab):
        response = self.get(lab, pattern="protein_creation")
        # Sub-workflow references must resolve against the *full*
        # registry even when the report is narrowed to one pattern.
        assert response.status == 200
        body = json.loads(response.body)
        assert list(body["patterns"]) == ["protein_creation"]
        assert body["ok"] is True

    def test_unknown_pattern_404(self, lab):
        assert self.get(lab, pattern="nope").status == 404

    def test_severity_floor(self, lab):
        response = self.get(lab, severity="error")
        body = json.loads(response.body)
        for entry in body["patterns"].values():
            assert entry["diagnostics"] == []

    def test_unknown_severity_400(self, lab):
        assert self.get(lab, severity="loud").status == 400

    def test_select_and_ignore_mirror_the_cli(self, lab):
        # select=CC drops every WF diagnostic from every pattern.
        body = json.loads(self.get(lab, select="CC").body)
        for entry in body["patterns"].values():
            assert entry["diagnostics"] == []
        # ignore is accepted and keeps the response well-formed.
        assert self.get(lab, ignore="WF,CL").status == 200

    def test_codebase_section_merges_conlint_findings(self, lab):
        response = self.get(lab, codebase="1")
        assert response.status == 200
        body = json.loads(response.body)
        assert set(body["codebase"]) == {"codelint", "conlint"}
        conlint = body["codebase"]["conlint"]
        assert conlint["errors"] == 0
        assert conlint["diagnostics"] == []
        assert conlint["stats"]["locks"] >= 10
        assert body["ok"] is True

    def test_codebase_section_absent_by_default(self, lab):
        assert "codebase" not in json.loads(self.get(lab).body)

    def test_registration_is_idempotent(self, lab):
        from repro.obs import install_observability

        install_observability(
            expdb=lab.app,
            engine=lab.engine,
            broker=lab.broker,
            manager=lab.manager,
            agents=lab.agents,
            email=lab.email,
        )
        names = lab.app.container.descriptor.servlet_names()
        assert names.count("LintServlet") == 1
