"""Whole-program concurrency analyzer: every CC code, every directive.

Each class seeds a tiny module that must trip exactly one CC code, plus
its clean counterpart — the regression pins both the detection and the
absence of false positives on the disciplined version.  The final class
gates the real tree: ``src/repro`` must stay at zero CC findings, which
is the acceptance criterion CI enforces.
"""

from __future__ import annotations

import pathlib
import textwrap

import pytest

from repro.analysis import lint_concurrency
from repro.analysis.concurrency import analyze_paths, static_lock_order

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"


@pytest.fixture()
def conlint(tmp_path):
    def run(source, filename="m.py"):
        target = tmp_path / filename
        target.write_text(textwrap.dedent(source))
        return lint_concurrency([target], root=tmp_path)

    return run


def codes(report):
    return [d.code for d in report]


class TestLockOrderCycles:
    """CC001: a cycle in the interprocedural lock-acquisition graph."""

    CYCLE = """
        import threading

        class A:
            def __init__(self, b: "B"):
                self._lock = threading.Lock()
                self.b = b

            def forward(self):
                with self._lock:
                    self.b.poke()

            def poke(self):
                with self._lock:
                    pass

        class B:
            def __init__(self, a: A):
                self._lock = threading.Lock()
                self.a = a

            def forward(self):
                with self._lock:
                    self.a.poke()

            def poke(self):
                with self._lock:
                    pass
    """

    def test_two_lock_cycle_flagged(self, conlint):
        report = conlint(self.CYCLE)
        assert codes(report) == ["CC001"]
        [finding] = report
        assert "A._lock" in finding.message
        assert "B._lock" in finding.message

    def test_one_direction_is_a_hierarchy_not_a_cycle(self, conlint):
        # A -> B alone (no back edge) is a legal lock hierarchy.
        report = conlint(
            """
            import threading

            class A:
                def __init__(self, b: "B"):
                    self._lock = threading.Lock()
                    self.b = b

                def forward(self):
                    with self._lock:
                        self.b.poke()

            class B:
                def __init__(self):
                    self._lock = threading.Lock()

                def poke(self):
                    with self._lock:
                        pass
            """
        )
        assert report.ok
        assert report.stats["edges"] == 1

    def test_reentrant_self_edge_is_not_a_cycle(self, conlint):
        report = conlint(
            """
            import threading

            class R:
                def __init__(self):
                    self._lock = threading.RLock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
            """
        )
        assert report.ok


class TestNeverNested:
    """CC002: nesting inside a module annotated never-nested."""

    def test_nested_acquisition_flagged(self, conlint):
        report = conlint(
            """
            # conlint: never-nested
            import threading

            class Broker:
                def __init__(self):
                    self._registry = threading.Lock()
                    self._queue = threading.Lock()

                def deliver(self):
                    with self._registry:
                        with self._queue:
                            pass
            """
        )
        assert codes(report) == ["CC002"]

    def test_sequential_acquisition_allowed(self, conlint):
        report = conlint(
            """
            # conlint: never-nested
            import threading

            class Broker:
                def __init__(self):
                    self._registry = threading.Lock()
                    self._queue = threading.Lock()

                def deliver(self):
                    with self._registry:
                        pass
                    with self._queue:
                        pass
            """
        )
        assert report.ok


class TestBlockingUnderLock:
    """CC003: blocking primitives while a lock is held."""

    def test_sleep_under_lock_flagged(self, conlint):
        report = conlint(
            """
            import threading
            import time

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def wait_a_bit(self):
                    with self._lock:
                        time.sleep(0.1)
            """
        )
        assert codes(report) == ["CC003"]
        assert "time.sleep" in report.diagnostics[0].message

    def test_fsync_reached_through_a_call_chain_flagged(self, conlint):
        report = conlint(
            """
            import os
            import threading

            class Wal:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._fd = 3

                def _flush(self):
                    os.fsync(self._fd)

                def append(self):
                    with self._lock:
                        self._flush()
            """
        )
        assert codes(report) == ["CC003"]

    def test_sleep_outside_the_lock_allowed(self, conlint):
        report = conlint(
            """
            import threading
            import time

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def wait_a_bit(self):
                    with self._lock:
                        pass
                    time.sleep(0.1)
            """
        )
        assert report.ok

    def test_blocking_directive_propagates_to_locked_callers(self, conlint):
        # ``# conlint: blocking`` marks a *primitive*: callers holding
        # a lock across it are findings, the function itself is not.
        report = conlint(
            """
            import threading
            import time

            def pace():  # conlint: blocking -- sleeps by design
                time.sleep(0.1)

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def wait_a_bit(self):
                    with self._lock:
                        pace()
            """
        )
        assert codes(report) == ["CC003"]


class TestConditionWait:
    """CC004: unbounded Condition.wait."""

    def test_wait_without_timeout_flagged(self, conlint):
        report = conlint(
            """
            import threading

            class Q:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cond = threading.Condition(self._lock)

                def take(self):
                    with self._cond:
                        self._cond.wait()
            """
        )
        assert codes(report) == ["CC004"]

    def test_wait_with_timeout_allowed(self, conlint):
        report = conlint(
            """
            import threading

            class Q:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cond = threading.Condition(self._lock)

                def take(self):
                    with self._cond:
                        self._cond.wait(timeout=0.5)
            """
        )
        assert report.ok


class TestSharedState:
    """CC005: unguarded shared mutable state in a threading module."""

    def test_module_global_written_by_thread_target_flagged(self, conlint):
        report = conlint(
            """
            import threading

            COUNTS = {}

            def worker():
                COUNTS["x"] = 1

            def start():
                threading.Thread(target=worker).start()
            """
        )
        assert codes(report) == ["CC005"]

    def test_guarded_write_allowed(self, conlint):
        report = conlint(
            """
            import threading

            COUNTS = {}
            _LOCK = threading.Lock()

            def worker():
                with _LOCK:
                    COUNTS["x"] = 1

            def start():
                threading.Thread(target=worker).start()
            """
        )
        assert report.ok


class TestDirectives:
    """Annotation syntax: justified allows suppress, sloppy ones don't."""

    def test_allow_with_reason_suppresses(self, conlint):
        report = conlint(
            """
            import threading
            import time

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def wait_a_bit(self):
                    with self._lock:
                        time.sleep(0.1)  # conlint: allow=CC003 -- pacing
            """
        )
        assert report.ok

    def test_allow_without_reason_is_cc000(self, conlint):
        report = conlint(
            """
            import threading
            import time

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def wait_a_bit(self):
                    with self._lock:
                        time.sleep(0.1)  # conlint: allow=CC003
            """
        )
        # The malformed directive is itself a finding AND does not
        # suppress — otherwise a typo would silence the analyzer.
        assert sorted(codes(report)) == ["CC000", "CC003"]

    def test_standalone_comment_anchors_to_next_statement(self, conlint):
        report = conlint(
            """
            import threading
            import time

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def wait_a_bit(self):
                    with self._lock:
                        # conlint: allow=CC003 -- deliberate pacing
                        time.sleep(0.1)
            """
        )
        assert report.ok

    def test_module_allow_covers_the_whole_module(self, conlint):
        report = conlint(
            """
            # conlint: module-allow=CC003 -- legacy sync module
            import threading
            import time

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def one(self):
                    with self._lock:
                        time.sleep(0.1)

                def two(self):
                    with self._lock:
                        time.sleep(0.2)
            """
        )
        assert report.ok

    def test_directive_examples_in_docstrings_are_inert(self, conlint):
        report = conlint(
            '''
            def helper():
                """Use ``# conlint: allow=CC003`` to annotate, like:

                    time.sleep(1)  # conlint: allow=CC003
                """
                return 1
            '''
        )
        assert report.ok


class TestStaticOrderProjection:
    def test_runtime_names_and_groups(self):
        order = static_lock_order([SRC_REPRO])
        # The broker registry/per-queue pair is declared never-nested.
        assert {"broker.registry", "broker.queue.*"} in order.groups
        # The only witnessed nesting is the statement mutex over the
        # MVCC version lock (commit publishing a new version).  The
        # version lock is a leaf: nothing is acquired under it, and the
        # fsync deferral work keeps blocking holds out from under both.
        assert order.edges == {("minidb.mutex", "minidb.version")}


class TestTreeStaysClean:
    """The acceptance gate: zero CC findings on the real tree."""

    def test_src_repro_has_no_findings(self):
        report = lint_concurrency([SRC_REPRO], root=SRC_REPRO.parent)
        assert codes(report) == []
        assert report.stats["files"] > 50
        assert report.stats["locks"] >= 10

    def test_analysis_resolves_the_known_lock_hierarchy(self):
        analysis = analyze_paths([SRC_REPRO], root=SRC_REPRO.parent)

        def tail(name):  # "repro.seglog.SegmentedLog._state_lock"
            return ".".join(name.rsplit(".", 2)[-2:])

        edges = {(tail(held), tail(acq)) for held, acq in analysis.edges}
        # The bean lock sits above the database mutex, which sits above
        # the segmented-log state lock — the documented hierarchy of
        # DESIGN §14/§15.
        assert ("WorkflowBean._lock", "Database._mutex") in edges
        assert ("Database._mutex", "SegmentedLog._state_lock") in edges
        assert ("Database._mutex", "SnapshotManager._lock") in edges
        assert ("BrokerJournal._write_lock", "SegmentedLog._state_lock") in edges
