"""Interval-based guard reasoning used by the soundness verifier."""

from __future__ import annotations

from repro.analysis.guards import (
    ConditionAnalysis,
    IntervalSet,
    assignment_feasible,
    complementary,
)
from repro.core.conditions import Condition


def analysis(text):
    return ConditionAnalysis(Condition(text))


class TestIntervalSet:
    def test_from_comparison_and_intersection(self):
        gt = IntervalSet.from_comparison(">", 1.0)
        lt = IntervalSet.from_comparison("<", 0.0)
        assert gt.intersect(lt).empty

    def test_overlapping_ranges_are_nonempty(self):
        ge = IntervalSet.from_comparison(">=", 0.5)
        lt = IntervalSet.from_comparison("<", 2.0)
        assert not ge.intersect(lt).empty

    def test_boundary_strictness(self):
        ge = IntervalSet.from_comparison(">=", 1.0)
        le = IntervalSet.from_comparison("<=", 1.0)
        gt = IntervalSet.from_comparison(">", 1.0)
        # >= 1 and <= 1 leaves exactly {1}; > 1 and <= 1 leaves nothing.
        assert not ge.intersect(le).empty
        assert gt.intersect(le).empty

    def test_equality_and_disequality(self):
        eq = IntervalSet.from_comparison("==", 3.0)
        ne = IntervalSet.from_comparison("!=", 3.0)
        assert eq.intersect(ne).empty
        assert not eq.intersect(IntervalSet.from_comparison(">=", 3.0)).empty


class TestConditionAnalysis:
    def test_contradiction_is_unsatisfiable(self):
        contra = analysis(
            "experiment.reading > 1 and experiment.reading < 0"
        )
        assert contra.satisfiable() is False
        assert contra.tautological() is False

    def test_tautology(self):
        tauto = analysis(
            "experiment.reading >= 1 or experiment.reading < 1"
        )
        assert tauto.tautological() is True
        assert tauto.satisfiable() is True

    def test_ordinary_guard_is_neither(self):
        plain = analysis("experiment.reading >= 0.5")
        assert plain.satisfiable() is True
        assert plain.tautological() is False

    def test_distinct_fields_never_conflict(self):
        mixed = analysis("experiment.a > 1 and experiment.b < 0")
        assert mixed.satisfiable() is True

    def test_negation_swaps_the_interval(self):
        negated = analysis("not experiment.reading >= 0.5")
        atom = negated.single_interval()
        assert atom is not None
        true_set = atom.true_set
        assert true_set is not None
        assert atom.path.endswith("reading")
        # "not >= 0.5" admits values below 0.5 …
        assert not true_set.intersect(
            IntervalSet.from_comparison("<", 0.5)
        ).empty
        # … and nothing at or above it.
        assert true_set.intersect(
            IntervalSet.from_comparison(">=", 0.5)
        ).empty

    def test_flipped_operand_order(self):
        """``0.5 <= experiment.reading`` means ``reading >= 0.5``."""
        flipped = analysis(
            "0.5 <= experiment.reading and experiment.reading < 0.4"
        )
        assert flipped.satisfiable() is False


class TestComplementary:
    def test_threshold_split_is_complementary(self):
        assert complementary(
            Condition("experiment.reading >= 0.5"),
            Condition("experiment.reading < 0.5"),
        )

    def test_order_is_irrelevant(self):
        assert complementary(
            Condition("experiment.colonies < 20"),
            Condition("experiment.colonies >= 20"),
        )

    def test_gap_is_not_complementary(self):
        assert not complementary(
            Condition("experiment.reading > 1"),
            Condition("experiment.reading < 0"),
        )

    def test_different_fields_are_not_complementary(self):
        assert not complementary(
            Condition("experiment.a >= 0.5"),
            Condition("experiment.b < 0.5"),
        )


def interval_atom(text):
    atom = analysis(text).single_interval()
    assert atom is not None
    return atom


class TestAssignmentFeasibility:
    def test_same_source_conflicting_guards_infeasible(self):
        high = interval_atom("experiment.reading > 1")
        low = interval_atom("experiment.reading < 0")
        assert not assignment_feasible([(high, True), (low, True)])
        assert assignment_feasible([(high, True), (low, False)])

    def test_complement_pair_exactly_one_true(self):
        hi = interval_atom("experiment.reading >= 0.5")
        lo = interval_atom("experiment.reading < 0.5")
        assert not assignment_feasible([(hi, True), (lo, True)])
        assert not assignment_feasible([(hi, False), (lo, False)])
        assert assignment_feasible([(hi, True), (lo, False)])
        assert assignment_feasible([(hi, False), (lo, True)])
