"""Codebase invariant linter: each rule fires, each exemption holds."""

from __future__ import annotations

import pathlib
import textwrap

import pytest

from repro.analysis import lint_paths

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture()
def lint(tmp_path):
    def run(source, filename="module.py"):
        target = tmp_path / filename
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
        return lint_paths([target], root=tmp_path)

    return run


def codes(report):
    return [d.code for d in report]


class TestBareExcept:
    def test_bare_except_flagged(self, lint):
        report = lint(
            """
            try:
                work()
            except:
                pass
            """
        )
        assert codes(report) == ["CL001"]

    def test_typed_except_allowed(self, lint):
        report = lint(
            """
            try:
                work()
            except ValueError:
                pass
            """
        )
        assert report.ok


class TestMutableDefaults:
    def test_literal_defaults_flagged(self, lint):
        report = lint(
            """
            def f(items=[], table={}, seen=set()):
                return items, table, seen
            """
        )
        assert codes(report) == ["CL002", "CL002", "CL002"]

    def test_none_sentinel_allowed(self, lint):
        report = lint(
            """
            def f(items=None, label="x", count=0):
                return items, label, count
            """
        )
        assert report.ok


class TestStateMutation:
    def test_direct_state_assignment_flagged(self, lint):
        report = lint(
            """
            def force(task):
                task.state = "completed"
            """
        )
        assert codes(report) == ["CL003"]

    def test_allowlisted_module_exempt(self, lint):
        report = lint(
            """
            class StateMachine:
                def _apply(self, bean, target):
                    bean.state = target
            """,
            filename="core/states.py",
        )
        assert report.ok

    def test_local_variable_named_state_allowed(self, lint):
        report = lint(
            """
            def snapshot(task):
                state = task.describe()
                return state
            """
        )
        assert report.ok


class TestLockDiscipline:
    LOCKED_CLASS = """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def increment(self):
                {body}
    """

    def test_unguarded_write_flagged(self, lint):
        report = lint(
            textwrap.dedent(self.LOCKED_CLASS).format(
                body="self._count += 1"
            )
        )
        assert codes(report) == ["CL004"]

    def test_guarded_write_allowed(self, lint):
        report = lint(
            textwrap.dedent(self.LOCKED_CLASS).format(
                body="with self._lock:\n                    self._count += 1"
            )
        )
        assert report.ok

    def test_synchronized_decorator_exempts(self, lint):
        report = lint(
            """
            import threading

            def _synchronized(method):
                return method

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                @_synchronized
                def increment(self):
                    self._count += 1
            """
        )
        assert report.ok

    def test_private_methods_exempt(self, lint):
        report = lint(
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def _bump_unlocked(self):
                    self._count += 1
            """
        )
        assert report.ok

    def test_rlock_in_init_counts_as_a_lock(self, lint):
        """``threading.RLock`` establishes lock discipline exactly like
        ``Lock`` — an unguarded public write is still CL004."""
        report = lint(
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.RLock()
                    self._count = 0

                def increment(self):
                    self._count += 1
            """
        )
        assert codes(report) == ["CL004"]

    def test_lock_aliased_to_local_is_not_recognized(self, lint):
        """Pinned current behaviour: the guard check matches only
        ``with self._lock:`` literally, so a write under an *aliased*
        lock is (falsely) flagged.  conlint resolves aliases; when
        CL004 is generalized this pin is the one to flip."""
        report = lint(
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def increment(self):
                    lock = self._lock
                    with lock:
                        self._count += 1
            """
        )
        assert codes(report) == ["CL004"]

    def test_any_synchronized_spelling_exempts(self, lint):
        """Both ``synchronized`` and ``_synchronized`` decorator names
        exempt a method, regardless of where they are defined."""
        report = lint(
            """
            import threading

            def synchronized(method):
                return method

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                @synchronized
                def increment(self):
                    self._count += 1
            """
        )
        assert report.ok

    def test_condition_language_class_is_not_a_lock(self, lint):
        """A bare ``Condition(...)`` call is the workflow condition
        class, not ``threading.Condition`` — no lock discipline applies."""
        report = lint(
            """
            class Condition:
                def __init__(self, text):
                    self.text = text

            class TransitionDef:
                def __init__(self, text):
                    self._parsed = Condition(text)

                def check(self):
                    self._cache = self._parsed
            """
        )
        assert report.ok


class TestDeadCode:
    def test_code_after_return_flagged(self, lint):
        report = lint(
            """
            def f():
                return 1
                print("never")
            """
        )
        assert codes(report) == ["CL005"]

    def test_literal_false_branch_flagged(self, lint):
        report = lint(
            """
            if False:
                print("never")
            """
        )
        assert codes(report) == ["CL005"]


class TestSyntaxErrors:
    def test_unparsable_file_is_reported_not_raised(self, lint):
        report = lint("def broken(:\n")
        assert codes(report) == ["CL000"]
        assert not report.ok


class TestRealTree:
    def test_src_tree_is_clean(self):
        report = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        assert report.ok, report.render_text()
        assert report.stats["files"] > 50
