"""Workflow verifier: soundness diagnostics over crafted patterns."""

from __future__ import annotations

import pytest

from repro.analysis import Severity, check_pattern, check_registry
from repro.core.spec import TaskDef, TransitionDef, WorkflowPattern
from repro.core.validation import validate_pattern
from repro.errors import SpecificationError


def codes(report, severity=None):
    return [
        d.code
        for d in report
        if severity is None or d.severity is severity
    ]


def make_pattern(name, tasks, transitions):
    """Hand-build a pattern (bypasses the builder's auto-validation)."""
    pattern = WorkflowPattern(name)
    for task in tasks:
        pattern.add_task(task)
    for transition in transitions:
        pattern.add_transition(transition)
    return pattern


def deadlocking_and_join():
    """Two branch guards that can never both hold — and are *not*
    complements, so the join is not an intentional exclusive choice."""
    return make_pattern(
        "deadjoin",
        [
            TaskDef("start", experiment_type="A"),
            TaskDef("left", experiment_type="B"),
            TaskDef("right", experiment_type="C"),
            TaskDef("join", experiment_type="D", requires_authorization=True),
        ],
        [
            TransitionDef("start", "left", condition="experiment.reading > 1"),
            TransitionDef("start", "right", condition="experiment.reading < 0"),
            TransitionDef("left", "join"),
            TransitionDef("right", "join"),
        ],
    )


class TestJoinSoundness:
    def test_deadlocking_and_join_is_an_error(self):
        report = check_pattern(deadlocking_and_join())
        assert "WF020" in codes(report, Severity.ERROR)
        assert not report.ok

    def test_deadlocking_and_join_raises_through_validate_pattern(self):
        with pytest.raises(SpecificationError, match="join task 'join'"):
            validate_pattern(deadlocking_and_join())

    def test_complementary_rejoin_is_clean(self):
        """The Fig. 1 branch-and-rejoin shape: complements are an
        intentional exclusive choice, not a deadlock."""
        pattern = make_pattern(
            "rejoin",
            [
                TaskDef("start", experiment_type="A"),
                TaskDef("hi", experiment_type="B"),
                TaskDef("lo", experiment_type="C"),
                TaskDef("sink", experiment_type="D", requires_authorization=True),
            ],
            [
                TransitionDef(
                    "start", "hi", condition="experiment.reading >= 0.5"
                ),
                TransitionDef(
                    "start", "lo", condition="experiment.reading < 0.5"
                ),
                TransitionDef("hi", "sink"),
                TransitionDef("lo", "sink"),
            ],
        )
        report = check_pattern(pattern)
        assert report.ok
        assert "WF020" not in codes(report)
        # Exactly one branch fires per assignment, so the sink always
        # completes: no WF022 either.
        assert "WF022" not in codes(report)

    def test_unconditional_join_is_clean(self):
        pattern = make_pattern(
            "parjoin",
            [
                TaskDef("a", experiment_type="A"),
                TaskDef("b", experiment_type="B"),
                TaskDef("join", experiment_type="C", requires_authorization=True),
            ],
            [
                TransitionDef("a", "join"),
                TransitionDef("b", "join"),
            ],
        )
        assert check_pattern(pattern).ok


class TestConditionDiagnostics:
    def contradiction(self):
        return make_pattern(
            "contra",
            [
                TaskDef("s", experiment_type="A"),
                TaskDef("x", experiment_type="B", requires_authorization=True),
                TaskDef("end", experiment_type="C", requires_authorization=True),
            ],
            [
                TransitionDef(
                    "s",
                    "x",
                    condition="experiment.reading > 1 and experiment.reading < 0",
                ),
                TransitionDef("s", "end"),
            ],
        )

    def test_contradictory_guard_flags_dead_transition(self):
        report = check_pattern(self.contradiction())
        dead = [d for d in report if d.code == "WF030"]
        assert len(dead) == 1
        assert dead[0].severity is Severity.WARNING
        assert dead[0].transition == "s -> x"
        # Contradictions are warnings, never raise.
        validate_pattern(self.contradiction())

    def test_contradictory_guard_kills_downstream_task(self):
        report = check_pattern(self.contradiction())
        never = [d for d in report if d.code == "WF024"]
        assert [d.task for d in never] == ["x"]

    def test_tautological_guard_warns(self):
        pattern = make_pattern(
            "tauto",
            [
                TaskDef("s", experiment_type="A"),
                TaskDef("t", experiment_type="B", requires_authorization=True),
            ],
            [
                TransitionDef(
                    "s",
                    "t",
                    condition=(
                        "experiment.reading >= 1 or experiment.reading < 1"
                    ),
                ),
            ],
        )
        report = check_pattern(pattern)
        assert "WF031" in codes(report, Severity.WARNING)

    def test_unknown_name_root_is_info(self):
        pattern = make_pattern(
            "names",
            [
                TaskDef("s", experiment_type="A"),
                TaskDef("t", experiment_type="B", requires_authorization=True),
            ],
            [TransitionDef("s", "t", condition="bogus.field == 1")],
        )
        report = check_pattern(pattern)
        info = [d for d in report if d.code == "WF033"]
        assert len(info) == 1
        assert info[0].severity is Severity.INFO
        assert report.ok

    def test_effectively_unconditional_cycle_warns(self):
        pattern = make_pattern(
            "spin",
            [
                TaskDef("start", experiment_type="S"),
                TaskDef("a", experiment_type="A"),
                TaskDef("b", experiment_type="B"),
                TaskDef("end", experiment_type="E", requires_authorization=True),
            ],
            [
                TransitionDef("start", "a"),
                TransitionDef("a", "b"),
                TransitionDef(
                    "b",
                    "a",
                    condition="experiment.x >= 1 or experiment.x < 1",
                ),
                TransitionDef("b", "end"),
            ],
        )
        report = check_pattern(pattern)
        assert "WF032" in codes(report, Severity.WARNING)
        # The legacy unconditional-cycle *error* must not fire: the
        # cycle does carry a (vacuous) condition.
        assert "WF005" not in codes(report)


class TestMarkingExploration:
    def test_sole_final_behind_guard_warns_never_completes(self):
        pattern = make_pattern(
            "gatedend",
            [
                TaskDef("s", experiment_type="A"),
                TaskDef("end", experiment_type="B", requires_authorization=True),
            ],
            [
                TransitionDef(
                    "s", "end", condition="experiment.reading >= 2"
                ),
            ],
        )
        report = check_pattern(pattern)
        assert "WF022" in codes(report, Severity.WARNING)
        assert report.ok

    def test_orphan_loop_tail_warns(self):
        """A task whose only exit is a back-edge can complete without
        ever contributing to workflow termination."""
        pattern = make_pattern(
            "orphan",
            [
                TaskDef("start", experiment_type="S"),
                TaskDef("loop1", experiment_type="A"),
                TaskDef("loop2", experiment_type="B"),
                TaskDef("end", experiment_type="E", requires_authorization=True),
            ],
            [
                TransitionDef("start", "loop1"),
                TransitionDef("loop1", "loop2"),
                TransitionDef(
                    "loop2", "loop1", condition="experiment.retry >= 1"
                ),
                TransitionDef("start", "end"),
            ],
        )
        report = check_pattern(pattern)
        orphans = sorted(d.task for d in report if d.code == "WF021")
        assert orphans == ["loop1", "loop2"]

    def test_guard_explosion_is_bounded(self):
        from repro.analysis import MAX_GUARDS

        tasks = [TaskDef("s", experiment_type="S")]
        transitions = []
        for index in range(MAX_GUARDS + 1):
            tasks.append(
                TaskDef(
                    f"t{index}",
                    experiment_type="T",
                    requires_authorization=True,
                )
            )
            transitions.append(
                TransitionDef(
                    "s", f"t{index}", condition=f"experiment.v{index} == 1"
                )
            )
        report = check_pattern(make_pattern("wide", tasks, transitions))
        assert "WF023" in codes(report, Severity.INFO)
        assert report.stats["assignments_explored"] == 0

    def test_stats_record_exploration(self):
        report = check_pattern(deadlocking_and_join())
        # Four raw assignments, one pruned (both guards true is
        # infeasible for the same reading).
        assert report.stats["guards"] == 2
        assert report.stats["assignments_explored"] == 3
        assert report.stats["states_visited"] == 3 * 4


class TestInstanceAndAuthorizationLint:
    def test_huge_default_instances_warns(self):
        pattern = make_pattern(
            "many",
            [
                TaskDef(
                    "s",
                    experiment_type="A",
                    default_instances=101,
                    requires_authorization=True,
                )
            ],
            [],
        )
        report = check_pattern(pattern)
        assert "WF040" in codes(report, Severity.WARNING)

    def test_non_final_authorization_is_info(self):
        pattern = make_pattern(
            "gates",
            [
                TaskDef(
                    "s", experiment_type="A", requires_authorization=True
                ),
                TaskDef(
                    "t", experiment_type="B", requires_authorization=True
                ),
            ],
            [TransitionDef("s", "t")],
        )
        report = check_pattern(pattern)
        gates = [d for d in report if d.code == "WF050"]
        assert [d.task for d in gates] == ["s"]
        assert report.ok


class TestProteinWorkflow:
    @pytest.fixture(scope="class")
    def protein_registry(self):
        from repro.core.datamodel import install_workflow_datamodel
        from repro.core.persistence import pattern_registry
        from repro.weblims import build_expdb
        from repro.workloads.protein import (
            build_protein_patterns,
            install_protein_schema,
        )

        app = build_expdb()
        install_workflow_datamodel(app.db)
        install_protein_schema(app)
        build_protein_patterns(app)
        return pattern_registry(app.db), app.db

    def test_protein_patterns_report_zero_errors(self, protein_registry):
        registry, db = protein_registry
        reports = check_registry(registry, db=db)
        assert set(reports) == {"protein_creation", "protein_production"}
        for report in reports.values():
            assert report.ok
            assert not report.errors()

    def test_protein_branch_join_is_recognized_as_exclusive(
        self, protein_registry
    ):
        registry, db = protein_registry
        report = check_registry(registry, db=db)["protein_creation"]
        assert "WF020" not in codes(report)
        assert report.stats["guards"] == 2
        assert report.stats["assignments_explored"] == 2
