#!/usr/bin/env python3
"""Quickstart: add workflow support to a web LIMS in a few lines.

Builds an Exp-DB instance, attaches Exp-WF through the deployment
descriptor (no LIMS component is modified), defines a two-step workflow,
runs it with a simulated robot, and prints every state change.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.agents import (
    AgentManager,
    EmailTransport,
    LiquidHandlingRobotAgent,
    run_until_quiescent,
)
from repro.core import PatternBuilder, install_workflow_support
from repro.core.persistence import authorize_agent, register_agent, save_pattern
from repro.core.spec import AgentSpec
from repro.messaging import MessageBroker
from repro.minidb.schema import Column
from repro.minidb.types import ColumnType
from repro.weblims import build_expdb
from repro.weblims.schema_setup import (
    add_experiment_type,
    add_sample_type,
    declare_experiment_io,
)


def main() -> None:
    # 1. A plain Exp-DB LIMS — three tiers, no workflow knowledge.
    app = build_expdb()

    # 2. Attach Exp-WF: broker + agent manager + engine, wired purely
    #    through the deployment descriptor.
    broker = MessageBroker()
    manager = AgentManager(app.db, broker, email=EmailTransport())
    engine = install_workflow_support(app, dispatcher=manager)
    manager.attach_engine(engine)

    # 3. The lab registers its experiment and sample types (Fig. 2's
    #    extension mechanism — TableBean and friends stay unchanged).
    add_experiment_type(
        app.db, "Growth", [Column("od600", ColumnType.REAL)],
        description="grow a bacterial culture",
    )
    add_experiment_type(
        app.db, "Assay", [Column("activity", ColumnType.REAL)],
        description="assay the culture",
    )
    add_sample_type(app.db, "Culture", [])
    declare_experiment_io(app.db, "Growth", "Culture", "output")
    declare_experiment_io(app.db, "Assay", "Culture", "input")

    # 4. A robot that performs Growth experiments; Assay stays human.
    spec = AgentSpec("growth-bot", "robot")
    register_agent(app.db, spec)
    authorize_agent(app.db, "growth-bot", "Growth")
    robot = LiquidHandlingRobotAgent(
        spec,
        broker,
        produces=[{"sample_type": "Culture", "name_prefix": "culture"}],
        result_fields={"od600": lambda rng: round(rng.uniform(0.4, 1.2), 3)},
    )

    # 5. Define and store the workflow pattern.
    pattern = (
        PatternBuilder("grow_then_assay")
        .task("grow", experiment_type="Growth", default_instances=2)
        .task("assay", experiment_type="Assay")
        .flow("grow", "assay")
        .data("grow", "assay", sample_type="Culture")
        .build(db=app.db)
    )
    save_pattern(app.db, pattern)

    # Print the engine's event stream as it happens.
    engine.events.subscribe(
        lambda event: print(f"  [{event.sequence:3d}] {event.kind}: {event.payload}")
    )

    # 6. Start a run-through and let the robot work.
    print("== starting workflow ==")
    workflow = engine.start_workflow("grow_then_assay")
    run_until_quiescent(manager, [robot])

    # 7. The final task is authorization-gated (§4.2); the PI approves
    #    through the web interface.
    print("== approving the final task ==")
    for request in engine.pending_authorizations():
        response = app.post(
            "/user",
            workflow_action="authorize",
            auth_id=str(request["auth_id"]),
            approve="true",
            by="the-pi",
        )
        assert response.ok

    # 8. The assay is performed by a human through the web interface.
    print("== human enters assay results via the web ==")
    view = engine.workflow_view(workflow["workflow_id"])
    for instance in view.tasks["assay"].instances:
        response = app.post(
            "/user",
            workflow_action="complete_instance",
            experiment_id=str(instance.experiment_id),
            success="true",
            r_activity="0.87",
        )
        assert response.ok

    final = engine.workflow_view(workflow["workflow_id"])
    print(f"\nworkflow status: {final.status}")
    for task in final.tasks.values():
        print(
            f"  {task.name:8s} {task.state:10s} "
            f"({task.completed_instances}/{len(task.instances)} instances ok)"
        )
    cultures = app.db.select("Sample")
    print(f"cultures produced: {[row['name'] for row in cultures]}")
    assert final.status == "completed"


if __name__ == "__main__":
    main()
