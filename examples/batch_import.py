#!/usr/bin/env python3
"""Workflow support for non-web clients via aspects (§7 future work).

A batch importer — think a script migrating plate-reader output into the
LIMS — talks to the ``TableBean`` directly, bypassing the web tier and
therefore the WorkflowFilter.  The paper's conclusions propose
aspect-oriented programming for exactly this case; this example runs the
implemented version:

1. Exp-WF is woven around the bean's ``insert``/``update``/``delete``;
2. the importer loads a CSV batch of legacy experiments (allowed —
   postprocessing re-checks workflows after each write);
3. its attempt to "fix" a workflow-managed experiment's state column is
   vetoed before it reaches the database;
4. unweaving detaches Exp-WF again, leaving the bean untouched.

Run with::

    python examples/batch_import.py
"""

from __future__ import annotations

import csv
import io

from repro.core import PatternBuilder, install_workflow_support
from repro.core.aspects import AdviceVeto, install_aspect_workflow_support
from repro.core.persistence import save_pattern
from repro.minidb.schema import Column
from repro.minidb.types import ColumnType
from repro.weblims import build_expdb
from repro.weblims.schema_setup import add_experiment_type

LEGACY_CSV = """\
enzyme,status,notes
EcoRI,done,imported from plate reader 1
BamHI,done,imported from plate reader 1
HindIII,failed,imported from plate reader 2
"""


def main() -> None:
    app = build_expdb()
    engine = install_workflow_support(app)
    add_experiment_type(
        app.db, "Digestion", [Column("enzyme", ColumnType.TEXT)]
    )
    pattern = (
        PatternBuilder("digest_flow")
        .task("digest", experiment_type="Digestion")
        .build(db=app.db)
    )
    save_pattern(app.db, pattern)
    workflow = engine.start_workflow("digest_flow")
    for request in engine.pending_authorizations():
        engine.respond_authorization(request["auth_id"], True, "pi")
    managed = engine.workflow_view(workflow["workflow_id"]).tasks[
        "digest"
    ].instances[0]
    print(f"workflow experiment under engine control: "
          f"#{managed.experiment_id} ({managed.state})")

    print("\n== weaving Exp-WF around the TableBean ==")
    weaver = install_aspect_workflow_support(app.bean, engine)

    print("== importing the legacy batch (allowed, postprocessed) ==")
    checks_before = engine.check_count
    for record in csv.DictReader(io.StringIO(LEGACY_CSV)):
        row = app.bean.insert("Digestion", record)
        print(f"   imported experiment #{row['experiment_id']} "
              f"({row['enzyme']}, {row['status']})")
    print(f"   workflow re-checks triggered by the import: "
          f"{engine.check_count - checks_before}")

    print("== importer tries to 'fix' the managed experiment ==")
    try:
        app.bean.update(
            "Experiment",
            {"experiment_id": managed.experiment_id},
            {"wf_state": "completed"},
        )
    except AdviceVeto as veto:
        print(f"   VETOED: {veto}")
    try:
        app.bean.delete(
            "Digestion", {"experiment_id": managed.experiment_id}
        )
    except AdviceVeto as veto:
        print(f"   VETOED: {veto}")
    still_there = app.db.get("Experiment", managed.experiment_id)
    print(f"   managed experiment untouched: wf_state={still_there['wf_state']}")

    print("\n== unweaving: the bean is exactly as before ==")
    removed = weaver.unweave_all()
    print(f"   removed {removed} advice weave(s)")
    affected = app.bean.update(
        "Experiment",
        {"experiment_id": managed.experiment_id},
        {"notes": "direct write works again"},
    )
    print(f"   direct write after unweave affected {affected} row(s)")
    assert app.db.count("Digestion") == 4  # 1 managed + 3 imported


if __name__ == "__main__":
    main()
