#!/usr/bin/env python3
"""Exp-DB as a plain web LIMS, then the filter integration made visible.

Part 1 drives the original LIMS through its four generic web operations
(read / insert / update / delete) — the pre-workflow Exp-DB experience.

Part 2 installs Exp-WF and shows the servlet filter's three modes at
work on the very same URLs: pass-through for reads, a denied write that
would corrupt engine state, a workflow action processed entirely by the
filter, and a postprocessed insert carrying workflow notices.

Run with::

    python examples/lims_browser.py
"""

from __future__ import annotations

from repro.core import PatternBuilder, install_workflow_support
from repro.core.persistence import save_pattern
from repro.minidb.schema import Column
from repro.minidb.types import ColumnType
from repro.weblims import build_expdb
from repro.weblims.schema_setup import (
    add_experiment_type,
    add_sample_type,
    declare_experiment_io,
)


def show(label: str, response) -> None:
    print(f"  {label}: HTTP {response.status}")
    for line in response.body.splitlines():
        if line.strip():
            print(f"      | {line.strip()[:76]}")
            break


def main() -> None:
    print("== part 1: the plain LIMS ==")
    app = build_expdb()
    add_experiment_type(
        app.db,
        "Crystallization",
        [Column("temperature", ColumnType.REAL),
         Column("buffer", ColumnType.TEXT)],
    )
    add_sample_type(app.db, "Crystal", [])
    declare_experiment_io(app.db, "Crystallization", "Crystal", "output")

    show("list tables", app.get("/user", action="list"))
    show(
        "generated insert form",
        app.get("/user", action="form", table="Crystallization"),
    )
    show(
        "insert (split into Experiment + Crystallization)",
        app.post(
            "/user",
            action="insert",
            table="Crystallization",
            v_temperature="4.0",
            v_buffer="HEPES",
            v_notes="first attempt",
        ),
    )
    show(
        "read (merged parent/child record)",
        app.get("/user", action="read", table="Crystallization",
                c_buffer="HEPES"),
    )
    show(
        "update (columns routed to their owners)",
        app.post(
            "/user",
            action="update",
            table="Crystallization",
            c_buffer="HEPES",
            v_temperature="18.0",
            v_status="done",
        ),
    )

    print("\n== part 2: Exp-WF attached through the descriptor ==")
    engine = install_workflow_support(app)
    pattern = (
        PatternBuilder("crystal_flow")
        .task("crystallize", experiment_type="Crystallization")
        .build(db=app.db)
    )
    save_pattern(app.db, pattern)
    filter_ = app.container.context["workflow_filter"]

    show(
        "mode -: read passes through untouched",
        app.get("/user", action="read", table="Crystallization"),
    )
    show(
        "mode b: workflow action handled by the filter (bypasses LIMS)",
        app.post("/user", workflow_action="start", pattern="crystal_flow"),
    )
    show(
        "mode a: engine-owned column write DENIED",
        app.post(
            "/user",
            action="update",
            table="Experiment",
            c_type_name="Crystallization",
            v_wf_state="completed",
        ),
    )
    response = app.post(
        "/user",
        action="insert",
        table="Crystallization",
        v_temperature="20.0",
        v_buffer="TRIS",
    )
    show("mode c: insert postprocessed (workflow re-checked)", response)
    print(f"      | workflow events attached: "
          f"{len(response.attributes.get('workflow_events', []))}")

    print(f"\n  filter statistics: {filter_.stats}")
    view = engine.workflow_view(1)
    print(f"  workflow #1 status: {view.status}; "
          f"crystallize={view.tasks['crystallize'].state}")


if __name__ == "__main__":
    main()
