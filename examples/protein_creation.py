#!/usr/bin/env python3
"""The Fig. 1 protein-creation workflow, end to end.

Runs the paper's running example on the full stack — web LIMS, workflow
engine, persistent messaging, seven robots, one analysis program and a
human technician — twice: once with many transformation colonies (the
PCR-screening branch) and once with few (the miniprep branch).

Run with::

    python examples/protein_creation.py
"""

from __future__ import annotations

from repro.workloads.protein import COLONY_THRESHOLD, build_protein_lab


def run_branch(colonies: int, label: str) -> None:
    print(f"=== {label} (transformation yields {colonies} colonies, "
          f"threshold {COLONY_THRESHOLD}) ===")
    lab = build_protein_lab(colonies=colonies)
    workflow = lab.engine.start_workflow("protein_creation")
    workflow_id = workflow["workflow_id"]
    status = lab.run_to_completion(workflow_id)

    view = lab.engine.workflow_view(workflow_id)
    print(f"workflow status: {status}")
    for task in view.tasks.values():
        marker = "*" if task.subworkflow else " "
        print(
            f"  {marker} {task.name:20s} {task.state:12s} "
            f"instances={len(task.instances)} "
            f"ok={task.completed_instances}"
        )
    child_id = view.tasks["protein_production"].child_workflow_id
    if child_id is not None:
        child = lab.engine.workflow_view(child_id)
        print(f"  nested protein_production workflow #{child_id}: "
              f"{child.status}")
        for task in child.tasks.values():
            print(f"      {task.name:16s} {task.state}")

    purified = lab.app.db.select("PurifiedProtein")
    for row in purified:
        sample = lab.app.db.get("Sample", row["sample_id"])
        print(
            f"  purified protein: {sample['name']} "
            f"(purity {row['purity']}, quality {sample['quality']})"
        )
    emails = lab.email.inbox("tech@lab.example")
    print(f"  technician emails: {len(emails)} "
          f"({sum(1 for e in emails if 'authorization' in e.subject)} "
          f"authorization requests)")
    stats = lab.app.db.stats
    print(f"  database accesses: {stats.reads} reads, {stats.writes} writes")
    print(f"  persistent messages sent: {lab.broker.stats.sends}")
    print()


def main() -> None:
    run_branch(25, "branch A: PCR screening")
    run_branch(10, "branch B: miniprep")


if __name__ == "__main__":
    main()
