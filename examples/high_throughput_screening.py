#!/usr/bin/env python3
"""High-throughput screening: multiple task instances and backtracking.

The motivating scenario of §4.2: experiments fail in the wet lab, many
are run in parallel, only the best results flow on, and researchers
backtrack to improve quality.  This example drives a flaky screening
campaign:

1. a `prepare` task runs **4 parallel instances** on a robot with a 35%
   failure rate — some abort, the survivors' plates flow on;
2. the technician spawns **extra instances** when too few succeeded;
3. the `screen` task consumes the successful plates and scores them;
4. unhappy with the score, the researcher **restarts** `prepare`
   (backtracking) — superseding the old instances while keeping them as
   history — and the second pass produces a better screen.

Run with::

    python examples/high_throughput_screening.py
"""

from __future__ import annotations

from repro.agents import (
    AgentManager,
    AnalysisProgramAgent,
    EmailTransport,
    LiquidHandlingRobotAgent,
    run_until_quiescent,
)
from repro.core import PatternBuilder, install_workflow_support
from repro.core.persistence import authorize_agent, register_agent, save_pattern
from repro.core.spec import AgentSpec
from repro.messaging import MessageBroker
from repro.minidb.schema import Column
from repro.minidb.types import ColumnType
from repro.weblims import build_expdb
from repro.weblims.schema_setup import (
    add_experiment_type,
    add_sample_type,
    declare_experiment_io,
)

MIN_GOOD_PLATES = 3


def build_campaign(seed: int = 21):
    app = build_expdb()
    broker = MessageBroker()
    manager = AgentManager(app.db, broker, email=EmailTransport())
    engine = install_workflow_support(app, dispatcher=manager)
    manager.attach_engine(engine)

    add_experiment_type(
        app.db, "Preparation", [Column("wells", ColumnType.INTEGER)]
    )
    add_experiment_type(
        app.db, "Screening", [Column("score", ColumnType.REAL)]
    )
    add_sample_type(app.db, "Plate", [])
    declare_experiment_io(app.db, "Preparation", "Plate", "output")
    declare_experiment_io(app.db, "Screening", "Plate", "input")

    prep_spec = AgentSpec("prep-bot", "robot")
    register_agent(app.db, prep_spec)
    authorize_agent(app.db, "prep-bot", "Preparation")
    prep_robot = LiquidHandlingRobotAgent(
        prep_spec,
        broker,
        produces=[{"sample_type": "Plate", "name_prefix": "plate"}],
        failure_rate=0.35,
        seed=seed,
        result_fields={"wells": 96},
    )

    screen_spec = AgentSpec("screen-prog", "program")
    register_agent(app.db, screen_spec)
    authorize_agent(app.db, "screen-prog", "Screening")
    screener = AnalysisProgramAgent(
        screen_spec,
        broker,
        compute=lambda plates: {
            "score": round(
                sum(p.get("quality") or 0 for p in plates)
                / max(1, len(plates)),
                4,
            )
        },
    )

    pattern = (
        PatternBuilder("screening_campaign")
        .task("prepare", experiment_type="Preparation", default_instances=4)
        .task("screen", experiment_type="Screening")
        .flow("prepare", "screen")
        .data("prepare", "screen", sample_type="Plate")
        .build(db=app.db)
    )
    save_pattern(app.db, pattern)
    agents = [prep_robot, screener]
    return app, engine, manager, agents


def main() -> None:
    app, engine, manager, agents = build_campaign()
    workflow = engine.start_workflow("screening_campaign")
    workflow_id = workflow["workflow_id"]
    run_until_quiescent(manager, agents)

    def prepare_view():
        return engine.workflow_view(workflow_id).tasks["prepare"]

    print("== pass 1: 4 parallel preparation instances, flaky robot ==")
    task = prepare_view()
    print(f"  completed={task.completed_instances} "
          f"aborted={task.aborted_instances}")

    # Spawn extra instances until enough plates succeeded (§4.2: users
    # may create additional instances when results are unsatisfying).
    spawned = 0
    while prepare_view().completed_instances < MIN_GOOD_PLATES:
        if prepare_view().state != "active":
            break  # task decided itself; restart below if needed
        engine.spawn_instance(workflow_id, "prepare")
        spawned += 1
        run_until_quiescent(manager, agents)
    print(f"  spawned {spawned} extra instance(s); "
          f"now {prepare_view().completed_instances} good plates")

    # Authorize & run the screen.
    for request in engine.pending_authorizations():
        engine.respond_authorization(request["auth_id"], True, "researcher")
    run_until_quiescent(manager, agents)

    view = engine.workflow_view(workflow_id)
    screen_exp = view.tasks["screen"].instances[0]
    first_score = app.db.get("Screening", screen_exp.experiment_id)["score"]
    print(f"  screen score (pass 1): {first_score}")

    print("== backtracking: restart 'prepare' for a better pass ==")
    engine.restart_task(workflow_id, "prepare")
    run_until_quiescent(manager, agents)
    while prepare_view().completed_instances < MIN_GOOD_PLATES:
        if prepare_view().state != "active":
            break
        engine.spawn_instance(workflow_id, "prepare")
        run_until_quiescent(manager, agents)
    for request in engine.pending_authorizations():
        engine.respond_authorization(request["auth_id"], True, "researcher")
    run_until_quiescent(manager, agents)

    view = engine.workflow_view(workflow_id)
    screen_exp = view.tasks["screen"].instances[0]
    second_score = app.db.get("Screening", screen_exp.experiment_id)["score"]
    print(f"  screen score (pass 2): {second_score}")

    history = app.db.select("Experiment", order_by="experiment_id")
    superseded = [row for row in history if not row["wf_current"]]
    print(f"== history preserved: {len(history)} experiments total, "
          f"{len(superseded)} superseded by the restart ==")
    print(f"final workflow status: {view.status}")
    assert view.status == "completed"


if __name__ == "__main__":
    main()
