#!/usr/bin/env python3
"""Durability: a lab server that crashes mid-workflow and carries on.

The paper's persistence choices — experiment state in the relational
database, agent traffic over *persistent* messages ("message delivery is
guaranteed even if communication partners are not connected all the
time") — exist precisely so that a lab server crash loses nothing.
This example stages that story:

1. boot a lab over a database WAL and a broker journal;
2. start a workflow; the dispatch is journalled, then the server
   "crashes" before any robot picks it up;
3. reboot from the same files: the workflow is still running, the
   dispatch is still queued; the robot (reconnecting) does the work;
4. crash *again* with the robot's result sitting unconsumed in the
   manager's queue; the third boot applies it and finishes;
5. finally, compact the database WAL with a checkpoint.

Run with::

    python examples/durable_lab.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.agents import (
    AgentManager,
    EmailTransport,
    LiquidHandlingRobotAgent,
    run_until_quiescent,
)
from repro.core import PatternBuilder, install_workflow_support
from repro.core.persistence import authorize_agent, register_agent, save_pattern
from repro.core.spec import AgentSpec
from repro.messaging import MessageBroker
from repro.weblims import build_expdb
from repro.weblims.schema_setup import (
    add_experiment_type,
    add_sample_type,
    declare_experiment_io,
)


def boot(wal_path, journal_path, first_boot: bool):
    """(Re)start the lab server over its durable files."""
    app = build_expdb(wal_path=wal_path, install_schema=first_boot)
    broker = MessageBroker(journal_path=journal_path)
    manager = AgentManager(app.db, broker, email=EmailTransport())
    engine = install_workflow_support(
        app, dispatcher=manager, install_datamodel=first_boot
    )
    manager.attach_engine(engine)
    if first_boot:
        add_experiment_type(app.db, "Assay", [])
        add_sample_type(app.db, "Readout", [])
        declare_experiment_io(app.db, "Assay", "Readout", "output")
        register_agent(app.db, AgentSpec("assay-bot", "robot"))
        authorize_agent(app.db, "assay-bot", "Assay")
        pattern = (
            PatternBuilder("durable_assay")
            .task("assay", experiment_type="Assay")
            .build(db=app.db)
        )
        save_pattern(app.db, pattern)
    robot = LiquidHandlingRobotAgent(
        AgentSpec("assay-bot-client", "robot", queue="agent.assay-bot"),
        broker,
        produces=[{"sample_type": "Readout", "name_prefix": "readout"}],
    )
    return app, broker, manager, engine, robot


def crash(app, broker) -> None:
    """Drop everything on the floor (only the durable files survive)."""
    app.db.close()
    broker.close()


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        wal_path = Path(tmp) / "lims.wal"
        journal_path = Path(tmp) / "broker.journal"

        print("== boot 1: start a workflow, crash before the robot runs ==")
        app, broker, manager, engine, robot = boot(
            wal_path, journal_path, first_boot=True
        )
        workflow = engine.start_workflow("durable_assay")
        workflow_id = workflow["workflow_id"]
        for request in engine.pending_authorizations():
            engine.respond_authorization(request["auth_id"], True, "pi")
        print(f"   dispatched; queue depth = "
              f"{broker.queue_depth('agent.assay-bot')}")
        crash(app, broker)

        print("== boot 2: recover; the robot finds its queued work ==")
        app, broker, manager, engine, robot = boot(
            wal_path, journal_path, first_boot=False
        )
        view = engine.workflow_view(workflow_id)
        print(f"   recovered workflow status: {view.status}, "
              f"assay task: {view.tasks['assay'].state}")
        robot.run_until_idle()  # robot works; result queued for manager
        print("   robot done; crash again before the manager pumps")
        crash(app, broker)

        print("== boot 3: recover; the result is applied ==")
        app, broker, manager, engine, robot = boot(
            wal_path, journal_path, first_boot=False
        )
        run_until_quiescent(manager, [robot])
        view = engine.workflow_view(workflow_id)
        print(f"   workflow status: {view.status}")
        readouts = app.db.select("Sample")
        print(f"   readouts: {[row['name'] for row in readouts]}")
        assert view.status == "completed"
        assert len(readouts) == 1  # nothing lost, nothing duplicated

        size_before = app.db.wal_info()["size_bytes"]
        records = app.db.checkpoint()
        print(f"== checkpoint: WAL {size_before} -> "
              f"{app.db.wal_info()['size_bytes']} bytes ({records} records) ==")
        crash(app, broker)

        app, broker, manager, engine, robot = boot(
            wal_path, journal_path, first_boot=False
        )
        print(f"   post-checkpoint boot sees status: "
              f"{engine.workflow_view(workflow_id).status}")
        assert engine.workflow_view(workflow_id).status == "completed"


if __name__ == "__main__":
    main()
