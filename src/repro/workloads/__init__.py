"""workloads — evaluation support for the benchmark harness.

* :mod:`~repro.workloads.costmodel` — the calibrated latency model that
  converts operation counts (DB reads/writes, persistent sends, emails,
  filter/servlet invocations) into modeled response times, reproducing
  the shape of the paper's §5.2 evaluation on a simulator substrate;
* :mod:`~repro.workloads.protein` — the protein-creation workflow of
  Fig. 1, fully wired with robot/program/human agents;
* :mod:`~repro.workloads.generator` — synthetic labs, patterns and
  agent fleets with parameterisable topology (fan-out, chain length,
  failure rates) for the ablation benchmarks;
* :mod:`~repro.workloads.requests` — the standard request mix behind
  the paper's "various workflow and non-workflow related requests".
"""

from repro.workloads.costmodel import CostModel, RequestCost, measure_request
from repro.workloads.generator import SyntheticLab
from repro.workloads.protein import ProteinLab, build_protein_lab
from repro.workloads.requests import EvaluationFixture, build_fixture

__all__ = [
    "CostModel",
    "RequestCost",
    "measure_request",
    "SyntheticLab",
    "ProteinLab",
    "build_protein_lab",
    "EvaluationFixture",
    "build_fixture",
]
