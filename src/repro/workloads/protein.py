"""The protein-creation workflow of Fig. 1, fully wired.

Topology (tasks → experiment types):

* ``pcr`` (Pcr, robot, 2 default instances) and ``digestion``
  (Digestion, robot) run in parallel and join into ``ligation``
  (Ligation, robot), which feeds ``transformation`` (Transformation,
  robot);
* transformation branches conditionally — many colonies go to
  ``pcr_screening`` (PcrScreening, analysis program), few to
  ``miniprep`` (Miniprep, robot); both branches rejoin into the nested
  ``protein_production`` sub-workflow (``expression`` → ``purification``,
  robots), which is the authorized final task;
* data flows: PcrProduct and DigestProduct into ligation,
  LigationProduct into transformation, Colony into the branch tasks,
  PlasmidDna into protein production, ExpressedProtein inside the child,
  PurifiedProtein out of it.  Pcr and Digestion consume stock Primer and
  Vector samples supplied by the lab.

``build_protein_lab`` assembles the whole system — Exp-DB, broker,
agents, patterns, stock samples — behind one seed, so every run of the
example/benchmark is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents import (
    AgentManager,
    AnalysisProgramAgent,
    EmailTransport,
    HumanTechnicianAgent,
    LiquidHandlingRobotAgent,
    TemplateAgent,
    run_until_quiescent,
)
from repro.core import PatternBuilder, WorkflowBean, install_workflow_support
from repro.core.persistence import authorize_agent, register_agent, save_pattern
from repro.core.spec import AgentSpec
from repro.messaging import MessageBroker
from repro.minidb.schema import Column
from repro.obs import ObservabilityHub, install_observability
from repro.minidb.types import ColumnType
from repro.resilience import Clock, FaultPlan, RetryPolicy
from repro.weblims import ExpDB, build_expdb
from repro.weblims.schema_setup import (
    add_experiment_type,
    add_sample_type,
    declare_experiment_io,
)

#: (experiment type, child-table columns) of the protein lab.
EXPERIMENT_TYPES = {
    "Pcr": [Column("cycles", ColumnType.INTEGER)],
    "Digestion": [Column("enzyme", ColumnType.TEXT)],
    "Ligation": [Column("ratio", ColumnType.REAL)],
    "Transformation": [Column("colonies", ColumnType.INTEGER)],
    "PcrScreening": [Column("score", ColumnType.REAL)],
    "Miniprep": [Column("yield_ug", ColumnType.REAL)],
    "Expression": [Column("induction_hours", ColumnType.INTEGER)],
    "Purification": [Column("purity", ColumnType.REAL)],
}

#: (sample type, child-table columns).
SAMPLE_TYPES = {
    "Primer": [Column("sequence", ColumnType.TEXT)],
    "Vector": [Column("resistance", ColumnType.TEXT)],
    "PcrProduct": [Column("length_bp", ColumnType.INTEGER)],
    "DigestProduct": [],
    "LigationProduct": [],
    "Colony": [],
    "PlasmidDna": [Column("concentration", ColumnType.REAL)],
    "ExpressedProtein": [],
    "PurifiedProtein": [Column("purity", ColumnType.REAL)],
}

#: (experiment type, sample type, direction) declarations.
TYPE_IO = [
    ("Pcr", "Primer", "input"),
    ("Pcr", "PcrProduct", "output"),
    ("Digestion", "Vector", "input"),
    ("Digestion", "DigestProduct", "output"),
    ("Ligation", "PcrProduct", "input"),
    ("Ligation", "DigestProduct", "input"),
    ("Ligation", "LigationProduct", "output"),
    ("Transformation", "LigationProduct", "input"),
    ("Transformation", "Colony", "output"),
    ("PcrScreening", "Colony", "input"),
    ("PcrScreening", "PlasmidDna", "output"),
    ("Miniprep", "Colony", "input"),
    ("Miniprep", "PlasmidDna", "output"),
    ("Expression", "PlasmidDna", "input"),
    ("Expression", "ExpressedProtein", "output"),
    ("Purification", "ExpressedProtein", "input"),
    ("Purification", "PurifiedProtein", "output"),
]

#: Branch threshold: at or above goes to PCR screening, below to miniprep.
COLONY_THRESHOLD = 20


@dataclass
class ProteinLab:
    """Everything needed to run protein-creation workflows."""

    app: ExpDB
    engine: WorkflowBean
    broker: MessageBroker
    manager: AgentManager
    email: EmailTransport
    agents: list[TemplateAgent] = field(default_factory=list)
    technician: HumanTechnicianAgent | None = None
    #: Unified tracing + metrics across every tier (repro.obs).
    obs: ObservabilityHub | None = None
    #: Fault plan attached across WAL, broker, manager and agents.
    faults: FaultPlan | None = None

    def attach_faults(self, plan: FaultPlan | None) -> None:
        """(Re)attach a fault plan to every injection point in the lab."""
        self.faults = plan
        self.app.db.attach_faults(plan)
        self.broker.attach_faults(plan)
        self.manager.faults = plan
        for agent in self.agents:
            agent.faults = plan

    def run_messages(self) -> int:
        """Drive the asynchronous system to quiescence."""
        return run_until_quiescent(self.manager, self.agents)

    def approve_all_authorizations(self, by: str = "technician") -> int:
        """Grant every pending authorization (the impatient PI mode)."""
        approved = 0
        while True:
            pending = self.engine.pending_authorizations()
            if not pending:
                return approved
            for request in pending:
                self.engine.respond_authorization(
                    request["auth_id"], True, decided_by=by
                )
                approved += 1
            self.run_messages()

    def run_to_completion(self, workflow_id: int, max_rounds: int = 50) -> str:
        """Pump messages and approve authorizations until the workflow
        leaves the running state; returns the final status."""
        for __ in range(max_rounds):
            self.run_messages()
            workflow = self.app.db.get("Workflow", workflow_id)
            if workflow["status"] != "running":
                return workflow["status"]
            if not self.approve_all_authorizations():
                self.run_messages()
        return self.app.db.get("Workflow", workflow_id)["status"]


def install_protein_schema(app: ExpDB) -> None:
    """Register the protein lab's experiment and sample types."""
    for type_name, columns in EXPERIMENT_TYPES.items():
        add_experiment_type(app.db, type_name, columns)
    for type_name, columns in SAMPLE_TYPES.items():
        add_sample_type(app.db, type_name, columns)
    for experiment_type, sample_type, direction in TYPE_IO:
        declare_experiment_io(app.db, experiment_type, sample_type, direction)


def seed_stock_samples(app: ExpDB, primers: int = 3, vectors: int = 2) -> None:
    """Supply the stock Primer and Vector samples Pcr/Digestion consume."""
    for index in range(primers):
        row = app.db.insert(
            "Sample",
            {
                "type_name": "Primer",
                "name": f"primer-{index + 1}",
                "quality": round(0.85 + 0.05 * (index % 3), 2),
            },
        )
        app.db.insert(
            "Primer",
            {"sample_id": row["sample_id"], "sequence": "ATCG" * (index + 4)},
        )
    for index in range(vectors):
        row = app.db.insert(
            "Sample",
            {
                "type_name": "Vector",
                "name": f"vector-{index + 1}",
                "quality": 0.9,
            },
        )
        app.db.insert(
            "Vector",
            {"sample_id": row["sample_id"], "resistance": "ampicillin"},
        )


def build_protein_patterns(app: ExpDB) -> None:
    """Define and store the Fig. 1 patterns (child first)."""
    production = (
        PatternBuilder("protein_production", "nested production stage")
        .task("expression", experiment_type="Expression")
        .task("purification", experiment_type="Purification")
        .flow("expression", "purification")
        .data("expression", "purification", sample_type="ExpressedProtein")
        .build(db=app.db)
    )
    save_pattern(app.db, production)

    creation = (
        PatternBuilder("protein_creation", "Fig. 1 protein creation")
        .task("pcr", experiment_type="Pcr", default_instances=2)
        .task("digestion", experiment_type="Digestion")
        .task("ligation", experiment_type="Ligation")
        .task("transformation", experiment_type="Transformation")
        .task("pcr_screening", experiment_type="PcrScreening")
        .task("miniprep", experiment_type="Miniprep")
        .task("protein_production", subworkflow="protein_production")
        .flow("pcr", "ligation")
        .flow("digestion", "ligation")
        .data("pcr", "ligation", sample_type="PcrProduct")
        .data("digestion", "ligation", sample_type="DigestProduct")
        .flow("ligation", "transformation")
        .data("ligation", "transformation", sample_type="LigationProduct")
        .flow(
            "transformation",
            "pcr_screening",
            condition=f"experiment.colonies >= {COLONY_THRESHOLD}",
        )
        .data(
            "transformation",
            "pcr_screening",
            sample_type="Colony",
            condition=f"experiment.colonies >= {COLONY_THRESHOLD}",
        )
        .flow(
            "transformation",
            "miniprep",
            condition=f"experiment.colonies < {COLONY_THRESHOLD}",
        )
        .data(
            "transformation",
            "miniprep",
            sample_type="Colony",
            condition=f"experiment.colonies < {COLONY_THRESHOLD}",
        )
        .flow("pcr_screening", "protein_production")
        .flow("miniprep", "protein_production")
        .data("pcr_screening", "protein_production", sample_type="PlasmidDna")
        .data("miniprep", "protein_production", sample_type="PlasmidDna")
        .build(db=app.db, registry={"protein_production": production})
    )
    save_pattern(app.db, creation)


def build_protein_agents(
    lab: ProteinLab, seed: int, failure_rate: float, colonies: int | None
) -> None:
    """Create and authorize the agent fleet.

    ``colonies`` forces the transformation robot's colony count (to pin
    the branch taken); ``None`` draws it from the seeded RNG.
    """
    app, broker = lab.app, lab.broker

    def robot(
        name: str,
        experiment_type: str,
        produces: list[dict],
        result_fields: dict | None = None,
        failure: float | None = None,
    ) -> LiquidHandlingRobotAgent:
        spec = AgentSpec(name, "robot")
        register_agent(app.db, spec)
        authorize_agent(app.db, name, experiment_type)
        agent = LiquidHandlingRobotAgent(
            spec,
            broker,
            produces=produces,
            failure_rate=failure if failure is not None else failure_rate,
            seed=seed,
            result_fields=result_fields or {},
        )
        lab.agents.append(agent)
        return agent

    robot(
        "pcr-bot",
        "Pcr",
        [{
            "sample_type": "PcrProduct",
            "name_prefix": "pcrprod",
            "values": {"length_bp": lambda rng: rng.randint(800, 1600)},
        }],
        result_fields={"cycles": 30},
    )
    robot(
        "digest-bot",
        "Digestion",
        [{"sample_type": "DigestProduct", "name_prefix": "digest"}],
        result_fields={"enzyme": "EcoRI"},
    )
    robot(
        "ligate-bot",
        "Ligation",
        [{"sample_type": "LigationProduct", "name_prefix": "lig"}],
        result_fields={"ratio": 3.0},
    )
    robot(
        "transform-bot",
        "Transformation",
        [{"sample_type": "Colony", "name_prefix": "colony"}],
        result_fields={
            "colonies": (lambda rng: rng.randint(5, 40))
            if colonies is None
            else colonies
        },
        failure=0.0,  # transformation must land to exercise the branch
    )
    robot(
        "miniprep-bot",
        "Miniprep",
        [{
            "sample_type": "PlasmidDna",
            "name_prefix": "plasmid",
            "values": {"concentration": lambda rng: round(rng.uniform(0.4, 1.2), 3)},
        }],
        result_fields={"yield_ug": lambda rng: round(rng.uniform(2.0, 8.0), 2)},
    )
    robot(
        "express-bot",
        "Expression",
        [{"sample_type": "ExpressedProtein", "name_prefix": "expr"}],
        result_fields={"induction_hours": 4},
    )
    robot(
        "purify-bot",
        "Purification",
        [{
            "sample_type": "PurifiedProtein",
            "name_prefix": "pure",
            "values": {"purity": lambda rng: round(rng.uniform(0.9, 0.99), 3)},
        }],
        result_fields={"purity": lambda rng: round(rng.uniform(0.9, 0.99), 3)},
    )

    # PCR screening is an analysis program, not a wet-lab robot.
    screening_spec = AgentSpec("screening-blast", "program")
    register_agent(app.db, screening_spec)
    authorize_agent(app.db, "screening-blast", "PcrScreening")
    lab.agents.append(
        AnalysisProgramAgent(
            screening_spec,
            broker,
            produces=[{"sample_type": "PlasmidDna", "name_prefix": "plasmid"}],
        )
    )

    technician_spec = AgentSpec("technician", "human", contact="tech@lab.example")
    register_agent(app.db, technician_spec)
    lab.technician = HumanTechnicianAgent(technician_spec, broker, lab.email)
    lab.agents.append(lab.technician)


def build_protein_lab(
    seed: int = 7,
    failure_rate: float = 0.0,
    colonies: int | None = 25,
    wal_path: str | None = None,
    journal_path: str | None = None,
    observability: bool = True,
    clock: Clock | None = None,
    fault_plan: FaultPlan | None = None,
    retry_policy: RetryPolicy | None = None,
    lease_ttl_s: float = 300.0,
    max_redispatches: int = 1,
    sync_policy: str = "always",
    group_window_s: float = 0.0,
    profiling: bool = False,
    slos=(),
    sampler: bool = False,
    witness: bool = False,
    watch: bool = False,
    watch_rules=(),
    stuck_policy=None,
    telemetry_path: str | None = None,
) -> ProteinLab:
    """Assemble the complete protein lab.

    ``colonies=25`` (the default) takes the PCR-screening branch;
    ``colonies=10`` takes miniprep; ``colonies=None`` lets the seeded
    RNG decide.  ``failure_rate`` injects robot failures to exercise
    retries and multi-instance behaviour.  ``observability`` installs
    the ``repro.obs`` hub across every tier (``lab.obs``), including
    the ``/workflow/metrics`` exposition endpoint.

    The resilience knobs feed chaos testing: ``clock`` (typically a
    ``ManualClock``) drives broker backoff and agent leases without
    wall-clock sleeps; ``fault_plan`` is attached across WAL, broker,
    manager and agents; ``retry_policy`` overrides the broker-wide
    delivery policy; ``lease_ttl_s``/``max_redispatches`` configure
    the liveness sweep.  ``sync_policy``/``group_window_s`` select the
    durability discipline for both the WAL and the broker journal
    (``"group"`` shares fsync barriers between concurrent committers).

    ``profiling`` (requires ``observability``) turns on the
    ``repro.obs.prof`` layer — latency attribution, lock contention
    profiling, exemplars, slow-trace retention and (with ``slos``,
    an iterable of :class:`~repro.obs.prof.slo.SLOPolicy`) burn-rate
    tracking; ``sampler`` additionally starts the collapsed-stack
    wall-clock sampler thread; ``witness`` attaches a
    :class:`~repro.obs.prof.witness.LockOrderWitness` to the profiled
    locks, asserting observed acquisition order against conlint's
    static lock graph (``lab.obs.profiler.witness.check()``).

    ``watch`` (requires ``observability``) installs the
    ``repro.obs.watch`` layer — state-residency tracking with
    stuck-instance detection (tuned by ``stuck_policy``), the alert
    engine (stock rules plus ``watch_rules``), the per-instance flight
    recorder and, when ``telemetry_path`` is given, a JSON-lines
    telemetry sink for alert transitions and metrics snapshots.
    """
    app = build_expdb(
        wal_path=wal_path,
        sync_policy=sync_policy,
        group_window_s=group_window_s,
    )
    broker = MessageBroker(
        journal_path=journal_path,
        clock=clock,
        default_retry_policy=retry_policy,
        sync_policy=sync_policy,
        group_window_s=group_window_s,
    )
    email = EmailTransport()
    manager = AgentManager(
        app.db,
        broker,
        email=email,
        clock=clock,
        lease_ttl_s=lease_ttl_s,
        max_redispatches=max_redispatches,
    )
    engine = install_workflow_support(app, dispatcher=manager)
    manager.attach_engine(engine)
    lab = ProteinLab(
        app=app,
        engine=engine,
        broker=broker,
        manager=manager,
        email=email,
    )
    install_protein_schema(app)
    seed_stock_samples(app)
    build_protein_patterns(app)
    build_protein_agents(lab, seed=seed, failure_rate=failure_rate, colonies=colonies)
    if fault_plan is not None:
        lab.attach_faults(fault_plan)
    if observability:
        lab.obs = install_observability(
            expdb=app,
            engine=engine,
            broker=broker,
            manager=manager,
            agents=lab.agents,
            email=email,
        )
        if profiling:
            from repro.obs.prof import install_profiling

            install_profiling(
                lab.obs,
                db=app.db,
                broker=broker,
                slos=slos,
                sampler=sampler,
                witness=witness,
            )
        if watch:
            from repro.obs.watch import install_watch

            install_watch(
                lab.obs,
                expdb=app,
                engine=engine,
                broker=broker,
                manager=manager,
                rules=watch_rules,
                stuck_policy=stuck_policy,
                telemetry_path=telemetry_path,
                clock=clock,
            )
    return lab
