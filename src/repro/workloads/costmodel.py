"""The calibrated latency cost model.

The paper's evaluation ran on a 2006 Tomcat + PostgreSQL + OpenJMS
deployment we cannot rerun; its quantitative claims are about *where
time goes*: response times of 400–2000 ms, dominated by database read
and write accesses, with "little time ... spent in the WorkflowFilter,
WorkflowServlet or WorkflowBean" and "some time overhead" for persistent
message sends.

Our substrate counts every one of those operations natively
(``db.stats``, ``broker.stats``, ``container.stats``), so the model
simply charges a per-operation latency, calibrated so the paper's
request mix lands in the reported band:

===========================  ======  =============================
operation                    cost    rationale (2006-era numbers)
===========================  ======  =============================
fixed per-request overhead   390 ms  HTTP parsing, JSP page
                                     rendering, client round trip
                                     (the paper's observed floor for
                                     even read-only requests)
database read statement      8 ms    LAN round trip + buffer read
database write statement     12 ms   read cost + WAL fsync
persistent message send      40 ms   JMS store-and-forward commit
email notification           25 ms   SMTP handoff
filter/servlet invocation    0.05 ms in-JVM call
engine (WorkflowBean) check  0.5 ms  in-JVM graph evaluation
===========================  ======  =============================

The *ordering* and *dominance* findings are insensitive to the exact
constants — that insensitivity is itself asserted by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.messaging.broker import MessageBroker
from repro.minidb.engine import Database
from repro.weblims.container import WebContainer


@dataclass(frozen=True)
class CostModel:
    """Per-operation latencies in milliseconds."""

    request_overhead_ms: float = 390.0
    db_read_ms: float = 8.0
    db_write_ms: float = 12.0
    persistent_send_ms: float = 40.0
    transient_send_ms: float = 2.0
    email_ms: float = 25.0
    filter_invocation_ms: float = 0.05
    servlet_invocation_ms: float = 0.05
    engine_check_ms: float = 0.5


@dataclass
class RequestCost:
    """Modeled latency breakdown for one request (all milliseconds)."""

    db_reads: int = 0
    db_writes: int = 0
    #: Writes to the ``WFAudit`` provenance table, accounted separately:
    #: the 2006 deployment the band is calibrated against had no audit
    #: trail, so these appear in :meth:`breakdown` but not in
    #: :attr:`total_ms`.
    audit_writes: int = 0
    messages_sent: int = 0
    persistent_sends: int = 0
    emails_sent: int = 0
    filter_invocations: int = 0
    servlet_invocations: int = 0
    engine_checks: int = 0
    model: CostModel = field(default_factory=CostModel)

    @property
    def db_ms(self) -> float:
        """Time attributed to database accesses."""
        return (
            self.db_reads * self.model.db_read_ms
            + self.db_writes * self.model.db_write_ms
        )

    @property
    def messaging_ms(self) -> float:
        """Time attributed to the persistent message queue."""
        transient = self.messages_sent - self.persistent_sends
        return (
            self.persistent_sends * self.model.persistent_send_ms
            + transient * self.model.transient_send_ms
            + self.emails_sent * self.model.email_ms
        )

    @property
    def web_cpu_ms(self) -> float:
        """Time attributed to filter + servlet + bean CPU."""
        return (
            self.filter_invocations * self.model.filter_invocation_ms
            + self.servlet_invocations * self.model.servlet_invocation_ms
            + self.engine_checks * self.model.engine_check_ms
        )

    @property
    def audit_ms(self) -> float:
        """Time attributed to durable audit-trail writes (reported
        separately; not part of the paper-comparable total)."""
        return self.audit_writes * self.model.db_write_ms

    @property
    def overhead_ms(self) -> float:
        """Fixed per-request cost (HTTP + page rendering + round trip)."""
        return self.model.request_overhead_ms

    @property
    def total_ms(self) -> float:
        """Modeled end-to-end response time."""
        return (
            self.overhead_ms + self.db_ms + self.messaging_ms + self.web_cpu_ms
        )

    def breakdown(self) -> dict[str, float]:
        """Component → milliseconds, for reporting."""
        return {
            "overhead": round(self.overhead_ms, 3),
            "database": round(self.db_ms, 3),
            "messaging": round(self.messaging_ms, 3),
            "web_cpu": round(self.web_cpu_ms, 3),
            "audit": round(self.audit_ms, 3),
            "total": round(self.total_ms, 3),
        }


def measure_request(
    db: Database,
    container: WebContainer,
    broker: MessageBroker | None,
    operation: Callable[[], Any],
    model: CostModel | None = None,
    email_counter: Callable[[], int] | None = None,
    engine_events: Callable[[], int] | None = None,
) -> tuple[Any, RequestCost]:
    """Run ``operation`` and attribute its operation counts to a cost.

    Returns ``(operation result, RequestCost)``.  ``email_counter`` and
    ``engine_events`` are optional thunks returning monotone counters
    (emails sent; engine checks performed) sampled before and after.
    """
    model = model or CostModel()
    db_before = db.stats.snapshot()
    web_before_filters = container.stats.filter_invocations
    web_before_servlets = container.stats.servlet_invocations
    broker_sends_before = broker.stats.sends if broker else 0
    broker_persistent_before = broker.stats.persistent_sends if broker else 0
    emails_before = email_counter() if email_counter else 0
    engine_before = engine_events() if engine_events else 0

    result = operation()

    db_delta = db.stats.snapshot().delta(db_before)
    audit_writes = db_delta.per_table_writes.get("WFAudit", 0)
    cost = RequestCost(
        db_reads=db_delta.reads,
        db_writes=db_delta.writes - audit_writes,
        audit_writes=audit_writes,
        messages_sent=(broker.stats.sends - broker_sends_before) if broker else 0,
        persistent_sends=(
            broker.stats.persistent_sends - broker_persistent_before
        )
        if broker
        else 0,
        emails_sent=(email_counter() - emails_before) if email_counter else 0,
        filter_invocations=container.stats.filter_invocations
        - web_before_filters,
        servlet_invocations=container.stats.servlet_invocations
        - web_before_servlets,
        engine_checks=(engine_events() - engine_before) if engine_events else 0,
        model=model,
    )
    return result, cost
