"""The standard request mix behind the paper's evaluation (§5.2).

"We evaluated the performance of the system for various operations
including various workflow and non-workflow related requests."  The
:class:`EvaluationFixture` prepares a protein lab and exposes one
operation per row of the E1 table, each issuing a real HTTP request
through the web container (so filters, servlets and the engine all run).

Operations needing state (an undecided instance, a pending
authorization) split into an unmeasured *prepare* step and the measured
request itself, so the reported cost is that of the single user request,
exactly as the paper measures response times.

==============================  ==============================================
operation                       what it exercises
==============================  ==============================================
``read_experiments``            non-workflow read (filter passes through)
``read_type_table``             non-workflow read over a type table (merged)
``insert_stock_sample``         workflow-relevant insert (pre+postprocess)
``insert_standalone_experiment``insert into an experiment-type table: the
                                paper's "simple insert ... can trigger
                                several database reads" case
``start_workflow_request``      mode-(b) processing: instantiation + initial
                                dispatches over the persistent queue
``complete_instance_request``   mode-(b): a human enters results via the web
                                interface, triggering eligibility checks and
                                downstream dispatch
``authorize_request``           mode-(b): an authorization decision that
                                activates the gated task
==============================  ==============================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable

from repro.weblims.http import HttpResponse
from repro.workloads.costmodel import CostModel, RequestCost, measure_request
from repro.workloads.protein import ProteinLab, build_protein_lab

Operation = Callable[[], HttpResponse]


@dataclass
class EvaluationFixture:
    """A protein lab plus the standard operation mix."""

    lab: ProteinLab
    model: CostModel

    #: The operations reported in the E1 response-time table.
    OPERATION_MIX = (
        "read_experiments",
        "read_type_table",
        "insert_stock_sample",
        "insert_standalone_experiment",
        "start_workflow_request",
        "complete_instance_request",
        "authorize_request",
    )

    # ------------------------------------------------------------------
    # Operation factories: prepare state (unmeasured), return the thunk
    # ------------------------------------------------------------------

    def build_operation(self, name: str) -> Operation:
        """Prepare any needed state and return the measurable request."""
        factory = getattr(self, f"op_{name}", None)
        if factory is None:
            raise ValueError(f"unknown operation {name!r}")
        return factory()

    def op_read_experiments(self) -> Operation:
        """GET all experiments (non-workflow read)."""
        return lambda: self.lab.app.get(
            "/user", action="read", table="Experiment"
        )

    def op_read_type_table(self) -> Operation:
        """GET a type table (merged parent/child read)."""
        return lambda: self.lab.app.get("/user", action="read", table="Pcr")

    def op_insert_stock_sample(self) -> Operation:
        """POST a new stock sample (workflow-relevant table)."""
        return lambda: self.lab.app.post(
            "/user",
            action="insert",
            table="Sample",
            v_type_name="Primer",
            v_name="extra-primer",
            v_quality="0.88",
        )

    def op_insert_standalone_experiment(self) -> Operation:
        """POST an experiment-type insert outside any workflow."""
        return lambda: self.lab.app.post(
            "/user",
            action="insert",
            table="Digestion",
            v_enzyme="BamHI",
            v_status="done",
        )

    def op_start_workflow_request(self) -> Operation:
        """POST a workflow instantiation (filter mode b)."""
        return lambda: self.lab.app.post(
            "/user",
            workflow_action="start",
            pattern="protein_creation",
        )

    def op_complete_instance_request(self) -> Operation:
        """POST human-entered results for a waiting instance (mode b)."""
        workflow = self.lab.engine.start_workflow("protein_creation")
        view = self.lab.engine.workflow_view(workflow["workflow_id"])
        undecided = [
            instance
            for instance in view.tasks["pcr"].instances
            if not instance.decided
        ]
        target = undecided[0].experiment_id
        outputs = json.dumps(
            [{"sample_type": "PcrProduct", "name": "web-pcr", "quality": 0.9}]
        )
        return lambda: self.lab.app.post(
            "/user",
            workflow_action="complete_instance",
            experiment_id=str(target),
            success="true",
            outputs=outputs,
        )

    def op_authorize_request(self) -> Operation:
        """POST an authorization decision (mode b)."""
        workflow = self.lab.engine.start_workflow("protein_creation")
        self.lab.run_messages()
        pending = self.lab.engine.pending_authorizations(
            workflow["workflow_id"]
        )
        if not pending:  # pragma: no cover - protein flow always gates
            pending = self.lab.engine.pending_authorizations()
        auth_id = pending[0]["auth_id"]
        return lambda: self.lab.app.post(
            "/user",
            workflow_action="authorize",
            auth_id=str(auth_id),
            approve="true",
            by="fixture",
        )

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def measure(self, operation_name: str) -> tuple[HttpResponse, RequestCost]:
        """Run one named operation under the cost model (prep excluded)."""
        operation = self.build_operation(operation_name)
        return measure_request(
            self.lab.app.db,
            self.lab.app.container,
            self.lab.broker,
            operation,
            model=self.model,
            email_counter=lambda: self.lab.email.sent_count,
            engine_events=lambda: self.lab.engine.check_count,
        )

    def measure_mix(self) -> dict[str, tuple[HttpResponse, RequestCost]]:
        """Measure every operation in the mix once."""
        return {name: self.measure(name) for name in self.OPERATION_MIX}


def build_fixture(
    seed: int = 7,
    colonies: int = 25,
    model: CostModel | None = None,
    journal_path: str | None = None,
) -> EvaluationFixture:
    """A fresh evaluation fixture over a protein lab."""
    lab = build_protein_lab(
        seed=seed, colonies=colonies, journal_path=journal_path
    )
    return EvaluationFixture(lab=lab, model=model or CostModel())
