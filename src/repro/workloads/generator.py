"""Synthetic labs with parameterisable topology.

The ablation benchmarks need workflows whose shape is a knob: chain
length, join fan-in, default instance counts, robot failure rates.
:class:`SyntheticLab` provides a lab with ``stages`` generic experiment
types (``Stage0`` … ``StageN``), each consuming the previous stage's
material sample type and producing its own, plus pattern factories for
the standard shapes:

* :meth:`chain_pattern` — ``Stage0 → Stage1 → … → StageK``;
* :meth:`fanout_pattern` — one source, ``width`` parallel middle tasks,
  one joining sink (the E3 insert-amplification workload);
* :meth:`retry_pattern` — a single-stage pattern whose task carries a
  default instance count, run against failing robots (the A2
  multi-instance ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents import (
    AgentManager,
    EmailTransport,
    LiquidHandlingRobotAgent,
    TemplateAgent,
    run_until_quiescent,
)
from repro.core import PatternBuilder, WorkflowBean, install_workflow_support
from repro.core.persistence import authorize_agent, register_agent, save_pattern
from repro.core.spec import AgentSpec, WorkflowPattern
from repro.messaging import MessageBroker
from repro.minidb.schema import Column
from repro.minidb.types import ColumnType
from repro.weblims import ExpDB, build_expdb
from repro.weblims.schema_setup import (
    add_experiment_type,
    add_sample_type,
    declare_experiment_io,
)


@dataclass
class SyntheticLab:
    """A generic lab whose workflow topology is parameterisable."""

    app: ExpDB
    engine: WorkflowBean
    broker: MessageBroker
    manager: AgentManager
    email: EmailTransport
    stages: int
    seed: int
    agents: list[TemplateAgent] = field(default_factory=list)
    _pattern_counter: int = 0

    # ------------------------------------------------------------------
    # Pattern factories
    # ------------------------------------------------------------------

    def _fresh_name(self, prefix: str) -> str:
        self._pattern_counter += 1
        return f"{prefix}-{self._pattern_counter}"

    def chain_pattern(
        self,
        length: int,
        default_instances: int = 1,
        name: str | None = None,
    ) -> WorkflowPattern:
        """A linear pipeline over the first ``length`` stages."""
        if not 1 <= length <= self.stages:
            raise ValueError(f"length must be in [1, {self.stages}]")
        builder = PatternBuilder(name or self._fresh_name("chain"))
        for index in range(length):
            builder.task(
                f"t{index}",
                experiment_type=f"Stage{index}",
                default_instances=default_instances,
            )
        for index in range(length - 1):
            builder.flow(f"t{index}", f"t{index + 1}")
            builder.data(
                f"t{index}", f"t{index + 1}", sample_type=f"Mat{index}"
            )
        pattern = builder.build(db=self.app.db)
        save_pattern(self.app.db, pattern)
        return pattern

    def fanout_pattern(
        self, width: int, name: str | None = None
    ) -> WorkflowPattern:
        """Source → ``width`` parallel Stage1 tasks → joining Stage2 sink."""
        if self.stages < 3:
            raise ValueError("fanout_pattern needs a lab with >= 3 stages")
        if width < 1:
            raise ValueError("width must be >= 1")
        builder = PatternBuilder(name or self._fresh_name("fanout"))
        builder.task("source", experiment_type="Stage0")
        for index in range(width):
            builder.task(f"mid{index}", experiment_type="Stage1")
            builder.flow("source", f"mid{index}")
            builder.data("source", f"mid{index}", sample_type="Mat0")
        builder.task("sink", experiment_type="Stage2")
        for index in range(width):
            builder.flow(f"mid{index}", "sink")
            builder.data(f"mid{index}", "sink", sample_type="Mat1")
        pattern = builder.build(db=self.app.db)
        save_pattern(self.app.db, pattern)
        return pattern

    def retry_pattern(
        self, default_instances: int, name: str | None = None
    ) -> WorkflowPattern:
        """One Stage0 task with ``default_instances`` parallel instances."""
        builder = PatternBuilder(name or self._fresh_name("retry"))
        builder.task(
            "only",
            experiment_type="Stage0",
            default_instances=default_instances,
        )
        pattern = builder.build(db=self.app.db)
        save_pattern(self.app.db, pattern)
        return pattern

    # ------------------------------------------------------------------
    # Execution helpers
    # ------------------------------------------------------------------

    def run_messages(self) -> int:
        """Drive the agent system to quiescence."""
        return run_until_quiescent(self.manager, self.agents)

    def run_to_completion(self, workflow_id: int, max_rounds: int = 100) -> str:
        """Pump and auto-approve until the workflow finishes."""
        for __ in range(max_rounds):
            self.run_messages()
            workflow = self.app.db.get("Workflow", workflow_id)
            if workflow["status"] != "running":
                return workflow["status"]
            pending = self.engine.pending_authorizations()
            if pending:
                for request in pending:
                    self.engine.respond_authorization(
                        request["auth_id"], True, decided_by="auto"
                    )
            else:
                self.run_messages()
                workflow = self.app.db.get("Workflow", workflow_id)
                if workflow["status"] != "running":
                    return workflow["status"]
        return self.app.db.get("Workflow", workflow_id)["status"]


# ---------------------------------------------------------------------------
# Pattern-only factories (no database, no agents)
# ---------------------------------------------------------------------------
#
# The static-analysis benchmarks need *specifications* at scales (5000
# tasks) where building a full lab — one child table per experiment type
# — would dwarf the thing being measured.  These factories produce bare
# ``WorkflowPattern`` objects; type-level checks are skipped because no
# database is supplied.


def synthetic_chain_pattern(
    length: int, default_instances: int = 1
) -> WorkflowPattern:
    """A linear ``t0 → t1 → … → t(length-1)`` pipeline."""
    if length < 1:
        raise ValueError("length must be >= 1")
    builder = PatternBuilder(f"synthetic-chain-{length}")
    for index in range(length):
        builder.task(
            f"t{index}",
            experiment_type=f"Stage{index}",
            default_instances=default_instances,
        )
    for index in range(length - 1):
        builder.flow(f"t{index}", f"t{index + 1}")
    return builder.build()


def synthetic_fanout_pattern(width: int) -> WorkflowPattern:
    """One source, ``width`` parallel middles, one joining sink."""
    if width < 1:
        raise ValueError("width must be >= 1")
    builder = PatternBuilder(f"synthetic-fanout-{width}")
    builder.task("source", experiment_type="Stage0")
    builder.task("sink", experiment_type="Stage2")
    for index in range(width):
        builder.task(f"mid{index}", experiment_type="Stage1")
        builder.flow("source", f"mid{index}")
        builder.flow(f"mid{index}", "sink")
    return builder.build()


def synthetic_branchy_pattern(diamonds: int) -> WorkflowPattern:
    """``diamonds`` chained branch-and-rejoin blocks with complementary
    guards — the shape that exercises the verifier's guard-assignment
    exploration (two guards per diamond)."""
    if diamonds < 1:
        raise ValueError("diamonds must be >= 1")
    builder = PatternBuilder(f"synthetic-branchy-{diamonds}")
    builder.task("s0", experiment_type="Stage0")
    for index in range(diamonds):
        threshold = 0.5
        builder.task(f"hi{index}", experiment_type="StageHi")
        builder.task(f"lo{index}", experiment_type="StageLo")
        builder.task(f"s{index + 1}", experiment_type="Stage0")
        builder.flow(
            f"s{index}",
            f"hi{index}",
            condition=f"experiment.reading >= {threshold}",
        )
        builder.flow(
            f"s{index}",
            f"lo{index}",
            condition=f"experiment.reading < {threshold}",
        )
        builder.flow(f"hi{index}", f"s{index + 1}")
        builder.flow(f"lo{index}", f"s{index + 1}")
    return builder.build()


def synthetic_patterns() -> list[WorkflowPattern]:
    """The default pattern set ``wfcheck synthetic`` analyses."""
    return [
        synthetic_chain_pattern(10),
        synthetic_fanout_pattern(8),
        synthetic_branchy_pattern(3),
    ]


def build_synthetic_lab(
    stages: int = 4,
    seed: int = 11,
    failure_rate: float = 0.0,
    stock_samples: int = 3,
    robots_per_stage: int = 1,
) -> SyntheticLab:
    """Assemble a synthetic lab with ``stages`` experiment types."""
    app = build_expdb()
    broker = MessageBroker()
    email = EmailTransport()
    manager = AgentManager(app.db, broker, email=email)
    engine = install_workflow_support(app, dispatcher=manager)
    manager.attach_engine(engine)
    lab = SyntheticLab(
        app=app,
        engine=engine,
        broker=broker,
        manager=manager,
        email=email,
        stages=stages,
        seed=seed,
    )

    add_sample_type(app.db, "RawMat", [Column("purity", ColumnType.REAL)])
    for index in range(stages):
        add_experiment_type(
            app.db,
            f"Stage{index}",
            [Column("reading", ColumnType.REAL)],
        )
        add_sample_type(app.db, f"Mat{index}", [])
        input_type = "RawMat" if index == 0 else f"Mat{index - 1}"
        declare_experiment_io(app.db, f"Stage{index}", input_type, "input")
        declare_experiment_io(app.db, f"Stage{index}", f"Mat{index}", "output")

    for index in range(stock_samples):
        row = app.db.insert(
            "Sample",
            {
                "type_name": "RawMat",
                "name": f"raw-{index + 1}",
                "quality": 0.8 + 0.05 * (index % 3),
            },
        )
        app.db.insert("RawMat", {"sample_id": row["sample_id"], "purity": 0.95})

    for index in range(stages):
        for robot_index in range(robots_per_stage):
            name = f"robot-s{index}-{robot_index}"
            spec = AgentSpec(name, "robot")
            register_agent(app.db, spec)
            authorize_agent(app.db, name, f"Stage{index}")
            lab.agents.append(
                LiquidHandlingRobotAgent(
                    spec,
                    broker,
                    produces=[{"sample_type": f"Mat{index}"}],
                    failure_rate=failure_rate,
                    seed=seed + index,
                    result_fields={
                        "reading": (lambda rng: round(rng.uniform(0, 1), 4))
                    },
                )
            )
    return lab
