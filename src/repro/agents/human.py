"""The human-technician agent.

Humans do not auto-execute: "A human being is informed via email, and
must then enter the results via the web interface."  This agent's
dispatch handling therefore only notifies the technician's mailbox and
parks the work; the actual results arrive through Exp-DB's web layer
(the WorkflowServlet's ``complete_instance`` action), which the examples
and tests drive explicitly.

Authorization requests are likewise surfaced by email; the technician
answers through the web interface or — to demonstrate the pure-messaging
path — via :meth:`respond_authorization`.
"""

from __future__ import annotations

from typing import Any

from repro.agents.base import TemplateAgent
from repro.agents.mailbox import EmailTransport
from repro.core.dispatch import KIND_AUTH_RESPONSE
from repro.core.spec import AgentSpec
from repro.messaging.broker import MessageBroker
from repro.messaging.message import Message
from repro.xmlbridge import RelationalDocument


class HumanTechnicianAgent(TemplateAgent):
    """A technician reachable by email, acting through the web UI."""

    kind = "human"

    def __init__(
        self,
        spec: AgentSpec,
        broker: MessageBroker,
        email: EmailTransport,
    ) -> None:
        super().__init__(spec, broker)
        self.email = email
        #: experiment_id → parsed task-input document, awaiting the human.
        self.worklist: dict[int, RelationalDocument] = {}
        #: pending authorization request headers.
        self.authorization_requests: list[dict[str, Any]] = []

    def _handle_dispatch(self, message: Message) -> None:
        experiment_id = int(message.headers["experiment_id"])
        if experiment_id in self.aborted:
            self.aborted.discard(experiment_id)
            return
        document = RelationalDocument.from_xml(message.body)
        self.worklist[experiment_id] = document
        self.email.send(
            self.spec.contact or self.spec.name,
            subject=f"[Exp-WF] experiment {experiment_id} assigned to you",
            body=(
                f"Task {message.headers.get('task')!r} of workflow "
                f"{message.headers.get('workflow_id')} needs to be performed "
                f"(experiment {experiment_id}).  Enter the results via the "
                "web interface when done."
            ),
        )

    def on_abort(self, experiment_id: int) -> None:
        super().on_abort(experiment_id)
        if experiment_id in self.worklist:
            del self.worklist[experiment_id]
            self.email.send(
                self.spec.contact or self.spec.name,
                subject=f"[Exp-WF] experiment {experiment_id} cancelled",
                body=f"Experiment {experiment_id} was aborted; disregard it.",
            )

    def on_authorization_request(self, message: Message) -> None:
        self.authorization_requests.append(dict(message.headers))
        # The AgentManager already emailed the contact; nothing more to
        # do until the human decides.

    def respond_authorization(self, auth_id: int, approve: bool) -> None:
        """Answer an authorization request over the message bus."""
        self.authorization_requests = [
            request
            for request in self.authorization_requests
            if int(request.get("auth_id", -1)) != auth_id
        ]
        self.producer.send(
            "",
            headers={
                "kind": KIND_AUTH_RESPONSE,
                "auth_id": auth_id,
                "approve": True if approve else False,
                "agent": self.spec.name,
            },
        )

    def take_work(self, experiment_id: int) -> RelationalDocument:
        """Remove and return a parked task (the human starts working)."""
        return self.worklist.pop(experiment_id)
