"""The simulated liquid-handling robot agent.

The paper: "we used the template agent class to build an agent to
represent an automated liquid handling robot used in one of the labs we
have been working with.  The only customization needed was the
specification of the robot's required input and output format, which was
of a typical comma-separated format."

This agent reproduces exactly that: :meth:`translate_input` renders the
XML task-input document to CSV (what the robot controller consumes);
:meth:`execute` simulates the robot run — deterministic under a seed,
with configurable failure injection so workloads can exercise the
multi-instance/retry machinery.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from repro.agents.base import AgentResult, TemplateAgent
from repro.core.spec import AgentSpec
from repro.errors import AgentFormatError
from repro.messaging.broker import MessageBroker
from repro.xmlbridge import RelationalDocument

#: CSV header the robot controller expects.
CSV_HEADER = "sample_id,sample_type,name,quality"


def document_to_csv(document: RelationalDocument) -> str:
    """Render a task-input document in the robot's CSV format.

    First line: ``# experiment,<id>,<task>``; second line: the sample
    header; then one line per candidate input sample.
    """
    experiment_id = document.attributes.get("experiment-id", "?")
    task = document.attributes.get("task", "?")
    lines = [f"# experiment,{experiment_id},{task}", CSV_HEADER]
    for table in document.tables():
        for row in document.rows(table):
            if "sample_id" not in row:
                continue  # the experiment record itself
            lines.append(
                ",".join(
                    "" if value is None else str(value)
                    for value in (
                        row.get("sample_id"),
                        row.get("type_name"),
                        row.get("name"),
                        row.get("quality"),
                    )
                )
            )
    return "\n".join(lines)


def parse_csv(csv_text: str) -> tuple[int, list[dict[str, Any]]]:
    """Parse the robot CSV back into (experiment_id, samples)."""
    lines = [line for line in csv_text.splitlines() if line.strip()]
    if len(lines) < 2 or not lines[0].startswith("# experiment,"):
        raise AgentFormatError("robot CSV lacks the experiment header line")
    try:
        experiment_id = int(lines[0].split(",")[1])
    except (IndexError, ValueError):
        raise AgentFormatError("robot CSV has a malformed experiment id") from None
    if lines[1] != CSV_HEADER:
        raise AgentFormatError(
            f"robot CSV header mismatch: {lines[1]!r} != {CSV_HEADER!r}"
        )
    samples = []
    for line in lines[2:]:
        parts = line.split(",")
        if len(parts) != 4:
            raise AgentFormatError(f"robot CSV row has {len(parts)} fields: {line!r}")
        samples.append(
            {
                "sample_id": int(parts[0]),
                "sample_type": parts[1],
                "name": parts[2] or None,
                "quality": float(parts[3]) if parts[3] else None,
            }
        )
    return experiment_id, samples


class LiquidHandlingRobotAgent(TemplateAgent):
    """A wet-lab robot: consumes CSV, pipettes, reports CSV-born results.

    ``produces`` lists the output samples of one successful run, e.g.
    ``[{"sample_type": "PcrProduct", "name_prefix": "pcr"}]``.  Output
    quality is drawn around ``base_quality`` plus a bonus from the best
    input quality; a run fails entirely with probability
    ``failure_rate``.  All randomness is seeded per experiment id, so
    reruns of a workload are reproducible.
    """

    kind = "robot"

    def __init__(
        self,
        spec: AgentSpec,
        broker: MessageBroker,
        produces: list[dict[str, Any]],
        failure_rate: float = 0.0,
        base_quality: float = 0.8,
        quality_spread: float = 0.05,
        inputs_to_use: int = 2,
        seed: int = 7,
        result_fields: dict[str, Any] | None = None,
    ) -> None:
        super().__init__(spec, broker)
        self.produces = produces
        self.failure_rate = failure_rate
        self.base_quality = base_quality
        self.quality_spread = quality_spread
        self.inputs_to_use = inputs_to_use
        self.seed = seed
        self.result_fields = result_fields or {}
        self.runs = 0
        self.failures = 0

    def translate_input(self, document: RelationalDocument) -> str:
        return document_to_csv(document)

    def execute(self, experiment_id: int, native: str) -> AgentResult:
        parsed_id, samples = parse_csv(native)
        if parsed_id != experiment_id:
            raise AgentFormatError(
                f"robot CSV is for experiment {parsed_id}, dispatched "
                f"{experiment_id}"
            )
        rng = random.Random(self.seed * 1_000_003 + experiment_id)
        self.runs += 1
        if rng.random() < self.failure_rate:
            self.failures += 1
            return AgentResult(
                success=False, note="robot run failed (insufficient yield)"
            )
        chosen = sorted(
            samples,
            key=lambda sample: sample["quality"] or 0.0,
            reverse=True,
        )[: self.inputs_to_use]
        input_bonus = 0.0
        if chosen:
            best = max(sample["quality"] or 0.0 for sample in chosen)
            input_bonus = 0.1 * best
        outputs = []
        for spec in self.produces:
            quality = rng.gauss(
                self.base_quality + input_bonus, self.quality_spread
            )
            quality = max(0.0, min(1.0, round(quality, 4)))
            prefix = spec.get("name_prefix", spec["sample_type"].lower())
            output: dict[str, Any] = {
                "sample_type": spec["sample_type"],
                "name": f"{prefix}-{experiment_id}",
                "quality": quality,
            }
            if spec.get("values"):
                output["values"] = {
                    column: value(rng) if callable(value) else value
                    for column, value in spec["values"].items()
                }
            outputs.append(output)
        result_values = {
            column: value(rng) if callable(value) else value
            for column, value in self.result_fields.items()
        }
        return AgentResult(
            success=True,
            outputs=outputs,
            chosen_input_ids=[sample["sample_id"] for sample in chosen],
            result_values=result_values,
            note=f"robot run ok ({len(chosen)} inputs)",
        )


# Re-exported type alias for workload code that parameterises robots.
ValueFactory = Callable[[random.Random], Any]
