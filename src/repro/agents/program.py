"""The analysis-program agent (the BLAST stand-in).

Scientific workflows feed wet-lab outputs into compute programs.  This
agent wraps such a program: deterministic, never flaky, scoring its
inputs with an injectable function.  The default scorer mimics a
sequence-analysis tool: the score improves with input quality and the
number of inputs considered.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.agents.base import AgentResult, TemplateAgent
from repro.core.spec import AgentSpec
from repro.messaging.broker import MessageBroker
from repro.xmlbridge import RelationalDocument

#: Signature of an analysis function: samples in, result columns out.
ComputeFunction = Callable[[list[dict[str, Any]]], dict[str, Any]]


def default_compute(samples: list[dict[str, Any]]) -> dict[str, Any]:
    """A BLAST-flavoured scorer: mean input quality, damped by count."""
    qualities = [s["quality"] for s in samples if s.get("quality") is not None]
    if not qualities:
        return {"score": 0.0}
    mean = sum(qualities) / len(qualities)
    score = round(mean * (1.0 - 0.5 ** len(qualities)) + 0.5 * mean, 4)
    return {"score": min(1.0, score)}


class AnalysisProgramAgent(TemplateAgent):
    """Wraps a compute program invoked on the forwarded input samples."""

    kind = "program"

    def __init__(
        self,
        spec: AgentSpec,
        broker: MessageBroker,
        compute: ComputeFunction | None = None,
        produces: list[dict[str, Any]] | None = None,
        require_inputs: bool = True,
    ) -> None:
        super().__init__(spec, broker)
        self.compute = compute or default_compute
        self.produces = produces or []
        self.require_inputs = require_inputs
        self.runs = 0

    def translate_input(
        self, document: RelationalDocument
    ) -> list[dict[str, Any]]:
        """Native format of a program: the list of input sample records."""
        samples = []
        for table in document.tables():
            for row in document.rows(table):
                if "sample_id" in row:
                    samples.append(row)
        return samples

    def execute(
        self, experiment_id: int, native: list[dict[str, Any]]
    ) -> AgentResult:
        self.runs += 1
        if self.require_inputs and not native:
            return AgentResult(success=False, note="no input data to analyse")
        result_values = self.compute(native)
        score = next(iter(result_values.values()), None)
        outputs = []
        for spec in self.produces:
            outputs.append(
                {
                    "sample_type": spec["sample_type"],
                    "name": f"{spec.get('name_prefix', 'result')}-{experiment_id}",
                    "quality": float(score) if isinstance(score, (int, float)) else None,
                    "values": dict(spec.get("values", {})),
                }
            )
        return AgentResult(
            success=True,
            outputs=outputs,
            chosen_input_ids=[row["sample_id"] for row in native],
            result_values=result_values,
            note=f"analysed {len(native)} sample(s)",
        )
