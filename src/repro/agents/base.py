"""The template agent class.

"Exp-WF provides a template agent class that provides all necessary
messaging functionality and provides several other helpful methods
including default message handling procedures, simplifying the creation
of a customized agent for an external instrument."

A concrete agent customises two hooks:

* :meth:`translate_input` — XML task-input document → the external
  system's native format (the robot's is CSV);
* :meth:`execute` — run the external system against the native input and
  return an :class:`AgentResult` (success flag, output samples, chosen
  inputs, result values).

Everything else — queue consumption, acknowledgement, result
serialisation, abort handling, default handling of unknown messages — is
inherited.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.agents.protocol import TaskResult, build_result_xml
from repro.core.dispatch import (
    ENGINE_QUEUE,
    KIND_ABORT,
    KIND_AUTH_REQUEST,
    KIND_DISPATCH,
    KIND_RESULT,
    KIND_STARTED,
)
from repro.core.spec import AgentSpec
from repro.errors import AgentError
from repro.messaging.broker import MessageBroker
from repro.messaging.client import Connection
from repro.messaging.message import Message
from repro.resilience.faults import FaultPlan, fire
from repro.xmlbridge import RelationalDocument


@dataclass
class AgentResult:
    """What an agent reports after executing one task instance."""

    success: bool
    outputs: list[dict[str, Any]] = field(default_factory=list)
    chosen_input_ids: list[int] = field(default_factory=list)
    result_values: dict[str, Any] = field(default_factory=dict)
    note: str = ""


class TemplateAgent:
    """Base class wiring an external system to the message broker."""

    kind = "program"

    def __init__(self, spec: AgentSpec, broker: MessageBroker) -> None:
        if spec.kind != self.kind:
            raise AgentError(
                f"agent spec {spec.name!r} has kind {spec.kind!r}, this "
                f"class implements {self.kind!r}"
            )
        self.spec = spec
        #: Observability hub (set by ``repro.obs.install_observability``).
        #: When present, message handling runs under a span joined to
        #: the dispatching trace, and replies carry that context onward.
        self.obs = None
        #: Optional fault plan (points ``agent.step`` / ``agent.ack``).
        self.faults: FaultPlan | None = None
        self.connection = Connection(broker)
        self.consumer = self.connection.create_consumer(spec.queue)
        self.producer = self.connection.create_producer(ENGINE_QUEUE)
        #: experiment ids currently being worked on (abort bookkeeping).
        self.in_progress: set[int] = set()
        #: experiment ids whose abort arrived before/while executing.
        self.aborted: set[int] = set()
        #: (message kind, error text) pairs for diagnostics.
        self.errors: list[tuple[str, str]] = []
        self.handled_count = 0
        #: Wall-clock time of the last :meth:`step` call (health probe).
        self.last_poll: float | None = None

    # ------------------------------------------------------------------
    # Message pump
    # ------------------------------------------------------------------

    def step(self, timeout: float = 0.0) -> bool:
        """Handle one message; returns whether one was handled.

        Fault points: ``agent.step`` crashes before the message is
        handled (the agent died mid-delivery; closing its consumer
        requeues the message), ``agent.ack`` crashes after handling but
        before acknowledgement (the classic at-least-once duplicate —
        the work happened, the broker redelivers anyway).
        """
        self.last_poll = time.time()
        message = self.consumer.receive(timeout=timeout)
        if message is None:
            return False
        fire(
            self.faults,
            "agent.step",
            agent=self.spec.name,
            kind=message.headers.get("kind"),
        )
        try:
            self._handle_traced(message)
        except AgentError as error:
            self._record_failure(message, error)
        fire(
            self.faults,
            "agent.ack",
            agent=self.spec.name,
            kind=message.headers.get("kind"),
        )
        self.consumer.ack(message)
        self.handled_count += 1
        return True

    def _handle_traced(self, message: Message) -> None:
        """Handle a message under a span joined to its origin trace."""
        if self.obs is None:
            self.handle_message(message)
            return
        kind = message.headers.get("kind")
        trace_id, parent_id = self.obs.tracer.extract(message.headers)
        with self.obs.tracer.span(
            "agent.handle",
            trace_id=trace_id,
            parent_id=parent_id,
            agent=self.spec.name,
            kind=kind,
        ) as span:
            self.handle_message(message)
        self.obs.registry.histogram(
            "agent_turnaround_ms",
            help="Agent time from delivery to handled, per agent",
            agent=self.spec.name,
        ).observe(span.duration_ms or 0.0)

    def run_until_idle(self, limit: int = 1000) -> int:
        """Drain the agent's queue; returns how many messages ran."""
        handled = 0
        while handled < limit and self.step():
            handled += 1
        return handled

    def handle_message(self, message: Message) -> None:
        """Default message dispatch by the ``kind`` header."""
        kind = message.headers.get("kind")
        if kind == KIND_DISPATCH:
            self._handle_dispatch(message)
        elif kind == KIND_ABORT:
            self.on_abort(int(message.headers["experiment_id"]))
        elif kind == KIND_AUTH_REQUEST:
            self.on_authorization_request(message)
        else:
            self.on_unknown(message)

    def _handle_dispatch(self, message: Message) -> None:
        experiment_id = int(message.headers["experiment_id"])
        if experiment_id in self.aborted:
            self.aborted.discard(experiment_id)
            return  # abort overtook the dispatch; do nothing
        document = RelationalDocument.from_xml(message.body)
        self.in_progress.add(experiment_id)
        self.producer.send(
            "",
            headers=self._trace_headers(
                {"kind": KIND_STARTED, "experiment_id": experiment_id}
            ),
        )
        try:
            native = self.translate_input(document)
            result = self.execute(experiment_id, native)
        finally:
            self.in_progress.discard(experiment_id)
        if experiment_id in self.aborted:
            self.aborted.discard(experiment_id)
            return  # the engine aborted us mid-run; results are moot
        self.send_result(experiment_id, result)

    def send_result(self, experiment_id: int, result: AgentResult) -> None:
        """Serialise and send a task result to the workflow manager."""
        body = build_result_xml(
            TaskResult(
                experiment_id=experiment_id,
                success=result.success,
                outputs=result.outputs,
                chosen_input_ids=result.chosen_input_ids,
                result_values=result.result_values,
                note=result.note,
            )
        )
        self.producer.send(
            body,
            headers=self._trace_headers(
                {
                    "kind": KIND_RESULT,
                    "experiment_id": experiment_id,
                    "agent": self.spec.name,
                }
            ),
        )

    def _trace_headers(self, headers: dict) -> dict:
        """Stamp the active trace context onto outbound headers."""
        if self.obs is not None:
            self.obs.tracer.inject(headers)
        return headers

    def _record_failure(self, message: Message, error: AgentError) -> None:
        kind = message.headers.get("kind", "?")
        self.errors.append((kind, str(error)))
        if kind == KIND_DISPATCH and "experiment_id" in message.headers:
            # The external system failed: report an unsuccessful instance
            # rather than leaving the engine waiting forever.
            self.send_result(
                int(message.headers["experiment_id"]),
                AgentResult(success=False, note=str(error)),
            )

    # ------------------------------------------------------------------
    # Hooks for concrete agents
    # ------------------------------------------------------------------

    def translate_input(self, document: RelationalDocument) -> Any:
        """XML → native format.  Default: hand over the document itself."""
        return document

    def execute(self, experiment_id: int, native: Any) -> AgentResult:
        """Run the wrapped external system.  Must be overridden."""
        raise AgentError(
            f"agent {self.spec.name!r} does not implement execute()"
        )

    def on_abort(self, experiment_id: int) -> None:
        """Default abort handling: remember it and stop caring."""
        self.aborted.add(experiment_id)
        self.in_progress.discard(experiment_id)

    def on_authorization_request(self, message: Message) -> None:
        """Default: ignore (humans override to notify their mailbox)."""

    def on_unknown(self, message: Message) -> None:
        """Default handling for unrecognised message kinds."""
        self.errors.append(
            ("unknown", f"unhandled message kind {message.headers.get('kind')!r}")
        )

    def close(self) -> None:
        """Disconnect from the broker (unacked messages are requeued)."""
        self.connection.close()
