"""The AgentManager (§5.2): the bridge between engine and agents.

Responsibilities, verbatim from the paper: "(1) choosing an appropriate
agent for a task, (2) extracting the relevant input information from the
database, (3) sending messages to the agent (e.g., containing task input
data or abort notifications), (4) handling messages coming from the
agents (e.g., containing output data or notifications as that the agent
has started a given task instance), and (5) extracting output
information and sending it to the WorkflowBean for insertion into the
database."

The manager implements the engine's :class:`~repro.core.dispatch.Dispatcher`
protocol on the outbound side, and :meth:`pump` on the inbound side —
consuming the persistent ``workflow.manager`` queue and applying agent
messages through the WorkflowBean.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any

from repro.agents.protocol import parse_result_xml
from repro.core.dispatch import (
    ENGINE_QUEUE,
    KIND_ABORT,
    KIND_AUTH_REQUEST,
    KIND_AUTH_RESPONSE,
    KIND_DISPATCH,
    KIND_RESULT,
    KIND_STARTED,
)
from repro.core.persistence import agents_for_type
from repro.core.states import InstanceState
from repro.errors import (
    AgentFormatError,
    DispatchError,
    FaultInjected,
    MessagingError,
    ReproError,
)
from repro.messaging.broker import MessageBroker
from repro.messaging.client import Connection, Producer
from repro.minidb.engine import Database
from repro.minidb.predicates import EQ
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.clock import Clock, SystemClock
from repro.resilience.faults import FaultPlan, fire
from repro.resilience.leases import Lease, LeaseTable
from repro.xmlbridge import RelationalDocument

if TYPE_CHECKING:  # pragma: no cover
    from repro.agents.mailbox import EmailTransport
    from repro.core.engine import WorkflowBean


class AgentManager:
    """Outbound dispatcher + inbound message pump."""

    def __init__(
        self,
        db: Database,
        broker: MessageBroker,
        email: "EmailTransport | None" = None,
        clock: Clock | None = None,
        lease_ttl_s: float = 300.0,
        max_redispatches: int = 1,
        breaker_threshold: int = 5,
        breaker_reset_s: float = 30.0,
    ) -> None:
        self.db = db
        self.broker = broker
        self.email = email
        self.engine: "WorkflowBean | None" = None
        #: Observability hub (set by ``repro.obs.install_observability``).
        #: When present, outbound messages carry the active trace
        #: context and inbound application is timed under a span.
        self.obs = None
        self.clock: Clock = clock or SystemClock()
        #: Liveness contracts for dispatched instances (see
        #: :mod:`repro.resilience.leases`); swept by :meth:`sweep_leases`.
        self.leases = LeaseTable(
            clock=self.clock, ttl_s=lease_ttl_s, max_redispatches=max_redispatches
        )
        self.breaker_threshold = breaker_threshold
        self.breaker_reset_s = breaker_reset_s
        self._breakers: dict[str, CircuitBreaker] = {}
        #: Optional fault-injection plan (point ``manager.ack``).
        self.faults: FaultPlan | None = None
        self._connection = Connection(broker)
        self._consumer = self._connection.create_consumer(ENGINE_QUEUE)
        self._producers: dict[str, Producer] = {}
        self._round_robin: dict[str, int] = {}
        self.dispatch_count = 0
        self.result_count = 0
        self.messages_rejected = 0
        self.dispatch_failures = 0
        self.breaker_short_circuits = 0
        self.redispatches = 0
        self.lease_aborts = 0
        #: Wall-clock time of the last :meth:`pump` call (health probe).
        self.last_pump: float | None = None

    def attach_engine(self, engine: "WorkflowBean") -> None:
        """Wire the engine (done once at application assembly)."""
        self.engine = engine

    # ------------------------------------------------------------------
    # Dispatcher protocol (engine → agents)
    # ------------------------------------------------------------------

    def choose_agent(self, experiment_type: str | None) -> dict | None:
        """Round-robin among the agents authorized for the type."""
        if experiment_type is None:
            return None
        agents = agents_for_type(self.db, experiment_type)
        if not agents:
            return None
        index = self._round_robin.get(experiment_type, 0)
        self._round_robin[experiment_type] = (index + 1) % len(agents)
        return agents[index % len(agents)]

    def dispatch_instance(
        self,
        agent: dict,
        workflow: dict[str, Any],
        task_name: str,
        experiment: dict[str, Any],
        available_inputs: list[dict[str, Any]],
    ) -> None:
        """Extract the task input as XML and send it to the agent.

        The send runs behind the queue's circuit breaker, and every
        dispatch — even one the breaker or a fault swallowed — grants a
        liveness lease, so :meth:`sweep_leases` eventually retries or
        aborts the instance instead of letting it hang.  Dispatch
        failures therefore never propagate into the engine's workflow
        evaluation.
        """
        queue = agent["queue"]
        breaker = self._breaker_for(queue)
        if not breaker.allow():
            self.breaker_short_circuits += 1
            self._dispatch_event(
                "dispatch.skipped", agent, workflow, task_name, experiment,
                reason=f"circuit breaker for {queue!r} is {breaker.state}",
            )
            self._grant_lease(agent, workflow, task_name, experiment)
            return
        document = self.build_task_input(
            workflow, task_name, experiment, available_inputs
        )
        try:
            fire(
                self.faults,
                "agent.dispatch",
                queue=queue,
                agent=agent["name"],
                task=task_name,
            )
            self._producer_for(queue).send(
                document.to_xml(),
                headers=self._trace_headers(
                    {
                        "kind": KIND_DISPATCH,
                        "experiment_id": experiment["experiment_id"],
                        "workflow_id": workflow["workflow_id"],
                        "task": task_name,
                        "experiment_type": experiment["type_name"],
                        "agent": agent["name"],
                    }
                ),
            )
        except (FaultInjected, MessagingError) as error:
            breaker.record_failure()
            self.dispatch_failures += 1
            self._dispatch_event(
                "dispatch.failed", agent, workflow, task_name, experiment,
                reason=str(error),
            )
            self._grant_lease(agent, workflow, task_name, experiment)
            return
        breaker.record_success()
        self.dispatch_count += 1
        if self.obs is not None:
            self.obs.audit_record(
                "agent.dispatch",
                actor=agent["name"],
                workflow_id=workflow["workflow_id"],
                experiment_id=experiment["experiment_id"],
                task=task_name,
                queue=agent["queue"],
                experiment_type=experiment["type_name"],
            )
        self._grant_lease(agent, workflow, task_name, experiment)

    def _grant_lease(
        self,
        agent: dict,
        workflow: dict[str, Any],
        task_name: str,
        experiment: dict[str, Any],
    ) -> Lease:
        return self.leases.grant(
            experiment["experiment_id"],
            workflow_id=workflow["workflow_id"],
            task=task_name,
            agent=agent["name"],
            queue=agent["queue"],
        )

    def _dispatch_event(
        self,
        name: str,
        agent: dict,
        workflow: dict[str, Any],
        task_name: str,
        experiment: dict[str, Any],
        reason: str,
    ) -> None:
        if self.engine is not None:
            self.engine.events.emit(
                name,
                agent=agent["name"],
                queue=agent["queue"],
                workflow_id=workflow["workflow_id"],
                experiment_id=experiment["experiment_id"],
                task=task_name,
                reason=reason,
            )
        if self.obs is not None:
            self.obs.audit_record(
                name,
                actor=agent["name"],
                workflow_id=workflow["workflow_id"],
                experiment_id=experiment["experiment_id"],
                task=task_name,
                queue=agent["queue"],
                reason=reason,
            )

    def _breaker_for(self, queue: str) -> CircuitBreaker:
        breaker = self._breakers.get(queue)
        if breaker is None:
            breaker = CircuitBreaker(
                name=f"dispatch.{queue}",
                failure_threshold=self.breaker_threshold,
                reset_timeout_s=self.breaker_reset_s,
                clock=self.clock,
            )
            self._breakers[queue] = breaker
        return breaker

    def breaker_snapshots(self) -> dict[str, dict[str, Any]]:
        """Per-queue breaker state for health reports and gauges."""
        return {
            queue: breaker.snapshot()
            for queue, breaker in sorted(self._breakers.items())
        }

    def build_task_input(
        self,
        workflow: dict[str, Any],
        task_name: str,
        experiment: dict[str, Any],
        available_inputs: list[dict[str, Any]],
    ) -> RelationalDocument:
        """The generic XML task-input document (the NeT/CoT step).

        Contains the (merged) experiment record and every candidate
        input sample, grouped under its most specific type table so the
        reverse mapping stays lossless.
        """
        document = RelationalDocument(
            "task-input",
            kind="dispatch",
            experiment_id=str(experiment["experiment_id"]),
            workflow_id=str(workflow["workflow_id"]),
            task=task_name,
        )
        experiment_table = self._experiment_table(experiment["type_name"])
        merged = self._merged_experiment(experiment)
        document.add_table_from_db(self.db, experiment_table, [merged])
        samples_by_table: dict[str, list[dict[str, Any]]] = {}
        for sample in available_inputs:
            table = self._sample_table(sample["type_name"])
            samples_by_table.setdefault(table, []).append(sample)
        for table, samples in samples_by_table.items():
            document.add_table_from_db(self.db, table, samples)
        return document

    def send_abort(self, agent: dict, experiment_id: int) -> None:
        self._producer_for(agent["queue"]).send(
            "",
            headers=self._trace_headers(
                {"kind": KIND_ABORT, "experiment_id": experiment_id}
            ),
        )

    def notify_authorization(
        self,
        agent: dict | None,
        auth_id: int,
        workflow: dict[str, Any],
        task_name: str,
        kind: str,
    ) -> None:
        """Route an authorization request to a human agent.

        With no suitable agent the request simply waits in the database
        for a decision through the web interface.
        """
        if agent is None:
            return
        self._producer_for(agent["queue"]).send(
            "",
            headers=self._trace_headers(
                {
                    "kind": KIND_AUTH_REQUEST,
                    "auth_id": auth_id,
                    "workflow_id": workflow["workflow_id"],
                    "task": task_name,
                    "authorization_kind": kind,
                }
            ),
        )
        if self.email is not None and agent.get("contact"):
            self.email.send(
                agent["contact"],
                subject=f"[Exp-WF] authorization needed: task {task_name!r}",
                body=(
                    f"Workflow {workflow['workflow_id']} requests {kind} "
                    f"authorization for task {task_name!r} "
                    f"(request #{auth_id})."
                ),
            )

    # ------------------------------------------------------------------
    # Inbound pump (agents → engine)
    # ------------------------------------------------------------------

    def pump(self, limit: int = 1000) -> int:
        """Apply queued agent messages through the engine.

        Returns the number of messages processed.  Malformed messages
        are *rejected*, not acknowledged: the broker redelivers them
        with backoff and, once the queue's delivery cap is hit,
        quarantines them in the dead-letter queue — a poison message can
        neither wedge the queue nor silently vanish.
        """
        if self.engine is None:
            raise DispatchError("AgentManager has no engine attached")
        self.last_pump = time.time()
        processed = 0
        while processed < limit:
            message = self._consumer.receive(timeout=0.0)
            if message is None:
                break
            try:
                self._apply_traced(message)
            except FaultInjected:
                # An injected crash is a simulated process death, not a
                # poison message — let it take the pump down.
                raise
            except (ReproError, KeyError, ValueError) as error:
                # Any library-level failure while applying a message —
                # bad XML, workflow-state conflicts, schema mismatches in
                # reported values — rejects that one message; the pump
                # itself must never die on poison input.
                self.messages_rejected += 1
                self.engine.events.emit(
                    "message.rejected",
                    message_kind=message.headers.get("kind"),
                    message_id=message.message_id,
                    delivery_count=message.delivery_count,
                    error=str(error),
                )
                will_retry = self._consumer.reject(message, reason=str(error))
                if not will_retry and self.obs is not None:
                    self.obs.audit_record(
                        "message.dead_letter",
                        message_kind=message.headers.get("kind"),
                        message_id=message.message_id,
                        delivery_count=message.delivery_count,
                        reason=str(error),
                    )
                processed += 1
                continue
            # Simulated manager death between applying a message and
            # acknowledging it: the broker redelivers on restart, which
            # is exactly the at-least-once duplicate the engine's stale
            # checks have to absorb.
            fire(self.faults, "manager.ack", kind=message.headers.get("kind"))
            self._consumer.ack(message)
            processed += 1
        return processed

    # ------------------------------------------------------------------
    # Lease sweep (liveness)
    # ------------------------------------------------------------------

    def sweep_leases(self, now: float | None = None) -> dict[str, int]:
        """Expire overdue leases; redispatch within budget, else abort.

        An expired lease on an instance that is no longer live (decided
        by a late result, restart, or cancellation) is just stale
        bookkeeping and is released quietly.  A live instance whose
        agent went silent is re-dispatched — round-robin naturally
        routes around the dead agent — until the redispatch budget is
        spent, after which the instance is aborted through the Fig. 4
        machine so the workflow fails cleanly instead of hanging.
        """
        if self.engine is None:
            raise DispatchError("AgentManager has no engine attached")
        counts = {"redispatched": 0, "aborted": 0, "released": 0}
        for lease in self.leases.expired(now):
            experiment = self.db.get("Experiment", lease.experiment_id)
            live = (
                experiment is not None
                and experiment.get("wf_current")
                and experiment.get("wf_state")
                in (InstanceState.DELEGATED.value, InstanceState.ACTIVE.value)
            )
            if not live:
                self.leases.release(lease.experiment_id)
                counts["released"] += 1
                continue
            self.leases.expiries += 1
            if self.obs is not None:
                self.obs.audit_record(
                    "lease.expired",
                    actor=lease.agent,
                    workflow_id=lease.workflow_id,
                    experiment_id=lease.experiment_id,
                    task=lease.task,
                    redispatches=lease.redispatches,
                )
            redispatched = (
                lease.redispatches < self.leases.max_redispatches
                and self._redispatch_expired(lease, experiment)
            )
            if redispatched:
                counts["redispatched"] += 1
            else:
                self.leases.release(lease.experiment_id)
                self.engine.abort_instance(lease.experiment_id)
                self.lease_aborts += 1
                self.engine.events.emit(
                    "lease.abort",
                    experiment_id=lease.experiment_id,
                    workflow_id=lease.workflow_id,
                    task=lease.task,
                    agent=lease.agent,
                    redispatches=lease.redispatches,
                )
                counts["aborted"] += 1
        return counts

    def _redispatch_expired(
        self, lease: Lease, experiment: dict[str, Any]
    ) -> bool:
        """Hand an expired instance to a (possibly different) agent."""
        assert self.engine is not None
        workflow = self.db.get("Workflow", experiment["workflow_id"])
        task_name = lease.task
        if workflow is None or task_name is None:
            return False
        agent = self.choose_agent(experiment["type_name"])
        if agent is None:
            return False
        self.leases.note_redispatch(lease.experiment_id)
        self.redispatches += 1
        if agent["agent_id"] != experiment["agent_id"]:
            self.db.update(
                "Experiment",
                EQ("experiment_id", experiment["experiment_id"]),
                {"agent_id": agent["agent_id"]},
            )
            experiment = self.db.get("Experiment", experiment["experiment_id"])
        self.engine.events.emit(
            "lease.redispatch",
            experiment_id=experiment["experiment_id"],
            workflow_id=workflow["workflow_id"],
            task=task_name,
            agent=agent["name"],
            previous_agent=lease.agent,
        )
        inputs = self.engine.collect_available_inputs(
            workflow["workflow_id"], task_name
        )
        self.dispatch_instance(agent, workflow, task_name, experiment, inputs)
        return True

    def _apply_traced(self, message) -> None:
        """Apply one message, under a span joined to its origin trace."""
        if self.obs is None:
            self._apply(message)
            return
        kind = message.headers.get("kind")
        trace_id, parent_id = self.obs.tracer.extract(message.headers)
        with self.obs.tracer.span(
            "engine.apply_message",
            trace_id=trace_id,
            parent_id=parent_id,
            kind=kind,
        ) as span:
            self._apply(message)
            # Inside the span so the ack row carries the message's trace.
            self.obs.audit_record(
                "agent.ack",
                actor=str(message.headers.get("agent", "")) or None,
                experiment_id=self._maybe_int(
                    message.headers.get("experiment_id")
                ),
                workflow_id=self._maybe_int(message.headers.get("workflow_id")),
                task=message.headers.get("task"),
                message_kind=kind,
                message_id=message.message_id,
            )
        self.obs.registry.histogram(
            "engine_apply_ms",
            help="Engine time applying one inbound agent message",
            kind=str(kind),
        ).observe(span.duration_ms or 0.0)

    def _apply(self, message) -> None:
        assert self.engine is not None
        kind = message.headers.get("kind")
        if kind == KIND_STARTED:
            experiment_id = int(message.headers["experiment_id"])
            self.engine.instance_started(experiment_id)
            self.leases.renew(experiment_id)
        elif kind == KIND_RESULT:
            result = parse_result_xml(message.body)
            self.engine.complete_instance(
                result.experiment_id,
                success=result.success,
                outputs=result.outputs,
                chosen_input_ids=result.chosen_input_ids,
                result_values=result.result_values or None,
            )
            self.leases.release(result.experiment_id)
            self.result_count += 1
        elif kind == KIND_AUTH_RESPONSE:
            self.engine.respond_authorization(
                int(message.headers["auth_id"]),
                message.headers.get("approve") in (True, "true", "True"),
                decided_by=message.headers.get("agent", ""),
            )
        else:
            raise AgentFormatError(f"unknown inbound message kind {kind!r}")

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _trace_headers(self, headers: dict[str, Any]) -> dict[str, Any]:
        """Stamp the active trace context onto outbound headers."""
        if self.obs is not None:
            self.obs.tracer.inject(headers)
        return headers

    @staticmethod
    def _maybe_int(value: Any) -> int | None:
        try:
            return None if value is None else int(value)
        except (TypeError, ValueError):
            return None

    def _producer_for(self, queue: str) -> Producer:
        producer = self._producers.get(queue)
        if producer is None:
            producer = self._connection.create_producer(queue)
            self._producers[queue] = producer
        return producer

    def _experiment_table(self, type_name: str | None) -> str:
        if type_name is not None:
            row = self.db.select_one("ExperimentType", EQ("type_name", type_name))
            if row is not None and self.db.has_table(row["table_name"]):
                return row["table_name"]
        return "Experiment"

    def _sample_table(self, type_name: str) -> str:
        row = self.db.select_one("SampleType", EQ("type_name", type_name))
        if row is not None and self.db.has_table(row["table_name"]):
            return row["table_name"]
        return "Sample"

    def _merged_experiment(self, experiment: dict[str, Any]) -> dict[str, Any]:
        table = self._experiment_table(experiment["type_name"])
        if table == "Experiment":
            return dict(experiment)
        child = self.db.get(table, experiment["experiment_id"])
        merged = dict(experiment)
        if child is not None:
            merged.update(child)
        return merged

    def close(self) -> None:
        """Disconnect from the broker."""
        self._connection.close()
