"""The AgentManager (§5.2): the bridge between engine and agents.

Responsibilities, verbatim from the paper: "(1) choosing an appropriate
agent for a task, (2) extracting the relevant input information from the
database, (3) sending messages to the agent (e.g., containing task input
data or abort notifications), (4) handling messages coming from the
agents (e.g., containing output data or notifications as that the agent
has started a given task instance), and (5) extracting output
information and sending it to the WorkflowBean for insertion into the
database."

The manager implements the engine's :class:`~repro.core.dispatch.Dispatcher`
protocol on the outbound side, and :meth:`pump` on the inbound side —
consuming the persistent ``workflow.manager`` queue and applying agent
messages through the WorkflowBean.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any

from repro.agents.protocol import parse_result_xml
from repro.core.dispatch import (
    ENGINE_QUEUE,
    KIND_ABORT,
    KIND_AUTH_REQUEST,
    KIND_AUTH_RESPONSE,
    KIND_DISPATCH,
    KIND_RESULT,
    KIND_STARTED,
)
from repro.core.persistence import agents_for_type
from repro.errors import AgentFormatError, DispatchError, ReproError
from repro.messaging.broker import MessageBroker
from repro.messaging.client import Connection, Producer
from repro.minidb.engine import Database
from repro.minidb.predicates import EQ
from repro.xmlbridge import RelationalDocument

if TYPE_CHECKING:  # pragma: no cover
    from repro.agents.mailbox import EmailTransport
    from repro.core.engine import WorkflowBean


class AgentManager:
    """Outbound dispatcher + inbound message pump."""

    def __init__(
        self,
        db: Database,
        broker: MessageBroker,
        email: "EmailTransport | None" = None,
    ) -> None:
        self.db = db
        self.broker = broker
        self.email = email
        self.engine: "WorkflowBean | None" = None
        #: Observability hub (set by ``repro.obs.install_observability``).
        #: When present, outbound messages carry the active trace
        #: context and inbound application is timed under a span.
        self.obs = None
        self._connection = Connection(broker)
        self._consumer = self._connection.create_consumer(ENGINE_QUEUE)
        self._producers: dict[str, Producer] = {}
        self._round_robin: dict[str, int] = {}
        self.dispatch_count = 0
        self.result_count = 0
        #: Wall-clock time of the last :meth:`pump` call (health probe).
        self.last_pump: float | None = None

    def attach_engine(self, engine: "WorkflowBean") -> None:
        """Wire the engine (done once at application assembly)."""
        self.engine = engine

    # ------------------------------------------------------------------
    # Dispatcher protocol (engine → agents)
    # ------------------------------------------------------------------

    def choose_agent(self, experiment_type: str | None) -> dict | None:
        """Round-robin among the agents authorized for the type."""
        if experiment_type is None:
            return None
        agents = agents_for_type(self.db, experiment_type)
        if not agents:
            return None
        index = self._round_robin.get(experiment_type, 0)
        self._round_robin[experiment_type] = (index + 1) % len(agents)
        return agents[index % len(agents)]

    def dispatch_instance(
        self,
        agent: dict,
        workflow: dict[str, Any],
        task_name: str,
        experiment: dict[str, Any],
        available_inputs: list[dict[str, Any]],
    ) -> None:
        """Extract the task input as XML and send it to the agent."""
        document = self.build_task_input(
            workflow, task_name, experiment, available_inputs
        )
        self._producer_for(agent["queue"]).send(
            document.to_xml(),
            headers=self._trace_headers(
                {
                    "kind": KIND_DISPATCH,
                    "experiment_id": experiment["experiment_id"],
                    "workflow_id": workflow["workflow_id"],
                    "task": task_name,
                    "experiment_type": experiment["type_name"],
                    "agent": agent["name"],
                }
            ),
        )
        self.dispatch_count += 1
        if self.obs is not None:
            self.obs.audit_record(
                "agent.dispatch",
                actor=agent["name"],
                workflow_id=workflow["workflow_id"],
                experiment_id=experiment["experiment_id"],
                task=task_name,
                queue=agent["queue"],
                experiment_type=experiment["type_name"],
            )

    def build_task_input(
        self,
        workflow: dict[str, Any],
        task_name: str,
        experiment: dict[str, Any],
        available_inputs: list[dict[str, Any]],
    ) -> RelationalDocument:
        """The generic XML task-input document (the NeT/CoT step).

        Contains the (merged) experiment record and every candidate
        input sample, grouped under its most specific type table so the
        reverse mapping stays lossless.
        """
        document = RelationalDocument(
            "task-input",
            kind="dispatch",
            experiment_id=str(experiment["experiment_id"]),
            workflow_id=str(workflow["workflow_id"]),
            task=task_name,
        )
        experiment_table = self._experiment_table(experiment["type_name"])
        merged = self._merged_experiment(experiment)
        document.add_table_from_db(self.db, experiment_table, [merged])
        samples_by_table: dict[str, list[dict[str, Any]]] = {}
        for sample in available_inputs:
            table = self._sample_table(sample["type_name"])
            samples_by_table.setdefault(table, []).append(sample)
        for table, samples in samples_by_table.items():
            document.add_table_from_db(self.db, table, samples)
        return document

    def send_abort(self, agent: dict, experiment_id: int) -> None:
        self._producer_for(agent["queue"]).send(
            "",
            headers=self._trace_headers(
                {"kind": KIND_ABORT, "experiment_id": experiment_id}
            ),
        )

    def notify_authorization(
        self,
        agent: dict | None,
        auth_id: int,
        workflow: dict[str, Any],
        task_name: str,
        kind: str,
    ) -> None:
        """Route an authorization request to a human agent.

        With no suitable agent the request simply waits in the database
        for a decision through the web interface.
        """
        if agent is None:
            return
        self._producer_for(agent["queue"]).send(
            "",
            headers=self._trace_headers(
                {
                    "kind": KIND_AUTH_REQUEST,
                    "auth_id": auth_id,
                    "workflow_id": workflow["workflow_id"],
                    "task": task_name,
                    "authorization_kind": kind,
                }
            ),
        )
        if self.email is not None and agent.get("contact"):
            self.email.send(
                agent["contact"],
                subject=f"[Exp-WF] authorization needed: task {task_name!r}",
                body=(
                    f"Workflow {workflow['workflow_id']} requests {kind} "
                    f"authorization for task {task_name!r} "
                    f"(request #{auth_id})."
                ),
            )

    # ------------------------------------------------------------------
    # Inbound pump (agents → engine)
    # ------------------------------------------------------------------

    def pump(self, limit: int = 1000) -> int:
        """Apply queued agent messages through the engine.

        Returns the number of messages processed.  Malformed messages
        are acknowledged and recorded as events — a poison message must
        not wedge the whole queue.
        """
        if self.engine is None:
            raise DispatchError("AgentManager has no engine attached")
        self.last_pump = time.time()
        processed = 0
        while processed < limit:
            message = self._consumer.receive(timeout=0.0)
            if message is None:
                break
            try:
                self._apply_traced(message)
            except (ReproError, KeyError, ValueError) as error:
                # Any library-level failure while applying a message —
                # bad XML, workflow-state conflicts, schema mismatches in
                # reported values — rejects that one message; the pump
                # itself must never die on poison input.
                self.engine.events.emit(
                    "message.rejected",
                    message_kind=message.headers.get("kind"),
                    error=str(error),
                )
            self._consumer.ack(message)
            processed += 1
        return processed

    def _apply_traced(self, message) -> None:
        """Apply one message, under a span joined to its origin trace."""
        if self.obs is None:
            self._apply(message)
            return
        kind = message.headers.get("kind")
        trace_id, parent_id = self.obs.tracer.extract(message.headers)
        with self.obs.tracer.span(
            "engine.apply_message",
            trace_id=trace_id,
            parent_id=parent_id,
            kind=kind,
        ) as span:
            self._apply(message)
            # Inside the span so the ack row carries the message's trace.
            self.obs.audit_record(
                "agent.ack",
                actor=str(message.headers.get("agent", "")) or None,
                experiment_id=self._maybe_int(
                    message.headers.get("experiment_id")
                ),
                workflow_id=self._maybe_int(message.headers.get("workflow_id")),
                task=message.headers.get("task"),
                message_kind=kind,
                message_id=message.message_id,
            )
        self.obs.registry.histogram(
            "engine_apply_ms",
            help="Engine time applying one inbound agent message",
            kind=str(kind),
        ).observe(span.duration_ms or 0.0)

    def _apply(self, message) -> None:
        assert self.engine is not None
        kind = message.headers.get("kind")
        if kind == KIND_STARTED:
            self.engine.instance_started(int(message.headers["experiment_id"]))
        elif kind == KIND_RESULT:
            result = parse_result_xml(message.body)
            self.engine.complete_instance(
                result.experiment_id,
                success=result.success,
                outputs=result.outputs,
                chosen_input_ids=result.chosen_input_ids,
                result_values=result.result_values or None,
            )
            self.result_count += 1
        elif kind == KIND_AUTH_RESPONSE:
            self.engine.respond_authorization(
                int(message.headers["auth_id"]),
                message.headers.get("approve") in (True, "true", "True"),
                decided_by=message.headers.get("agent", ""),
            )
        else:
            raise AgentFormatError(f"unknown inbound message kind {kind!r}")

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _trace_headers(self, headers: dict[str, Any]) -> dict[str, Any]:
        """Stamp the active trace context onto outbound headers."""
        if self.obs is not None:
            self.obs.tracer.inject(headers)
        return headers

    @staticmethod
    def _maybe_int(value: Any) -> int | None:
        try:
            return None if value is None else int(value)
        except (TypeError, ValueError):
            return None

    def _producer_for(self, queue: str) -> Producer:
        producer = self._producers.get(queue)
        if producer is None:
            producer = self._connection.create_producer(queue)
            self._producers[queue] = producer
        return producer

    def _experiment_table(self, type_name: str | None) -> str:
        if type_name is not None:
            row = self.db.select_one("ExperimentType", EQ("type_name", type_name))
            if row is not None and self.db.has_table(row["table_name"]):
                return row["table_name"]
        return "Experiment"

    def _sample_table(self, type_name: str) -> str:
        row = self.db.select_one("SampleType", EQ("type_name", type_name))
        if row is not None and self.db.has_table(row["table_name"]):
            return row["table_name"]
        return "Sample"

    def _merged_experiment(self, experiment: dict[str, Any]) -> dict[str, Any]:
        table = self._experiment_table(experiment["type_name"])
        if table == "Experiment":
            return dict(experiment)
        child = self.db.get(table, experiment["experiment_id"])
        merged = dict(experiment)
        if child is not None:
            merged.update(child)
        return merged

    def close(self) -> None:
        """Disconnect from the broker."""
        self._connection.close()
