"""Deterministic execution of the asynchronous agent system.

In production the agents and the AgentManager each run their own message
loops (possibly on different machines — "the agent could run on this
specific PC").  For tests, examples and benchmarks we need the same
system to run deterministically in one process: ``run_until_quiescent``
alternates the manager's pump and every agent's queue drain until a full
round moves no message, i.e. the system reached a fixed point.
"""

from __future__ import annotations

from typing import Iterable

from repro.agents.base import TemplateAgent
from repro.agents.manager import AgentManager
from repro.errors import AgentError


def run_until_quiescent(
    manager: AgentManager,
    agents: Iterable[TemplateAgent],
    max_rounds: int = 1000,
) -> int:
    """Drive manager and agents until no messages flow; returns the count.

    Raises :class:`AgentError` if the system keeps producing messages
    for ``max_rounds`` rounds (a routing loop — better to fail loudly
    than spin forever).
    """
    agent_list = list(agents)
    total = 0
    for __ in range(max_rounds):
        moved = manager.pump()
        for agent in agent_list:
            moved += agent.run_until_idle()
        total += moved
        if moved == 0:
            return total
    raise AgentError(
        f"agent system did not quiesce within {max_rounds} rounds "
        f"({total} messages moved)"
    )
