"""agents — the software-agent framework (§5.1.2).

"In order to automate experiment execution, the workflow manager
requires a framework for registering and communicating with the external
systems that will perform the experiments.  Exp-WF uses software agents
that act as wrappers for the external systems."

* :class:`~repro.agents.base.TemplateAgent` — "a template agent class
  that provides all necessary messaging functionality ... simplifying
  the creation of a customized agent for an external instrument";
* :class:`~repro.agents.robot.LiquidHandlingRobotAgent` — the simulated
  liquid-handling robot; its only customisation is the CSV input/output
  format, exactly as in the paper;
* :class:`~repro.agents.human.HumanTechnicianAgent` — humans are
  "informed via email, and must then enter the results via the web
  interface";
* :class:`~repro.agents.program.AnalysisProgramAgent` — a deterministic
  analysis program (the BLAST stand-in);
* :class:`~repro.agents.manager.AgentManager` — chooses agents, extracts
  task input from the database as XML, sends/receives the persistent
  messages, and applies agent results back through the WorkflowBean.
"""

from repro.agents.base import AgentResult, TemplateAgent
from repro.agents.human import HumanTechnicianAgent
from repro.agents.mailbox import Email, EmailTransport
from repro.agents.manager import AgentManager
from repro.agents.program import AnalysisProgramAgent
from repro.agents.robot import LiquidHandlingRobotAgent
from repro.agents.runtime import run_until_quiescent

__all__ = [
    "TemplateAgent",
    "AgentResult",
    "AgentManager",
    "LiquidHandlingRobotAgent",
    "HumanTechnicianAgent",
    "AnalysisProgramAgent",
    "EmailTransport",
    "Email",
    "run_until_quiescent",
]
