"""A simulated email transport.

The paper's human integration path: "A human being is informed via
email, and must then enter the results via the web interface."  This
module provides the email side: an in-process transport that records
messages per address, with read/unread tracking so tests and examples
can drive the human-in-the-loop protocol deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Email:
    """One delivered email."""

    to: str
    subject: str
    body: str
    read: bool = False


@dataclass
class EmailTransport:
    """Delivers and stores emails keyed by recipient address."""

    _inboxes: dict[str, list[Email]] = field(default_factory=dict)
    sent_count: int = 0

    def send(self, to: str, subject: str, body: str) -> Email:
        """Deliver one email."""
        email = Email(to=to, subject=subject, body=body)
        self._inboxes.setdefault(to, []).append(email)
        self.sent_count += 1
        return email

    def inbox(self, address: str) -> list[Email]:
        """All emails ever delivered to ``address``."""
        return list(self._inboxes.get(address, ()))

    def unread(self, address: str) -> list[Email]:
        """Unread emails for ``address`` (marks nothing)."""
        return [e for e in self._inboxes.get(address, ()) if not e.read]

    def take_unread(self, address: str) -> list[Email]:
        """Return unread emails for ``address``, marking them read."""
        emails = self.unread(address)
        for email in emails:
            email.read = True
        return emails

    def addresses(self) -> list[str]:
        """Every address that has ever received an email."""
        return list(self._inboxes)

    def unread_count(self, address: str | None = None) -> int:
        """Unread emails for one address, or across all inboxes."""
        if address is not None:
            return len(self.unread(address))
        return sum(len(self.unread(a)) for a in self._inboxes)

    def depths(self) -> dict[str, int]:
        """Unread count per address (the mailbox-depth gauge source)."""
        return {address: len(self.unread(address)) for address in self._inboxes}
