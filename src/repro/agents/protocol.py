"""The XML result protocol between agents and the workflow manager.

Task *input* travels as a :class:`~repro.xmlbridge.RelationalDocument`
(real relational rows).  Task *results* are different: they describe
samples that do not exist yet, the chosen inputs, and updates to the
experiment record — so they get their own document shape::

    <task-result experiment-id="42" success="true">
      <chosen-input sample-id="7"/>
      <output sample-type="PcrProduct" name="pcr-42-a" quality="0.93">
        <value column="length" type="integer">1200</value>
      </output>
      <result-value column="cycles" type="integer">30</result-value>
      <note>optional free text</note>
    </task-result>

Values carry minidb type names so the engine can re-type them without
guessing.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Any

from repro.errors import AgentFormatError
from repro.minidb.types import ColumnType, from_wire, to_wire

#: Python type → minidb type name, for encoding result values.
_PYTHON_TO_TYPE = {
    bool: ColumnType.BOOLEAN,  # must precede int (bool is an int subclass)
    int: ColumnType.INTEGER,
    float: ColumnType.REAL,
    str: ColumnType.TEXT,
}


def _type_of(value: Any) -> ColumnType:
    for python_type, column_type in _PYTHON_TO_TYPE.items():
        if type(value) is python_type:
            return column_type
    import datetime

    if isinstance(value, datetime.datetime):
        return ColumnType.TIMESTAMP
    raise AgentFormatError(
        f"cannot encode result value of type {type(value).__name__}"
    )


@dataclass
class TaskResult:
    """Parsed contents of a task-result document."""

    experiment_id: int
    success: bool
    outputs: list[dict[str, Any]] = field(default_factory=list)
    chosen_input_ids: list[int] = field(default_factory=list)
    result_values: dict[str, Any] = field(default_factory=dict)
    note: str = ""


def build_result_xml(result: TaskResult) -> str:
    """Serialise a :class:`TaskResult` for the message body."""
    root = ET.Element(
        "task-result",
        {
            "experiment-id": str(result.experiment_id),
            "success": "true" if result.success else "false",
        },
    )
    for sample_id in result.chosen_input_ids:
        ET.SubElement(root, "chosen-input", {"sample-id": str(sample_id)})
    for output in result.outputs:
        attrs = {"sample-type": output["sample_type"]}
        for key in ("name", "description"):
            if output.get(key) is not None:
                attrs[key] = str(output[key])
        if output.get("quality") is not None:
            attrs["quality"] = repr(float(output["quality"]))
        output_element = ET.SubElement(root, "output", attrs)
        for column, value in output.get("values", {}).items():
            _append_value(output_element, "value", column, value)
    for column, value in result.result_values.items():
        _append_value(root, "result-value", column, value)
    if result.note:
        note = ET.SubElement(root, "note")
        note.text = result.note
    return ET.tostring(root, encoding="unicode")


def _append_value(parent: ET.Element, tag: str, column: str, value: Any) -> None:
    if value is None:
        ET.SubElement(parent, tag, {"column": column, "null": "true"})
        return
    column_type = _type_of(value)
    element = ET.SubElement(
        parent, tag, {"column": column, "type": column_type.value}
    )
    element.text = str(to_wire(value, column_type))


def parse_result_xml(xml_text: str) -> TaskResult:
    """Parse a task-result document (raises on malformed input)."""
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as error:
        raise AgentFormatError(f"malformed task-result XML: {error}") from None
    if root.tag != "task-result":
        raise AgentFormatError(
            f"expected <task-result>, got <{root.tag}>"
        )
    try:
        experiment_id = int(root.get("experiment-id", ""))
    except ValueError:
        raise AgentFormatError("task-result lacks a numeric experiment-id") from None
    result = TaskResult(
        experiment_id=experiment_id,
        success=root.get("success") == "true",
    )
    for element in root.findall("chosen-input"):
        try:
            result.chosen_input_ids.append(int(element.get("sample-id", "")))
        except ValueError:
            raise AgentFormatError("chosen-input lacks a numeric sample-id") from None
    for element in root.findall("output"):
        sample_type = element.get("sample-type")
        if not sample_type:
            raise AgentFormatError("output element lacks a sample-type")
        output: dict[str, Any] = {"sample_type": sample_type}
        if element.get("name") is not None:
            output["name"] = element.get("name")
        if element.get("description") is not None:
            output["description"] = element.get("description")
        if element.get("quality") is not None:
            output["quality"] = float(element.get("quality"))
        values = {}
        for value_element in element.findall("value"):
            column, value = _parse_value(value_element)
            values[column] = value
        if values:
            output["values"] = values
        result.outputs.append(output)
    for element in root.findall("result-value"):
        column, value = _parse_value(element)
        result.result_values[column] = value
    note = root.find("note")
    if note is not None and note.text:
        result.note = note.text
    return result


def _parse_value(element: ET.Element) -> tuple[str, Any]:
    column = element.get("column")
    if not column:
        raise AgentFormatError("value element lacks a column name")
    if element.get("null") == "true":
        return column, None
    type_name = element.get("type")
    try:
        column_type = ColumnType(type_name)
    except ValueError:
        raise AgentFormatError(
            f"value for {column!r} has unknown type {type_name!r}"
        ) from None
    return column, from_wire(element.text or "", column_type)
