"""Exception hierarchy shared by every Exp-WF subpackage.

All library errors derive from :class:`ReproError` so that applications can
catch everything the library raises with a single ``except`` clause, while
each subsystem (database, web tier, messaging, workflow engine, agents)
exposes a dedicated subtree for finer-grained handling.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of the Exp-WF exception hierarchy."""


# ---------------------------------------------------------------------------
# minidb — relational engine substrate
# ---------------------------------------------------------------------------


class DatabaseError(ReproError):
    """Root of all relational-engine errors."""


class SchemaError(DatabaseError):
    """A table/column definition is invalid or inconsistent."""


class UnknownTableError(SchemaError):
    """A statement referenced a table that does not exist."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown table: {name!r}")
        self.table_name = name


class UnknownColumnError(SchemaError):
    """A statement referenced a column that does not exist."""

    def __init__(self, table: str, column: str) -> None:
        super().__init__(f"unknown column {column!r} in table {table!r}")
        self.table_name = table
        self.column_name = column


class TypeMismatchError(DatabaseError):
    """A value could not be coerced to its column's declared type."""


class ConstraintError(DatabaseError):
    """Root of all integrity-constraint violations."""


class PrimaryKeyError(ConstraintError):
    """A primary-key uniqueness or presence constraint was violated."""


class ForeignKeyError(ConstraintError):
    """A foreign-key reference could not be satisfied."""


class NotNullError(ConstraintError):
    """A required (NOT NULL) column was left empty."""


class TransactionError(DatabaseError):
    """Illegal transaction usage (nested begin, commit without begin, ...)."""


class LogCorruptionDetail:
    """Structured diagnostics shared by durable-log corruption errors.

    A segmented log that refuses to replay says exactly *where* and
    *why*: the file, the segment id, the byte offset of the offending
    record, the checksum it expected vs. the one it computed, and a
    short machine-readable ``reason`` (``checksum`` / ``framing`` /
    ``sequence`` / ``decode`` / ``manifest`` / ``legacy``).  All fields
    are optional so plain one-argument raises keep working.
    """

    def _attach_detail(
        self,
        *,
        path: str | None = None,
        segment: int | None = None,
        offset: int | None = None,
        expected_crc: str | None = None,
        actual_crc: str | None = None,
        reason: str | None = None,
    ) -> None:
        self.path = path
        self.segment = segment
        self.offset = offset
        self.expected_crc = expected_crc
        self.actual_crc = actual_crc
        self.reason = reason

    def detail(self) -> dict:
        """The structured fields as a JSON-friendly dict."""
        return {
            "path": self.path,
            "segment": self.segment,
            "offset": self.offset,
            "expected_crc": self.expected_crc,
            "actual_crc": self.actual_crc,
            "reason": self.reason,
        }


class RecoveryError(DatabaseError, LogCorruptionDetail):
    """The write-ahead log could not be replayed."""

    def __init__(self, message: str, **detail) -> None:
        super().__init__(message)
        self._attach_detail(**detail)


# ---------------------------------------------------------------------------
# weblims — 3-tier web LIMS substrate
# ---------------------------------------------------------------------------


class WebError(ReproError):
    """Root of all web-tier errors."""


class RoutingError(WebError):
    """No servlet is mapped to the requested path."""


class FilterError(WebError):
    """A servlet filter failed or was misconfigured."""


class TemplateError(WebError):
    """A template ("JSP") could not be rendered."""


class SessionError(WebError):
    """Invalid session usage (expired or unknown session id)."""


class BadRequestError(WebError):
    """The client request was malformed (missing parameter, bad value)."""


# ---------------------------------------------------------------------------
# messaging — persistent JMS-analog broker
# ---------------------------------------------------------------------------


class MessagingError(ReproError):
    """Root of all messaging errors."""


class UnknownQueueError(MessagingError):
    """A producer or consumer referenced an undeclared queue."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown queue: {name!r}")
        self.queue_name = name


class ConnectionClosedError(MessagingError):
    """An operation was attempted on a closed connection."""


class AcknowledgeError(MessagingError):
    """A consumer acknowledged a message it does not hold."""


class JournalError(MessagingError, LogCorruptionDetail):
    """The broker journal is corrupt or unreadable."""

    def __init__(self, message: str, **detail) -> None:
        super().__init__(message)
        self._attach_detail(**detail)


class DeadLetterError(MessagingError):
    """A dead-letter operation referenced an unknown quarantined message."""

    def __init__(self, message_id: int) -> None:
        super().__init__(f"no dead-lettered message with id {message_id}")
        self.message_id = message_id


# ---------------------------------------------------------------------------
# xmlbridge — relational <-> XML translation
# ---------------------------------------------------------------------------


class XmlBridgeError(ReproError):
    """Root of all relational<->XML translation errors."""


class XmlExtractionError(XmlBridgeError):
    """Relational data could not be rendered as XML."""


class XmlTranslationError(XmlBridgeError):
    """An XML document could not be mapped back to relational rows."""


# ---------------------------------------------------------------------------
# core — the Exp-WF workflow module
# ---------------------------------------------------------------------------


class WorkflowError(ReproError):
    """Root of all workflow-module errors."""


class SpecificationError(WorkflowError):
    """A workflow pattern definition is invalid."""


class ConditionError(WorkflowError):
    """A transition condition failed to parse or evaluate."""


class IllegalTransitionError(WorkflowError):
    """A state machine was asked to make a transition Fig. 4 forbids."""

    def __init__(self, machine: str, current: str, event: str) -> None:
        super().__init__(
            f"illegal transition in {machine}: cannot apply {event!r} "
            f"in state {current!r}"
        )
        self.machine = machine
        self.current = current
        self.event = event


class EligibilityError(WorkflowError):
    """A task was activated although its eligibility rules do not hold."""


class AuthorizationError(WorkflowError):
    """An authorization decision was missing, duplicated, or unauthorized."""


class DispatchError(WorkflowError):
    """A task instance could not be handed to any agent."""


class InstanceError(WorkflowError):
    """Invalid operation on a workflow or task instance."""


# ---------------------------------------------------------------------------
# resilience — fault injection and recovery machinery
# ---------------------------------------------------------------------------


class ResilienceError(ReproError):
    """Root of all resilience-layer errors."""


class FaultInjected(ResilienceError):
    """A deterministic fault plan fired a ``crash`` action.

    Raised *by design* at an injection point to simulate the process
    dying there; chaos tests catch it, "restart" the affected component
    from its durable state, and assert that recovery holds.
    """

    def __init__(self, point: str, note: str = "") -> None:
        detail = f" ({note})" if note else ""
        super().__init__(f"injected crash at {point!r}{detail}")
        self.point = point
        self.note = note


class CircuitOpenError(ResilienceError):
    """An operation was refused because its circuit breaker is open."""

    def __init__(self, name: str) -> None:
        super().__init__(f"circuit breaker {name!r} is open")
        self.breaker_name = name


class LeaseExpiredError(ResilienceError):
    """An agent tried to act on an instance whose lease already expired."""


# ---------------------------------------------------------------------------
# agents — external-system wrappers
# ---------------------------------------------------------------------------


class AgentError(ReproError):
    """Root of all agent-framework errors."""


class AgentFormatError(AgentError):
    """An agent could not translate between XML and its native format."""


class AgentExecutionError(AgentError):
    """The wrapped external system failed while running a task."""


class UnknownAgentError(AgentError):
    """A message referenced an agent that is not registered."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown agent: {name!r}")
        self.agent_name = name
