"""Typed XML documents carrying relational rows between system boundaries.

Document shape::

    <task-input kind="dispatch" task-instance="42">
      <table name="Experiment">
        <row>
          <column name="experiment_id" type="integer">17</column>
          <column name="name" type="text">pcr-17</column>
          <column name="score" type="real" null="true"/>
        </row>
      </table>
      <table name="Sample"> ... </table>
    </task-input>

Every ``<column>`` element records the minidb column type, making the
relational→XML→relational roundtrip lossless, including NULLs and
timestamps.  Root attributes are free-form strings used for routing
metadata (task ids, message kinds, ...).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any, Iterable

from repro.errors import XmlExtractionError, XmlTranslationError
from repro.minidb.engine import Database
from repro.minidb.schema import TableSchema
from repro.minidb.types import ColumnType, from_wire, to_wire


class RelationalDocument:
    """An ordered collection of (table, rows) destined for XML transfer."""

    def __init__(self, root_tag: str = "document", **attributes: str) -> None:
        if not root_tag or not root_tag.replace("-", "").replace("_", "").isalnum():
            raise XmlExtractionError(f"invalid root tag: {root_tag!r}")
        self.root_tag = root_tag
        self.attributes: dict[str, str] = {
            key.replace("_", "-"): str(value) for key, value in attributes.items()
        }
        # table name -> (schema snapshot {column: type}, list of rows)
        self._tables: dict[str, tuple[dict[str, ColumnType], list[dict[str, Any]]]]
        self._tables = {}

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def add_rows(
        self,
        schema: TableSchema,
        rows: Iterable[dict[str, Any]],
        extra_columns: dict[str, ColumnType] | None = None,
    ) -> None:
        """Append rows belonging to ``schema``'s table.

        ``extra_columns`` types any columns beyond the schema — used for
        merged parent/child reads where the child row carries inherited
        parent columns.
        """
        types = {column.name: column.type for column in schema.columns}
        if extra_columns:
            types.update(extra_columns)
        existing_types, existing_rows = self._tables.get(schema.name, (types, []))
        existing_types.update(types)
        for row in rows:
            for column in row:
                if column not in existing_types:
                    raise XmlExtractionError(
                        f"row for table {schema.name!r} carries untyped "
                        f"column {column!r}"
                    )
            existing_rows.append(dict(row))
        self._tables[schema.name] = (existing_types, existing_rows)

    def add_table_from_db(
        self, db: Database, table: str, rows: Iterable[dict[str, Any]]
    ) -> None:
        """Append rows typed via the live schema (merging parent columns)."""
        schema = db.schema(table)
        extra: dict[str, ColumnType] = {}
        parent_name = schema.parent
        while parent_name is not None:
            parent_schema = db.schema(parent_name)
            for column in parent_schema.columns:
                extra.setdefault(column.name, column.type)
            parent_name = parent_schema.parent
        self.add_rows(schema, rows, extra_columns=extra)

    def tables(self) -> list[str]:
        """Table names present in the document, in insertion order."""
        return list(self._tables)

    def rows(self, table: str) -> list[dict[str, Any]]:
        """The rows stored for ``table`` (copies)."""
        if table not in self._tables:
            return []
        return [dict(row) for row in self._tables[table][1]]

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_xml(self) -> str:
        """Render the document as an XML string."""
        root = ET.Element(self.root_tag, dict(self.attributes))
        for table_name, (types, rows) in self._tables.items():
            table_element = ET.SubElement(root, "table", {"name": table_name})
            for row in rows:
                row_element = ET.SubElement(table_element, "row")
                for column, value in row.items():
                    column_type = types[column]
                    attrs = {"name": column, "type": column_type.value}
                    if value is None:
                        attrs["null"] = "true"
                        ET.SubElement(row_element, "column", attrs)
                        continue
                    column_element = ET.SubElement(row_element, "column", attrs)
                    column_element.text = str(to_wire(value, column_type))
        return ET.tostring(root, encoding="unicode")

    @staticmethod
    def from_xml(xml_text: str) -> "RelationalDocument":
        """Parse a document produced by :meth:`to_xml` (or by an agent)."""
        try:
            root = ET.fromstring(xml_text)
        except ET.ParseError as error:
            raise XmlTranslationError(f"malformed XML: {error}") from None
        document = RelationalDocument.__new__(RelationalDocument)
        document.root_tag = root.tag
        document.attributes = dict(root.attrib)
        document._tables = {}
        for table_element in root.findall("table"):
            table_name = table_element.get("name")
            if not table_name:
                raise XmlTranslationError("<table> element without name")
            types: dict[str, ColumnType] = {}
            rows: list[dict[str, Any]] = []
            for row_element in table_element.findall("row"):
                row: dict[str, Any] = {}
                for column_element in row_element.findall("column"):
                    column = column_element.get("name")
                    type_name = column_element.get("type")
                    if not column or not type_name:
                        raise XmlTranslationError(
                            f"<column> in table {table_name!r} missing "
                            "name or type"
                        )
                    try:
                        column_type = ColumnType(type_name)
                    except ValueError:
                        raise XmlTranslationError(
                            f"unknown column type {type_name!r} in table "
                            f"{table_name!r}"
                        ) from None
                    types[column] = column_type
                    if column_element.get("null") == "true":
                        row[column] = None
                    else:
                        text = column_element.text or ""
                        try:
                            row[column] = from_wire(text, column_type)
                        except Exception as error:
                            raise XmlTranslationError(
                                f"bad value for {table_name}.{column}: {error}"
                            ) from None
                rows.append(row)
            if table_name in document._tables:
                existing_types, existing_rows = document._tables[table_name]
                existing_types.update(types)
                existing_rows.extend(rows)
            else:
                document._tables[table_name] = (types, rows)
        return document

    # ------------------------------------------------------------------
    # Applying back to the database
    # ------------------------------------------------------------------

    def validate_against(self, db: Database) -> None:
        """Check every row fits the live schema (tables/columns exist)."""
        for table_name, (__, rows) in self._tables.items():
            if not db.has_table(table_name):
                raise XmlTranslationError(
                    f"document references unknown table {table_name!r}"
                )
            schema = db.schema(table_name)
            known = set(schema.column_names())
            parent_name = schema.parent
            while parent_name is not None:
                parent_schema = db.schema(parent_name)
                known.update(parent_schema.column_names())
                parent_name = parent_schema.parent
            for row in rows:
                unknown = set(row) - known
                if unknown:
                    raise XmlTranslationError(
                        f"document row for {table_name!r} has unknown "
                        f"columns {sorted(unknown)}"
                    )

    def insert_into(self, db: Database, table: str) -> list[dict[str, Any]]:
        """Insert this document's rows for ``table``, returning stored rows.

        Columns not belonging to ``table`` itself (inherited parent
        columns echoed back by an agent) are dropped, mirroring how the
        original system's translator writes each table separately.
        """
        schema = db.schema(table)
        own_columns = set(schema.column_names())
        inserted = []
        for row in self.rows(table):
            trimmed = {
                column: value
                for column, value in row.items()
                if column in own_columns
            }
            inserted.append(db.insert(table, trimmed))
        return inserted
