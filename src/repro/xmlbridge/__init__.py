"""xmlbridge — relational <-> XML translation (the NeT/CoT analog).

The paper uses a modified version of NeT & CoT [19] "to automatically
extract task input data from the relational database and represent it in
a general XML format, and similarly to translate XML data back into the
relational format".  This package provides that generic transfer format:

* :class:`RelationalDocument` assembles rows from any number of tables
  into one typed XML document (attributes carry the column types so the
  reverse mapping is lossless);
* the reverse mapping validates each row against the live database
  schema before handing it back as plain dicts.

Agents never see relational rows directly — they receive and return these
XML documents and translate them to/from their proprietary formats.
"""

from repro.xmlbridge.document import RelationalDocument

__all__ = ["RelationalDocument"]
