"""The metrics registry: counters, gauges, histograms, text exposition.

Metric families are identified by name; each family holds one child per
distinct label set (``http_request_latency_ms{path="/user"}`` and
``...{path="/workflow"}`` are two children of one family).  Histograms
keep a bounded reservoir of observations and report p50/p95/p99
summaries — exactly the quantities the paper's evaluation tables are
built from.

Two consumption paths:

* :meth:`MetricsRegistry.render` — a Prometheus-style text exposition
  (served at ``GET /workflow/metrics`` by the MetricsServlet);
* :meth:`MetricsRegistry.snapshot` — a JSON-friendly dict tree (written
  as ``BENCH_*.json`` trajectory files by the benchmark harness).

*Collectors* bridge the pull model: callbacks registered with
:meth:`MetricsRegistry.add_collector` run right before every render or
snapshot and copy externally-owned counters (``DatabaseStats``,
``BrokerStats``, ``ContainerStats``, ``FilterStats``) into the registry.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

#: Quantiles reported by every histogram summary.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: _LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    body = ",".join(f'{name}="{value}"' for name, value in pairs)
    return "{" + body + "}"


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def set(self, value: float) -> None:
        """Overwrite — used by collectors mirroring an external
        monotone counter (e.g. ``DatabaseStats.reads``)."""
        self.value = float(value)


@dataclass
class Gauge:
    """A value that can go up and down."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


@dataclass
class Histogram:
    """Observations with count/sum and a bounded quantile reservoir.

    When an observation arrives with a ``trace_id`` the histogram also
    keeps it as an *exemplar* — a ``(value, trace_id)`` pair — retaining
    the slowest :attr:`exemplar_limit` seen.  Exemplars are what link a
    tail quantile back to a concrete trace: the profiling layer reads
    them to jump from "p99 is 40 ms" to the span tree of an actual 40 ms
    request.  Callers that never pass a trace id pay nothing.
    """

    reservoir_size: int = 4096
    exemplar_limit: int = 8
    count: int = 0
    sum: float = 0.0
    _reservoir: list[float] = field(default_factory=list)
    _exemplars: list[tuple[float, str]] = field(default_factory=list)

    def observe(self, value: float, trace_id: str | None = None) -> None:
        self.count += 1
        self.sum += float(value)
        self._reservoir.append(float(value))
        overflow = len(self._reservoir) - self.reservoir_size
        if overflow > 0:
            # Drop the oldest observations: recent behaviour is what a
            # scrape should describe.
            del self._reservoir[:overflow]
        if trace_id is not None:
            self._exemplars.append((float(value), trace_id))
            if len(self._exemplars) > self.exemplar_limit:
                # Keep the slowest: exemplars exist to explain the tail.
                self._exemplars.sort(key=lambda pair: pair[0])
                del self._exemplars[: len(self._exemplars) - self.exemplar_limit]

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (nearest-rank) of retained observations."""
        return _nearest_rank(self._reservoir, q)

    def exemplars(self) -> list[dict[str, Any]]:
        """Retained exemplars, slowest first."""
        ordered = sorted(self._exemplars, key=lambda pair: -pair[0])
        return [
            {"value": value, "trace_id": trace_id}
            for value, trace_id in ordered
        ]

    def summary(self) -> dict[str, float]:
        """count, sum and the standard quantiles, JSON-friendly."""
        result: dict[str, float] = {"count": float(self.count), "sum": self.sum}
        for q in SUMMARY_QUANTILES:
            result[f"p{int(q * 100)}"] = self.quantile(q)
        return result


def _nearest_rank(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


@dataclass
class _Family:
    name: str
    kind: str  # 'counter' | 'gauge' | 'histogram'
    help: str
    children: dict[_LabelKey, Any] = field(default_factory=dict)

    def aggregate_quantile(self, q: float) -> float:
        """Quantile over every child's reservoir (histograms only)."""
        merged: list[float] = []
        for child in self.children.values():
            merged.extend(child._reservoir)
        return _nearest_rank(merged, q)


class MetricsRegistry:
    """Process-wide metric store with lazy family/child creation."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}
        self._collectors: list[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Instrument accessors (create-on-first-use)
    # ------------------------------------------------------------------

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._child(name, "counter", help, labels, Counter)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._child(name, "gauge", help, labels, Gauge)

    def histogram(self, name: str, help: str = "", **labels: Any) -> Histogram:
        return self._child(name, "histogram", help, labels, Histogram)

    def _child(self, name, kind, help, labels, factory):
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = _Family(name, kind, help)
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {family.kind}, not a {kind}"
                )
            if help and not family.help:
                family.help = help
            key = _label_key(labels)
            child = family.children.get(key)
            if child is None:
                child = family.children[key] = factory()
            return child

    def family_quantile(self, name: str, q: float) -> float:
        """Aggregate quantile across every label set of a histogram."""
        with self._lock:
            family = self._families.get(name)
            if family is None or family.kind != "histogram":
                return 0.0
            return family.aggregate_quantile(q)

    def family_value(self, name: str, **labels: Any) -> float:
        """Sum of a counter/gauge family's child values.

        With ``labels`` only children whose label sets contain every
        given pair are summed; an unknown family (or a histogram —
        pick a quantile with :meth:`family_quantile` instead) reads as
        ``0.0``.  This is the read path alert rules with a
        ``metric:<family>`` source evaluate against — callers wanting
        fresh collector-fed values run :meth:`collect` first.
        """
        wanted = set(_label_key(labels))
        with self._lock:
            family = self._families.get(name)
            if family is None or family.kind == "histogram":
                return 0.0
            total = 0.0
            for key, child in family.children.items():
                if wanted and not wanted.issubset(set(key)):
                    continue
                total += child.value
            return total

    def family_exemplars(self, name: str) -> list[dict[str, Any]]:
        """Exemplars across every label set of a histogram, slowest first."""
        with self._lock:
            family = self._families.get(name)
            if family is None or family.kind != "histogram":
                return []
            merged: list[dict[str, Any]] = []
            for key, child in family.children.items():
                for exemplar in child.exemplars():
                    merged.append({**exemplar, "labels": dict(key)})
        merged.sort(key=lambda entry: -entry["value"])
        return merged

    # ------------------------------------------------------------------
    # Collectors (pull-time bridges from external counters)
    # ------------------------------------------------------------------

    def add_collector(self, collector: Callable[[], None]) -> None:
        """Register a callback run before every render/snapshot."""
        with self._lock:
            self._collectors.append(collector)

    def collect(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            try:
                collector()
            except Exception:  # noqa: BLE001 - a broken collector must
                pass  # never take the exposition endpoint down

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------

    def render(self) -> str:
        """Prometheus-style text exposition of every metric."""
        self.collect()
        lines: list[str] = []
        with self._lock:
            for name in sorted(self._families):
                family = self._families[name]
                if family.help:
                    lines.append(f"# HELP {name} {family.help}")
                exposition_kind = (
                    "summary" if family.kind == "histogram" else family.kind
                )
                lines.append(f"# TYPE {name} {exposition_kind}")
                for key in sorted(family.children):
                    child = family.children[key]
                    if family.kind == "histogram":
                        for q in SUMMARY_QUANTILES:
                            label_str = _render_labels(
                                key, (("quantile", f"{q}"),)
                            )
                            lines.append(
                                f"{name}{label_str} {child.quantile(q):.6f}"
                            )
                        lines.append(
                            f"{name}_count{_render_labels(key)} {child.count}"
                        )
                        lines.append(
                            f"{name}_sum{_render_labels(key)} {child.sum:.6f}"
                        )
                    else:
                        lines.append(
                            f"{name}{_render_labels(key)} {child.value:g}"
                        )
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict[str, Any]:
        """The registry as a JSON-friendly dict tree.

        ``{metric name: {kind, help, series: [{labels, value|summary}]}}``
        """
        self.collect()
        result: dict[str, Any] = {}
        with self._lock:
            for name, family in self._families.items():
                series = []
                for key, child in family.children.items():
                    entry: dict[str, Any] = {"labels": dict(key)}
                    if family.kind == "histogram":
                        entry["summary"] = child.summary()
                        exemplars = child.exemplars()
                        if exemplars:
                            entry["exemplars"] = exemplars
                    else:
                        entry["value"] = child.value
                    series.append(entry)
                result[name] = {
                    "kind": family.kind,
                    "help": family.help,
                    "series": series,
                }
        return result

    def reset(self) -> None:
        """Drop every family (collectors stay registered)."""
        with self._lock:
            self._families.clear()
