"""Structured JSON logging, correlated with traces.

The reproduction's tiers used to narrate themselves through ad-hoc
channels — bare counters, event payloads, the occasional print in an
example script.  This module gives every tier one structured channel:

* each :class:`LogRecord` is a flat, JSON-serialisable dict — timestamp,
  level, logger name, message, free-form fields;
* records are **trace-correlated**: when a span is open on the emitting
  thread, its trace and span ids are stamped onto the record, so a log
  line, the span tree and the audit rows of one request all share one
  trace id;
* records are **level-filtered** at emission (``set_level``) and again
  at query time (``records(level=...)``);
* the buffer is a **ring** (like the tracer's span archive), so a
  long-running server cannot leak — ``dropped`` counts the discards;
* the stream is **subscribable**: callbacks see every record the level
  filter admits, which is how the metrics registry counts records per
  level and how a tail-follower would stream them.

The :class:`AuditStore <repro.obs.audit.AuditStore>` writes through this
log, so the durable audit trail and the ephemeral log stay in step.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.resilience.clock import Clock, SystemClock

#: Numeric severities, logging-module compatible ordering.
LEVELS: dict[str, int] = {
    "debug": 10,
    "info": 20,
    "warning": 30,
    "error": 40,
}


def level_number(level: str) -> int:
    """Numeric severity of ``level`` (raises ``KeyError`` on unknown)."""
    return LEVELS[level]


@dataclass
class LogRecord:
    """One structured log line."""

    ts: float
    level: str
    logger: str
    message: str
    sequence: int
    trace_id: str | None = None
    span_id: str | None = None
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-friendly representation (fields inlined last)."""
        record: dict[str, Any] = {
            "ts": self.ts,
            "level": self.level,
            "logger": self.logger,
            "message": self.message,
            "sequence": self.sequence,
        }
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        if self.span_id is not None:
            record["span_id"] = self.span_id
        record.update(self.fields)
        return record

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"), default=str)


class StructuredLog:
    """Ring-buffered, level-filtered, trace-correlated log stream."""

    def __init__(
        self,
        tracer=None,
        capacity: int = 10_000,
        level: str = "debug",
        clock: Clock | None = None,
    ) -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown log level {level!r}")
        self.tracer = tracer
        #: Injectable time source stamping record timestamps.
        self.clock: Clock = clock or SystemClock()
        self.capacity = capacity
        self.threshold = LEVELS[level]
        self.dropped = 0
        self.emitted = 0
        #: records suppressed by the level filter (not buffered at all).
        self.suppressed = 0
        self._records: list[LogRecord] = []
        self._subscribers: list[Callable[[LogRecord], None]] = []
        self._next_sequence = 1
        self._lock = threading.Lock()

    # -- emission -----------------------------------------------------------

    def set_level(self, level: str) -> None:
        """Change the emission threshold (``debug``..``error``)."""
        if level not in LEVELS:
            raise ValueError(f"unknown log level {level!r}")
        self.threshold = LEVELS[level]

    def log(
        self, level: str, logger: str, message: str, **fields: Any
    ) -> LogRecord | None:
        """Emit one record; returns ``None`` when the level filter or an
        unknown level suppresses it.  Never raises — logging must not
        take the instrumented tier down."""
        severity = LEVELS.get(level)
        if severity is None:
            return None
        if severity < self.threshold:
            with self._lock:
                self.suppressed += 1
            return None
        trace_id = span_id = None
        if self.tracer is not None:
            try:
                current = self.tracer.current_span()
            except Exception:  # noqa: BLE001 - correlation is best-effort
                current = None
            if current is not None:
                trace_id = current.trace_id
                span_id = current.span_id
        with self._lock:
            record = LogRecord(
                ts=self.clock.now(),
                level=level,
                logger=logger,
                message=message,
                sequence=self._next_sequence,
                trace_id=trace_id,
                span_id=span_id,
                fields=fields,
            )
            self._next_sequence += 1
            self.emitted += 1
            self._records.append(record)
            overflow = len(self._records) - self.capacity
            if overflow > 0:
                del self._records[:overflow]
                self.dropped += overflow
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            try:
                subscriber(record)
            except Exception:  # noqa: BLE001 - a bad subscriber is not fatal
                pass
        return record

    def logger(self, name: str) -> "BoundLogger":
        """A named logger bound to this stream."""
        return BoundLogger(self, name)

    # -- streaming ----------------------------------------------------------

    def subscribe(self, callback: Callable[[LogRecord], None]) -> None:
        """Invoke ``callback`` for every future admitted record."""
        with self._lock:
            if callback not in self._subscribers:
                self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[LogRecord], None]) -> None:
        with self._lock:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

    # -- queries ------------------------------------------------------------

    def records(
        self,
        level: str | None = None,
        logger: str | None = None,
        trace_id: str | None = None,
        limit: int | None = None,
    ) -> list[LogRecord]:
        """Buffered records, oldest first, optionally filtered.

        ``level`` is a *minimum* severity; ``limit`` keeps the newest N
        after filtering.
        """
        minimum = LEVELS[level] if level is not None else 0
        with self._lock:
            records = list(self._records)
        selected = [
            record
            for record in records
            if LEVELS[record.level] >= minimum
            and (logger is None or record.logger == logger)
            and (trace_id is None or record.trace_id == trace_id)
        ]
        if limit is not None:
            selected = selected[-limit:]
        return selected

    def tail(self, n: int = 20) -> list[LogRecord]:
        """The newest ``n`` records, oldest first."""
        with self._lock:
            return list(self._records[-n:])

    def render(self, **filters: Any) -> str:
        """The buffer as JSON lines (one record per line)."""
        return "\n".join(r.to_json() for r in self.records(**filters))

    def clear(self) -> None:
        """Drop buffered records; counters and sequencing continue."""
        with self._lock:
            self._records.clear()


class BoundLogger:
    """A named view over a :class:`StructuredLog`."""

    def __init__(self, stream: StructuredLog, name: str) -> None:
        self.stream = stream
        self.name = name

    def debug(self, message: str, **fields: Any) -> LogRecord | None:
        return self.stream.log("debug", self.name, message, **fields)

    def info(self, message: str, **fields: Any) -> LogRecord | None:
        return self.stream.log("info", self.name, message, **fields)

    def warning(self, message: str, **fields: Any) -> LogRecord | None:
        return self.stream.log("warning", self.name, message, **fields)

    def error(self, message: str, **fields: Any) -> LogRecord | None:
        return self.stream.log("error", self.name, message, **fields)
