"""Latency attribution and continuous profiling (``repro.obs.prof``).

Everything here is opt-in: until :func:`install_profiling` is called,
the rest of the system carries no profiling cost beyond a handful of
``is None`` checks.  See the module docstrings for the pieces:

* :mod:`~repro.obs.prof.attribution` — critical-path analysis and
  stage-level latency decomposition of archived traces;
* :mod:`~repro.obs.prof.locks` — lock wait/hold profiling with holder
  attribution, pushed down into the broker and minidb;
* :mod:`~repro.obs.prof.sampler` — collapsed-stack wall-clock sampler;
* :mod:`~repro.obs.prof.retain` — tail-based slow-trace retention;
* :mod:`~repro.obs.prof.slo` — latency SLOs and error-budget burn rate;
* :mod:`~repro.obs.prof.witness` — runtime lock-order witness asserting
  observed acquisition orders against the static conlint graph;
* :mod:`~repro.obs.prof.profiler` — the facade tying them together.

``python -m repro.obs.prof report`` runs a self-contained workload and
prints the attribution/profile report (see ``__main__``).
"""

from repro.obs.prof.attribution import CriticalPathAnalyzer, TraceAttribution
from repro.obs.prof.locks import LockProfiler, ProfiledLock
from repro.obs.prof.profiler import Profiler, install_profiling
from repro.obs.prof.retain import SlowTraceRetainer
from repro.obs.prof.sampler import StackSampler
from repro.obs.prof.slo import SLOPolicy, SLOTracker
from repro.obs.prof.witness import LockOrderWitness

__all__ = [
    "LockOrderWitness",
    "CriticalPathAnalyzer",
    "TraceAttribution",
    "LockProfiler",
    "ProfiledLock",
    "Profiler",
    "install_profiling",
    "SlowTraceRetainer",
    "StackSampler",
    "SLOPolicy",
    "SLOTracker",
]
