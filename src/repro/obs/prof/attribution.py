"""Critical-path analysis and stage-level latency attribution.

Answers the question ROADMAP items 1–3 all start from: of one
request's end-to-end latency, how much went to which stage?  The raw
material is the span archive the tracer already keeps; this module
reconstructs each trace's tree (``TraceExporter.tree``), then produces
two decompositions:

**Synchronous stages** — the ``http.request`` root span covers the
filter's synchronous work: request parsing, workflow-engine dispatch,
and the WAL commit the dispatch waits on.  Attribution here is by
*exclusive time* (a span's duration minus its sync children's), so the
named stages plus an ``other`` remainder sum to the measured root
duration by construction:

====================  ===================================================
stage                 span names
====================  ===================================================
``filter``            ``filter.process`` / ``filter.preprocess`` / ...
``engine.dispatch``   ``engine.*`` opened inside the servlet
``db.commit``         ``db.commit`` (WAL append → fsync, profiler-gated)
``other``             root remainder: routing, servlet glue, response
====================  ===================================================

**Asynchronous pipeline stages** — after the HTTP response returns, the
dispatched work flows broker → agent → broker → engine pump.  Those
spans join the same trace but fall *outside* the root's interval, so
they are reported as a separate pipeline decomposition rather than
forced into the sync total:

====================  ===================================================
``queue.wait``        ``broker.deliver`` (send → delivery wait)
``agent.exec``        ``agent.handle``
``engine.apply``      ``engine.apply_message`` (pump applying a result)
====================  ===================================================

The **critical path** is the root-to-leaf chain that determines the
trace's latest-finishing span: from the latest-ending root, repeatedly
descend into the child whose end time is latest.  Per-pattern
aggregation averages the per-trace attributions and keeps the slowest
trace id of each pattern as the natural entry point for a deep dive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

#: Span-name prefixes mapped to synchronous stages, checked in order —
#: ``engine.apply_message`` must not land in ``engine.dispatch``.
_SYNC_STAGES: tuple[tuple[str, str | None], ...] = (
    ("db.commit", "db.commit"),
    ("filter.", "filter"),
    ("engine.apply_message", None),  # async, excluded from sync stages
    ("engine.", "engine.dispatch"),
)

#: Exact span names mapped to asynchronous pipeline stages.
_ASYNC_STAGES: dict[str, str] = {
    "broker.deliver": "queue.wait",
    "agent.handle": "agent.exec",
    "engine.apply_message": "engine.apply",
}

#: Ordering used when rendering stage tables.
SYNC_STAGE_ORDER = ("filter", "engine.dispatch", "db.commit", "other")
ASYNC_STAGE_ORDER = ("queue.wait", "agent.exec", "engine.apply")


def sync_stage(name: str) -> str | None:
    """The synchronous stage a span name belongs to, if any."""
    for prefix, stage in _SYNC_STAGES:
        if name.startswith(prefix):
            return stage
    return None


@dataclass
class TraceAttribution:
    """One trace's latency, decomposed."""

    trace_id: str
    pattern: str | None
    total_ms: float
    #: Synchronous stages; includes ``other`` and sums to ``total_ms``.
    stages: dict[str, float]
    #: Post-response pipeline stages (wall time, may overlap).
    async_stages: dict[str, float]
    #: ``(span name, duration_ms)`` along the critical path, root first.
    critical_path: list[tuple[str, float]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "pattern": self.pattern,
            "total_ms": self.total_ms,
            "stages": dict(self.stages),
            "async_stages": dict(self.async_stages),
            "critical_path": [
                {"name": name, "duration_ms": duration}
                for name, duration in self.critical_path
            ],
        }


def _span_end(node: dict[str, Any]) -> float:
    return node["start_time"] + (node["duration_ms"] or 0.0) / 1000.0


class CriticalPathAnalyzer:
    """Attributes traces from a tracer/exporter pair.

    Construct over an :class:`~repro.obs.trace.TraceExporter` (or a hub:
    ``CriticalPathAnalyzer(hub.exporter)``).
    """

    def __init__(self, exporter) -> None:
        self.exporter = exporter

    # -- one trace ----------------------------------------------------------

    def attribute(self, trace_id: str) -> TraceAttribution | None:
        """Decompose one trace; ``None`` without an ``http.request`` root."""
        forest = self.exporter.tree(trace_id)
        root = self._find_root(forest)
        if root is None or root["duration_ms"] is None:
            return None
        total_ms = root["duration_ms"]
        stages: dict[str, float] = {s: 0.0 for s in SYNC_STAGE_ORDER}
        self._accumulate_sync(root, stages)
        accounted = sum(
            v for k, v in stages.items() if k != "other"
        )
        stages["other"] = max(0.0, total_ms - accounted)
        async_stages: dict[str, float] = {s: 0.0 for s in ASYNC_STAGE_ORDER}
        pattern = self._collect_async(forest, async_stages)
        return TraceAttribution(
            trace_id=trace_id,
            pattern=pattern,
            total_ms=total_ms,
            stages=stages,
            async_stages=async_stages,
            critical_path=self.critical_path(forest),
        )

    @staticmethod
    def _find_root(forest: list[dict[str, Any]]) -> dict[str, Any] | None:
        for node in forest:
            if node["name"] == "http.request":
                return node
        return None

    def _accumulate_sync(
        self, node: dict[str, Any], stages: dict[str, float]
    ) -> None:
        """Add each sync descendant's *exclusive* time to its stage."""
        for child in node["children"]:
            stage = sync_stage(child["name"])
            if stage is None:
                continue
            duration = child["duration_ms"] or 0.0
            child_sync = sum(
                (grand["duration_ms"] or 0.0)
                for grand in child["children"]
                if sync_stage(grand["name"]) is not None
            )
            stages[stage] = stages.get(stage, 0.0) + max(
                0.0, duration - child_sync
            )
            self._accumulate_sync(child, stages)

    def _collect_async(
        self, forest: list[dict[str, Any]], async_stages: dict[str, float]
    ) -> str | None:
        """Sum pipeline-stage durations; returns the pattern, if seen."""
        pattern: str | None = None
        stack = list(forest)
        while stack:
            node = stack.pop()
            stack.extend(node["children"])
            value = node["attributes"].get("pattern")
            if pattern is None and isinstance(value, str):
                pattern = value
            stage = _ASYNC_STAGES.get(node["name"])
            if stage is not None:
                async_stages[stage] += node["duration_ms"] or 0.0
        return pattern

    @staticmethod
    def critical_path(
        forest: list[dict[str, Any]],
    ) -> list[tuple[str, float]]:
        """Root-to-leaf chain following the latest-ending child."""
        timed = [n for n in forest if n["duration_ms"] is not None]
        if not timed:
            return []
        node = max(timed, key=_span_end)
        path: list[tuple[str, float]] = []
        while node is not None:
            path.append((node["name"], node["duration_ms"] or 0.0))
            children = [
                c for c in node["children"] if c["duration_ms"] is not None
            ]
            node = max(children, key=_span_end) if children else None
        return path

    # -- many traces --------------------------------------------------------

    def attribute_all(
        self, trace_ids: Iterable[str] | None = None
    ) -> list[TraceAttribution]:
        """Attribution for every (given or archived) trace with a root."""
        if trace_ids is None:
            trace_ids = self.exporter.tracer.trace_ids()
        results = []
        for trace_id in trace_ids:
            attribution = self.attribute(trace_id)
            if attribution is not None:
                results.append(attribution)
        return results

    def aggregate(
        self, attributions: Iterable[TraceAttribution]
    ) -> dict[str, Any]:
        """Per-pattern stage means over many traces.

        ``pattern=None`` traces aggregate under ``"(none)"``.  Each
        pattern reports trace count, mean total, mean per-stage splits
        (sync and async) and the slowest trace's id — the jump-off point
        into the slow-trace retainer.
        """
        by_pattern: dict[str, list[TraceAttribution]] = {}
        for attribution in attributions:
            key = attribution.pattern or "(none)"
            by_pattern.setdefault(key, []).append(attribution)
        result: dict[str, Any] = {}
        for pattern, group in sorted(by_pattern.items()):
            count = len(group)
            slowest = max(group, key=lambda a: a.total_ms)
            result[pattern] = {
                "traces": count,
                "mean_total_ms": sum(a.total_ms for a in group) / count,
                "max_total_ms": slowest.total_ms,
                "slowest_trace_id": slowest.trace_id,
                "stages": {
                    stage: sum(a.stages.get(stage, 0.0) for a in group)
                    / count
                    for stage in SYNC_STAGE_ORDER
                },
                "async_stages": {
                    stage: sum(
                        a.async_stages.get(stage, 0.0) for a in group
                    )
                    / count
                    for stage in ASYNC_STAGE_ORDER
                },
            }
        return result
