"""Tail-based slow-trace retention.

Histograms tell you *that* p99 is slow; exemplars give you the trace id
of a slow request; this retainer closes the loop by keeping the **full
span trees** of the N slowest requests per operation, captured at the
moment they were admitted (so the tracer's ring evicting old spans
later cannot hollow out a retained trace).

Admission is tail-based: a trace is only snapshotted when it enters the
operation's current top-N — after warmup that happens rarely, so the
steady-state cost of ``offer`` is one lock acquisition and a float
comparison.
"""

from __future__ import annotations

import threading
from typing import Any


class SlowTraceRetainer:
    """Keeps the span trees of the N slowest traces per operation."""

    def __init__(self, exporter, per_operation: int = 3) -> None:
        self.exporter = exporter
        self.per_operation = per_operation
        self._lock = threading.Lock()
        #: operation -> list of entries sorted slowest-first.
        self._slowest: dict[str, list[dict[str, Any]]] = {}

    def offer(
        self, operation: str, duration_ms: float, trace_id: str | None
    ) -> bool:
        """Consider one finished request; returns ``True`` if retained."""
        if trace_id is None:
            return False
        with self._lock:
            entries = self._slowest.setdefault(operation, [])
            if len(entries) >= self.per_operation and (
                duration_ms <= entries[-1]["duration_ms"]
            ):
                return False
        # Snapshot outside the lock: tree() walks the tracer ring.
        tree = self.exporter.tree(trace_id)
        entry = {
            "trace_id": trace_id,
            "duration_ms": duration_ms,
            "tree": tree,
        }
        with self._lock:
            entries = self._slowest.setdefault(operation, [])
            entries.append(entry)
            entries.sort(key=lambda e: -e["duration_ms"])
            del entries[self.per_operation:]
        return True

    def operations(self) -> list[str]:
        with self._lock:
            return sorted(self._slowest)

    def slowest(self, operation: str) -> list[dict[str, Any]]:
        """Retained entries for one operation, slowest first."""
        with self._lock:
            return [dict(e) for e in self._slowest.get(operation, [])]

    def tree(self, trace_id: str) -> list[dict[str, Any]] | None:
        """The retained span tree for a trace id, if any operation kept it."""
        with self._lock:
            for entries in self._slowest.values():
                for entry in entries:
                    if entry["trace_id"] == trace_id:
                        return entry["tree"]
        return None

    def report(self) -> dict[str, Any]:
        """Summary without the (bulky) trees: ids and durations only."""
        with self._lock:
            return {
                operation: [
                    {
                        "trace_id": e["trace_id"],
                        "duration_ms": e["duration_ms"],
                        "spans": _count_spans(e["tree"]),
                    }
                    for e in entries
                ]
                for operation, entries in sorted(self._slowest.items())
            }


def _count_spans(forest: list[dict[str, Any]]) -> int:
    count = 0
    stack = list(forest)
    while stack:
        node = stack.pop()
        count += 1
        stack.extend(node["children"])
    return count
