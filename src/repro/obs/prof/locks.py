"""Lock contention profiling: wait/hold histograms with holder sites.

A :class:`ProfiledLock` is a drop-in wrapper around an existing
``threading.Lock``/``RLock`` that measures, per outermost acquisition:

* **wait time** — how long the acquiring thread sat blocked before the
  lock was granted (zero on the uncontended fast path, which costs one
  non-blocking acquire attempt and two monotonic reads);
* **hold time** — how long the lock was then held, attributed to the
  *holder site* (the ``file:function`` that acquired it), so a report
  can say "``broker.py:receive`` held ``broker.registry`` for 40% of
  its total hold time".

Stat fields are only ever mutated by the thread that currently owns the
inner lock, so the wrapper needs no lock of its own.  The wrapper is
re-entrant when its inner lock is (owner/depth tracked explicitly) and
provides ``_is_owned`` so a ``threading.Condition`` built over it keeps
correct owner semantics — that is how the broker's per-queue conditions
get profiled without changing their wakeup behaviour.

Nothing in this module is installed by default: the broker and minidb
expose ``install_lock_profiler``/``wrap_mutex`` seams and the profiling
layer pushes wrappers *down* through them, so the lower tiers never
import ``repro.obs``.
"""

from __future__ import annotations

import sys
import threading
from typing import Any, Callable

from repro.obs.metrics import Histogram
from repro.resilience.clock import Clock, SystemClock

#: Frames from these files are skipped when attributing a holder site.
_SKIP_SUFFIXES = ("threading.py", "locks.py")

#: code object -> "file:function", so the hot path never re-formats a
#: site it has seen (bounded by the number of distinct call sites;
#: plain dict ops are GIL-atomic).
_SITE_LABELS: dict[Any, str] = {}


def _holder_site() -> str:
    """``file:function`` of the nearest frame outside lock machinery."""
    frame = sys._getframe(1)
    while frame is not None:
        code = frame.f_code
        if not code.co_filename.endswith(_SKIP_SUFFIXES):
            label = _SITE_LABELS.get(code)
            if label is None:
                name = code.co_filename.rsplit("/", 1)[-1]
                # conlint: allow=CC005 -- single-key dict store of an
                # idempotent value: GIL-atomic, and a racing duplicate
                # computation is harmless (same label either way).
                label = _SITE_LABELS[code] = f"{name}:{code.co_name}"
            return label
        frame = frame.f_back
    return "<unknown>"


class ProfiledLock:
    """Drop-in lock wrapper measuring wait/hold time per acquisition.

    Never constructs its own lock — the inner lock is passed in, which
    both keeps it a pure decorator and keeps the repo's lock-discipline
    lint out of play (the stats it writes are guarded by the inner lock
    itself: only the owning thread touches them).
    """

    def __init__(
        self,
        name: str,
        inner: Any,
        clock: Clock,
        witness: Any = None,
    ) -> None:
        self.name = name
        self.inner = inner
        self.clock = clock
        #: Optional :class:`repro.obs.prof.witness.LockOrderWitness`
        #: (typed loosely to avoid the import on the hot path): told
        #: about outermost acquisitions/final releases only, so the
        #: orders it records match the static analyzer's model, where a
        #: re-entrant hold is not a second acquisition.
        self.witness = witness
        self.acquisitions = 0
        self.contended = 0
        self.wait_hist = Histogram(reservoir_size=1024)
        self.hold_hist = Histogram(reservoir_size=1024)
        #: holder site -> cumulative hold ms.
        self.holders: dict[str, float] = {}
        self._owner: int | None = None
        self._depth = 0
        self._acquired_at = 0.0
        self._site = ""

    # -- lock protocol ------------------------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        me = threading.get_ident()
        if self._owner == me:
            # Re-entrant hold (inner is an RLock): no timing, the outer
            # acquisition already owns the clock.
            self.inner.acquire()
            self._depth += 1
            return True
        waited_ms = 0.0
        if not self.inner.acquire(False):
            if not blocking:
                return False
            t0 = self.clock.monotonic()
            if timeout is not None and timeout >= 0:
                if not self.inner.acquire(True, timeout):
                    return False
            else:
                self.inner.acquire()
            waited_ms = (self.clock.monotonic() - t0) * 1000.0
        # From here on the inner lock is held: stat writes are exclusive.
        self._owner = me
        self._depth = 1
        self._site = _holder_site()
        self._acquired_at = self.clock.monotonic()
        self.acquisitions += 1
        if waited_ms > 0.0:
            self.contended += 1
            self.wait_hist.observe(waited_ms)
        if self.witness is not None:
            self.witness.on_acquire(self.name)
        return True

    def release(self) -> None:
        if self._owner == threading.get_ident() and self._depth > 1:
            self._depth -= 1
            self.inner.release()
            return
        held_ms = (self.clock.monotonic() - self._acquired_at) * 1000.0
        self.hold_hist.observe(held_ms)
        site = self._site
        self.holders[site] = self.holders.get(site, 0.0) + held_ms
        if self.witness is not None:
            self.witness.on_release(self.name)
        self._owner = None
        self._depth = 0
        self.inner.release()

    def __enter__(self) -> "ProfiledLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def locked(self) -> bool:
        return self.inner.locked() if hasattr(self.inner, "locked") else False

    def _is_owned(self) -> bool:
        """Owner check used by ``threading.Condition``."""
        return self._owner == threading.get_ident()

    # -- reporting ----------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """JSON-friendly wait/hold/holder stats for this lock."""
        total_hold = sum(self.holders.values())
        holders = sorted(
            self.holders.items(), key=lambda item: -item[1]
        )
        return {
            "name": self.name,
            "acquisitions": self.acquisitions,
            "contended": self.contended,
            "contention_rate": (
                self.contended / self.acquisitions if self.acquisitions else 0.0
            ),
            "wait_ms": self.wait_hist.summary(),
            "hold_ms": self.hold_hist.summary(),
            "holders": [
                {
                    "site": site,
                    "hold_ms": held,
                    "share": held / total_hold if total_hold else 0.0,
                }
                for site, held in holders
            ],
        }


class LockProfiler:
    """Factory/registry of :class:`ProfiledLock` wrappers.

    ``wrap`` matches the seams the lower tiers expose
    (``MessageBroker.install_lock_profiler``, ``Database.wrap_mutex``):
    it takes a name and the existing lock and hands back the wrapper,
    remembering it for :meth:`report`.
    """

    def __init__(
        self, clock: Clock | None = None, witness: Any = None
    ) -> None:
        self.clock: Clock = clock or SystemClock()
        #: Optional lock-order witness shared by every wrapped lock.
        self.witness = witness
        self._lock = threading.Lock()
        self._profiled: list[ProfiledLock] = []

    def wrap(self, name: str, inner: Any) -> ProfiledLock:
        profiled = ProfiledLock(name, inner, self.clock, self.witness)
        with self._lock:
            self._profiled.append(profiled)
        return profiled

    def condition_factory(self) -> Callable[[str], threading.Condition]:
        """A factory for profiled per-queue condition variables."""

        def make(queue_name: str) -> threading.Condition:
            lock = self.wrap(f"broker.queue.{queue_name}", threading.Lock())
            return threading.Condition(lock)

        return make

    def locks(self) -> list[ProfiledLock]:
        with self._lock:
            return list(self._profiled)

    def report(self) -> list[dict[str, Any]]:
        """Per-lock summaries, most-contended first."""
        summaries = [lock.summary() for lock in self.locks()]
        summaries.sort(
            key=lambda s: (-s["wait_ms"]["sum"], -s["hold_ms"]["sum"])
        )
        return summaries
