"""Command-line front end: ``python -m repro.obs.prof``.

Subcommands::

    python -m repro.obs.prof report              # run workload, report
    python -m repro.obs.prof report --json       # machine-readable
    python -m repro.obs.prof report --flamegraph # collapsed stacks

``report`` assembles the full protein lab with profiling enabled,
drives ``--requests`` start_workflow requests through the filter →
engine → broker → agent path (a pump thread plays the agent pool), and
prints the profiler's attribution/contention/SLO report.  Mirrors the
``repro.analysis`` CLI conventions: ``--json`` switches to JSON on
stdout, and the exit code is 0 when the run produced attributable
traces, 1 when attribution came up empty (something is broken in the
span pipeline), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.obs.prof.slo import SLOPolicy


def run_report(
    requests: int,
    as_json: bool,
    flamegraph: bool,
    sampler: bool,
    slo_threshold_ms: float,
) -> int:
    from repro.workloads.protein import build_protein_lab

    with tempfile.TemporaryDirectory() as tmp:
        lab = build_protein_lab(
            wal_path=str(Path(tmp) / "lab.wal"),
            journal_path=str(Path(tmp) / "broker.journal"),
            profiling=True,
            sampler=sampler or flamegraph,
            slos=(
                SLOPolicy(
                    operation="protein_creation",
                    threshold_ms=slo_threshold_ms,
                    objective=0.95,
                    window=max(requests, 10),
                ),
            ),
        )
        profiler = lab.obs.profiler
        assert profiler is not None
        try:
            for __ in range(requests):
                response = lab.app.post(
                    "/user",
                    workflow_action="start",
                    pattern="protein_creation",
                )
                if not response.ok:
                    print(
                        f"request failed: {response.status}", file=sys.stderr
                    )
                    return 1
                lab.run_messages()
            report = profiler.report()
            if flamegraph:
                assert profiler.sampler is not None
                print(profiler.sampler.collapsed())
            elif as_json:
                print(json.dumps(report, indent=2, default=str))
            else:
                print(profiler.render_text())
            if not report["attribution"]:
                print(
                    "no attributable traces were produced", file=sys.stderr
                )
                return 1
            return 0
        finally:
            profiler.close()
            lab.app.db.close()
            lab.broker.close()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.prof",
        description="Latency attribution and profiling report over a "
        "self-contained protein-lab workload.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="run the workload and print the profile report"
    )
    report.add_argument(
        "--requests",
        type=int,
        default=10,
        help="start_workflow requests to drive (default 10)",
    )
    report.add_argument("--json", action="store_true", dest="as_json")
    report.add_argument(
        "--flamegraph",
        action="store_true",
        help="print collapsed-stack sampler output instead of the report",
    )
    report.add_argument(
        "--sampler",
        action="store_true",
        help="run the wall-clock stack sampler during the workload",
    )
    report.add_argument(
        "--slo-threshold-ms",
        type=float,
        default=50.0,
        help="latency SLO threshold tracked for protein_creation",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return run_report(
        requests=args.requests,
        as_json=args.as_json,
        flamegraph=args.flamegraph,
        sampler=args.sampler,
        slo_threshold_ms=args.slo_threshold_ms,
    )


if __name__ == "__main__":
    sys.exit(main())
