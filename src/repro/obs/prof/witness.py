"""Runtime lock-order witness: observed acquisitions vs. the static graph.

The static analyzer (:mod:`repro.analysis.concurrency`) proves things
about the lock graph it can *resolve*; its blind spots are locks that
travel through untyped parameters or dynamic dispatch.  The witness
closes the loop from the other side: hooked into every
:class:`~repro.obs.prof.locks.ProfiledLock` the profiling layer
installs, it records which locks each thread actually held while
acquiring another, and :meth:`check` asserts the observed orders
against the statically predicted ones.  Divergence means one of the
two models is wrong — either the code acquired locks in an order the
analyzer failed to see (an analyzer bug or an un-annotated seam), or
in an order it proved must not happen (a latent deadlock).  The chaos
suite and a ``bench_loadgen --small`` pass run with the witness
installed, so observed orders are exercised under fault injection and
real concurrency, and must come back divergence-free.

Witnessed locks are the ones the profiling seams name:
``broker.registry``, ``broker.queue.<name>`` (normalised to
``broker.queue.*`` — the static graph has one node per *class* of
per-queue condition, the runtime has one per queue) and
``minidb.mutex``.  Locks outside that namespace are tracked for
mutual-inversion detection but not judged against the static graph.

Only *outermost* acquisitions and *final* releases are reported by
``ProfiledLock``, so a re-entrant RLock hold never registers as a
nested acquisition — matching the static model, which ignores
self-edges for the same reason.

The witness's own bookkeeping lock is a leaf: it is taken only inside
``on_acquire``/``on_release`` and never while acquiring any witnessed
lock, so installing the witness cannot itself change the lock order it
observes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.concurrency import StaticOrder, static_lock_order

__all__ = ["Divergence", "LockOrderWitness", "normalize_lock_name"]


def normalize_lock_name(name: str) -> str:
    """Collapse per-instance lock names onto their static node."""
    if name.startswith("broker.queue."):
        return "broker.queue.*"
    return name


@dataclass(frozen=True)
class Divergence:
    """One contradiction between observed and static lock order."""

    #: ``never-nested`` | ``inverted`` | ``unpredicted`` | ``mutual``.
    kind: str
    held: str
    acquired: str
    detail: str

    def to_dict(self) -> dict[str, str]:
        return {
            "kind": self.kind,
            "held": self.held,
            "acquired": self.acquired,
            "detail": self.detail,
        }


@dataclass
class _PairEvidence:
    """First sighting of one (held, acquired) normalised pair."""

    held_instance: str
    acquired_instance: str
    thread: str
    count: int = 1


@dataclass
class WitnessReport:
    """JSON-friendly outcome of a witness run."""

    observed_pairs: list[dict[str, Any]] = field(default_factory=list)
    acquisitions: int = 0
    max_depth: int = 0
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "acquisitions": self.acquisitions,
            "max_held_depth": self.max_depth,
            "observed_pairs": self.observed_pairs,
            "divergences": [d.to_dict() for d in self.divergences],
        }

    def render_text(self) -> str:
        lines = [
            f"lock-order witness: {self.acquisitions} outermost "
            f"acquisitions, max held depth {self.max_depth}, "
            f"{len(self.observed_pairs)} distinct nesting pair(s)"
        ]
        for pair in self.observed_pairs:
            lines.append(
                f"  observed {pair['held']} -> {pair['acquired']} "
                f"x{pair['count']} (e.g. {pair['held_instance']} -> "
                f"{pair['acquired_instance']} on {pair['thread']})"
            )
        if self.ok:
            lines.append("  no divergence from the static lock graph")
        for divergence in self.divergences:
            lines.append(
                f"  DIVERGENCE [{divergence.kind}] "
                f"{divergence.held} -> {divergence.acquired}: "
                f"{divergence.detail}"
            )
        return "\n".join(lines)


class LockOrderWitness:
    """Records per-thread acquisition orders; judges them in `check`."""

    def __init__(self, order: StaticOrder | None = None) -> None:
        #: The static prediction to assert against.  Computed from the
        #: installed tree when not supplied (tests pass a hand-built
        #: one to exercise specific divergence kinds).
        self.order = order if order is not None else static_lock_order()
        self._known = {
            name
            for edge in self.order.edges
            for name in edge
        }
        for group in self.order.groups:
            self._known |= group
        #: Names the profiling seams assign are always witnessable,
        #: even when the static graph predicts no nesting among them.
        self._known |= {"broker.registry", "broker.queue.*", "minidb.mutex"}
        self._tls = threading.local()
        self._lock = threading.Lock()
        self._pairs: dict[tuple[str, str], _PairEvidence] = {}
        self._acquisitions = 0
        self._max_depth = 0

    # -- ProfiledLock hook points (hot path: keep them tiny) ---------------

    def _stack(self) -> list[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def on_acquire(self, name: str) -> None:
        """Called after an outermost acquisition of ``name``."""
        stack = self._stack()
        acquired_norm = normalize_lock_name(name)
        if stack:
            thread = threading.current_thread().name
            with self._lock:
                for held in stack:
                    key = (normalize_lock_name(held), acquired_norm)
                    evidence = self._pairs.get(key)
                    if evidence is None:
                        self._pairs[key] = _PairEvidence(
                            held_instance=held,
                            acquired_instance=name,
                            thread=thread,
                        )
                    else:
                        evidence.count += 1
        stack.append(name)
        with self._lock:
            self._acquisitions += 1
            if len(stack) > self._max_depth:
                self._max_depth = len(stack)

    def on_release(self, name: str) -> None:
        """Called before the final release of ``name``."""
        stack = self._stack()
        # Locks are overwhelmingly released LIFO, but nothing enforces
        # it — remove the most recent matching hold wherever it sits.
        for position in range(len(stack) - 1, -1, -1):
            if stack[position] == name:
                del stack[position]
                return

    # -- judgement ---------------------------------------------------------

    def check(self) -> WitnessReport:
        """Assert every observed order against the static prediction."""
        with self._lock:
            pairs = dict(self._pairs)
            acquisitions = self._acquisitions
            max_depth = self._max_depth
        report = WitnessReport(
            acquisitions=acquisitions, max_depth=max_depth
        )
        for (held, acquired), evidence in sorted(pairs.items()):
            report.observed_pairs.append(
                {
                    "held": held,
                    "acquired": acquired,
                    "count": evidence.count,
                    "held_instance": evidence.held_instance,
                    "acquired_instance": evidence.acquired_instance,
                    "thread": evidence.thread,
                }
            )
            if (acquired, held) in pairs and acquired != held:
                report.divergences.append(
                    Divergence(
                        "mutual",
                        held,
                        acquired,
                        "both orders observed at runtime — a deadlock "
                        "waiting for the right interleaving",
                    )
                )
            in_group = any(
                held in group and acquired in group
                for group in self.order.groups
            )
            if in_group:
                report.divergences.append(
                    Divergence(
                        "never-nested",
                        held,
                        acquired,
                        "these locks are declared never-nested "
                        f"(observed {evidence.held_instance} held while "
                        f"acquiring {evidence.acquired_instance} on "
                        f"{evidence.thread})",
                    )
                )
                continue
            if held not in self._known or acquired not in self._known:
                continue  # not witnessable against the static graph
            if (held, acquired) in self.order.edges:
                continue  # predicted, all good
            if (acquired, held) in self.order.edges:
                report.divergences.append(
                    Divergence(
                        "inverted",
                        held,
                        acquired,
                        "the static graph orders these the other way "
                        "around — one of the two sides is a latent "
                        "deadlock",
                    )
                )
            else:
                report.divergences.append(
                    Divergence(
                        "unpredicted",
                        held,
                        acquired,
                        "the static analyzer saw no path nesting these "
                        "locks — un-annotated seam or analyzer gap",
                    )
                )
        # De-duplicate mutual divergences (reported once per direction).
        seen: set[tuple[str, ...]] = set()
        unique: list[Divergence] = []
        for divergence in report.divergences:
            key = (
                divergence.kind,
                *sorted((divergence.held, divergence.acquired)),
            )
            if divergence.kind == "mutual" and key in seen:
                continue
            seen.add(key)
            unique.append(divergence)
        report.divergences = unique
        return report
