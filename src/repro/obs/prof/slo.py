"""Per-pattern latency SLOs with error-budget burn-rate tracking.

An :class:`SLOPolicy` states an objective — "99% of ``protein_creation``
starts complete within 50 ms" — over a sliding window of recent
requests.  The tracker then reports, per policy:

* the violation fraction in the window;
* the **burn rate**: violation fraction divided by the budget
  ``1 - objective``.  Burn rate 1.0 means the error budget is being
  spent exactly as fast as the objective allows; above 1.0 the budget
  is burning down and the SLO will eventually be breached — the
  standard multi-window alerting quantity, computed here over one
  window for simplicity;
* remaining budget in the window (how many more violations the window
  tolerates before burn rate exceeds 1).

The tracker feeds ``GET /workflow/health`` as an ``slo`` component:
``degraded`` when any policy's burn rate exceeds 1.  The component is
deliberately *not* part of ``READINESS_COMPONENTS`` — a burning error
budget is an alert for operators, not a reason for the filter to start
refusing requests and make things worse.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class SLOPolicy:
    """One latency objective for one operation/pattern."""

    operation: str
    threshold_ms: float
    #: Target fraction of requests under the threshold (0 < objective < 1).
    objective: float = 0.99
    #: Sliding window length, in requests.
    window: int = 500

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if self.threshold_ms <= 0:
            raise ValueError("threshold_ms must be positive")
        if self.window <= 0:
            raise ValueError("window must be positive")


class SLOTracker:
    """Sliding-window burn-rate computation over registered policies."""

    def __init__(self, policies: Any = ()) -> None:
        self._lock = threading.Lock()
        self._policies: dict[str, SLOPolicy] = {}
        #: operation -> deque of booleans (True = violation).
        self._windows: dict[str, deque[bool]] = {}
        self._observed: dict[str, int] = {}
        for policy in policies:
            self.add_policy(policy)

    def add_policy(self, policy: SLOPolicy) -> None:
        """Register (or replace) the policy for one operation."""
        with self._lock:
            self._policies[policy.operation] = policy
            self._windows[policy.operation] = deque(maxlen=policy.window)
            self._observed.setdefault(policy.operation, 0)

    def policies(self) -> list[SLOPolicy]:
        with self._lock:
            return list(self._policies.values())

    def observe(self, operation: str, duration_ms: float) -> None:
        """Record one finished request; no-op without a matching policy."""
        with self._lock:
            policy = self._policies.get(operation)
            if policy is None:
                return
            self._observed[operation] += 1
            self._windows[operation].append(duration_ms > policy.threshold_ms)

    # -- reporting ----------------------------------------------------------

    def _status_locked(self, operation: str) -> dict[str, Any]:
        policy = self._policies[operation]
        window = self._windows[operation]
        count = len(window)
        violations = sum(window)
        violation_rate = violations / count if count else 0.0
        budget = 1.0 - policy.objective
        burn_rate = violation_rate / budget if budget else 0.0
        # Violations the current window could still absorb at burn <= 1.
        allowed = int(budget * count)
        return {
            "operation": operation,
            "threshold_ms": policy.threshold_ms,
            "objective": policy.objective,
            "window": policy.window,
            "observed_total": self._observed[operation],
            "window_count": count,
            "violations": violations,
            "violation_rate": violation_rate,
            "burn_rate": burn_rate,
            "budget_remaining": max(0, allowed - violations),
            "ok": burn_rate <= 1.0,
        }

    def report(self) -> dict[str, Any]:
        """Status per policy, keyed by operation."""
        with self._lock:
            return {
                operation: self._status_locked(operation)
                for operation in sorted(self._policies)
            }

    def health(self) -> dict[str, Any]:
        """Health-provider view: degraded when any budget is burning."""
        statuses = self.report()
        burning = [
            operation
            for operation, status in statuses.items()
            if not status["ok"]
        ]
        return {
            "status": "degraded" if burning else "ok",
            "burning": burning,
            "policies": statuses,
        }
