"""Sampling wall-clock profiler emitting collapsed-stack output.

Periodically snapshots every live thread's Python stack via
``sys._current_frames`` and counts identical stacks.  The output format
is the *collapsed stack* convention flamegraph tools consume::

    broker.py:receive;condition.py:wait 42
    engine.py:insert;wal.py:append 17

Each line is a ``;``-joined root→leaf frame chain and the number of
samples it was observed in; sample counts approximate wall-clock share.
Sampling is wall-clock (not CPU): a thread blocked in ``cond.wait`` or
``fsync`` accrues samples exactly like a computing one, which is the
right lens for a system whose latency is dominated by waiting.

Cost model: each sample is one ``sys._current_frames`` call plus a walk
of a handful of frames per thread — at the default 10 ms interval this
is well under 1% of one core.  The sampler is a daemon thread, started
explicitly (`start`) and never by default.
"""

from __future__ import annotations

import sys
import threading
from typing import Any

from repro.resilience.clock import Clock, SystemClock

#: Hard cap on distinct stacks retained (a runaway workload must not
#: turn the profiler into a leak).
_MAX_STACKS = 10_000


def _frame_label(frame: Any) -> str:
    code = frame.f_code
    return f"{code.co_filename.rsplit('/', 1)[-1]}:{code.co_name}"


class StackSampler:
    """Wall-clock sampling profiler over all live threads."""

    def __init__(
        self,
        interval_s: float = 0.01,
        max_frames: int = 40,
        clock: Clock | None = None,
    ) -> None:
        self.interval_s = interval_s
        self.max_frames = max_frames
        self.clock: Clock = clock or SystemClock()
        self.samples = 0
        self.dropped_stacks = 0
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Begin sampling in a daemon thread (idempotent)."""
        with self._lock:
            if self._thread is not None:
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="obs-prof-sampler", daemon=True
            )
            self._thread.start()

    def stop(self) -> None:
        """Stop the sampling thread and wait for it to exit."""
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=2.0)

    @property
    def running(self) -> bool:
        return self._thread is not None

    def _run(self) -> None:
        me = threading.get_ident()
        while not self._stop.is_set():
            self.sample_once(exclude={me})
            self._stop.wait(self.interval_s)

    # -- sampling -----------------------------------------------------------

    def sample_once(self, exclude: set[int] | None = None) -> int:
        """Take one snapshot of every live thread; returns threads seen."""
        exclude = exclude or set()
        frames = sys._current_frames()
        seen = 0
        collapsed: list[str] = []
        for ident, frame in frames.items():
            if ident in exclude:
                continue
            chain: list[str] = []
            depth = 0
            while frame is not None and depth < self.max_frames:
                chain.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            if not chain:
                continue
            # root-first, flamegraph convention.
            collapsed.append(";".join(reversed(chain)))
            seen += 1
        with self._lock:
            self.samples += 1
            for stack in collapsed:
                if stack in self._counts:
                    self._counts[stack] += 1
                elif len(self._counts) < _MAX_STACKS:
                    self._counts[stack] = 1
                else:
                    self.dropped_stacks += 1
        return seen

    # -- output -------------------------------------------------------------

    def collapsed(self, limit: int | None = None) -> str:
        """Collapsed-stack text, most-sampled first."""
        with self._lock:
            items = sorted(self._counts.items(), key=lambda kv: -kv[1])
        if limit is not None:
            items = items[:limit]
        return "\n".join(f"{stack} {count}" for stack, count in items)

    def report(self, top: int = 10) -> dict[str, Any]:
        """JSON-friendly summary: sample count and the hottest stacks."""
        with self._lock:
            items = sorted(self._counts.items(), key=lambda kv: -kv[1])
            return {
                "samples": self.samples,
                "distinct_stacks": len(self._counts),
                "dropped_stacks": self.dropped_stacks,
                "hottest": [
                    {"stack": stack, "count": count}
                    for stack, count in items[:top]
                ],
            }

    def clear(self) -> None:
        with self._lock:
            self._counts.clear()
            self.samples = 0
            self.dropped_stacks = 0
